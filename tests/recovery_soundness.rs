//! The central soundness property of the whole system, checked with real
//! fault injection on both suite workloads and random programs:
//!
//! > A fault injected inside a *protected* region and detected before
//! > control leaves it (latency 0) is always recovered — the rollback
//! > restores checkpointed state and re-execution reproduces the golden
//! > run exactly.
//!
//! Pruning is disabled (`Pmin = ∅`) so the guarantee is unconditional
//! (no statistical gamble), exactly the regime in which the paper's
//! analysis claims full re-executability.

mod common;

use common::prop::{check, prop_assert};
use common::{build_program, Stmt};
use encore::core::{Encore, EncoreConfig};
use encore::sim::{run_function, FaultPlan, RunConfig, Value};

/// Instruments with an unlimited budget and no pruning; checks the
/// latency-0 property for `probes` injection points spread over the run.
fn check_latency_zero(module: &encore_ir::Module, entry: encore_ir::FuncId, arg: i64, probes: u64) {
    let train = run_function(
        module,
        None,
        entry,
        &[Value::Int(arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    assert!(train.completed);
    let config = EncoreConfig::default()
        .with_pmin(None)
        .with_overhead_budget(1e9);
    let outcome = Encore::new(config).run(module, train.profile.as_ref().unwrap());
    let imodule = &outcome.instrumented.module;
    let map = &outcome.instrumented.map;

    let golden = run_function(imodule, Some(map), entry, &[Value::Int(arg)], &RunConfig::default());
    assert!(golden.completed);
    let space = golden.eligible_insts.max(1);

    for p in 0..probes {
        let inject_at = p * space / probes;
        let plan = FaultPlan::bit_flip(inject_at, (p % 61) as u8, 0);
        let run = run_function(
            imodule,
            Some(map),
            entry,
            &[Value::Int(arg)],
            &RunConfig { fault: Some(plan), fuel: golden.dyn_insts * 4 + 10_000, ..Default::default() },
        );
        if !run.fault.injected {
            continue;
        }
        // Only faults whose site sits in a *protected* region carry the
        // guarantee.
        let Some((func, block)) = run.fault.inject_site else { continue };
        let protected = map
            .region_of(func, block)
            .map(|rid| map.info(rid).protected)
            .unwrap_or(false);
        if !protected {
            continue;
        }
        assert!(
            run.completed,
            "latency-0 fault at {inject_at} in protected region trapped: {:?}",
            run.trap
        );
        assert!(
            run.observably_equal(&golden),
            "latency-0 fault at {inject_at} ({:?}) in protected region of {}:{} \
             was not recovered",
            plan.action,
            func,
            block,
        );
    }
}

#[test]
fn latency_zero_recovery_on_suite_workloads() {
    for name in ["rawcaudio", "172.mgrid", "164.gzip", "g721decode", "183.equake"] {
        let w = encore::workloads::by_name(name).expect("workload");
        check_latency_zero(&w.module, w.entry, w.train_arg, 60);
    }
}

#[test]
fn rollback_actually_happens_under_short_latency() {
    // Sanity: with short latencies across many probes, at least one
    // injection must exercise the rollback machinery.
    let w = encore::workloads::by_name("g721encode").expect("workload");
    let train = run_function(
        &w.module,
        None,
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    let outcome = Encore::new(EncoreConfig::default().with_overhead_budget(1e9))
        .run(&w.module, train.profile.as_ref().unwrap());
    let golden = run_function(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig::default(),
    );
    let mut rollbacks = 0;
    for p in 0..40u64 {
        let plan = FaultPlan::bit_flip(p * golden.eligible_insts / 40, 3, 2);
        let run = run_function(
            &outcome.instrumented.module,
            Some(&outcome.instrumented.map),
            w.entry,
            &[Value::Int(w.train_arg)],
            &RunConfig { fault: Some(plan), ..Default::default() },
        );
        if run.fault.rolled_back {
            rollbacks += 1;
        }
    }
    assert!(rollbacks > 0, "no injection ever triggered a rollback");
}

/// Latency-0 recovery holds on random programs, not just the curated
/// suite.
#[test]
fn latency_zero_recovery_on_random_programs() {
    check::<Vec<Stmt>>("latency_zero_recovery_on_random_programs", 24, |stmts| {
        let (module, entry) = build_program(stmts);
        check_latency_zero(&module, entry, 5, 12);
        Ok(())
    });
}

/// Instrumentation never changes fault-free behavior on random
/// programs.
#[test]
fn instrumentation_is_transparent_on_random_programs() {
    check::<Vec<Stmt>>("instrumentation_is_transparent_on_random_programs", 24, |stmts| {
        let (module, entry) = build_program(stmts);
        let train = run_function(
            &module,
            None,
            entry,
            &[Value::Int(5)],
            &RunConfig { collect_profile: true, ..Default::default() },
        );
        prop_assert!(train.completed);
        let outcome = Encore::new(EncoreConfig::default().with_overhead_budget(1e9))
            .run(&module, train.profile.as_ref().unwrap());
        encore::ir::verify_module(&outcome.instrumented.module).expect("valid IR");
        let baseline =
            run_function(&module, None, entry, &[Value::Int(9)], &RunConfig::default());
        let instrumented = run_function(
            &outcome.instrumented.module,
            Some(&outcome.instrumented.map),
            entry,
            &[Value::Int(9)],
            &RunConfig::default(),
        );
        prop_assert!(instrumented.completed);
        prop_assert!(instrumented.observably_equal(&baseline));
        Ok(())
    });
}
