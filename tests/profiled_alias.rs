//! Integration tests for the profile-guided alias oracle (the paper's
//! "more aggressive dynamic memory profiling" future work, §5.3 /
//! footnote 2).

mod common;

use common::prop::{check, prop_assert};
use common::{build_program, Stmt};
use encore::analysis::{AliasMode, ProfiledAlias, StaticAlias};
use encore::core::idempotence::{IdempotenceAnalyzer, RegionSpec};
use encore::core::{Encore, EncoreConfig};
use encore::ir::{AddrExpr, BinOp, MemBase, ModuleBuilder, Operand};
use encore::sim::{run_function, RunConfig, Value};
use std::sync::Arc;

/// An arena kernel: input half and output half of one global. Statically
/// every store may alias every load; dynamically they never do.
fn arena_kernel() -> (encore::ir::Module, encore::ir::FuncId) {
    let mut mb = ModuleBuilder::new("arena");
    let arena = mb.global_init("arena", 64, (0..32).collect());
    let entry = mb.function("double_halves", 1, |f| {
        let n = f.param(0);
        f.for_range(Operand::ImmI(0), n.into(), |f, i| {
            let v = f.load(AddrExpr::indexed(MemBase::Global(arena), i, 1, 0));
            let v2 = f.bin(BinOp::Mul, v.into(), Operand::ImmI(2));
            f.store(AddrExpr::indexed(MemBase::Global(arena), i, 1, 32), v2.into());
        });
        f.ret(None);
    });
    (mb.finish(), entry)
}

fn train(m: &encore::ir::Module, entry: encore::ir::FuncId, arg: i64) -> encore::analysis::Profile {
    run_function(
        m,
        None,
        entry,
        &[Value::Int(arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    )
    .profile
    .expect("profile")
}

#[test]
fn arena_kernel_is_non_idempotent_statically_but_clean_under_profile() {
    let (m, entry) = arena_kernel();
    let profile = train(&m, entry, 32);
    let spec = RegionSpec {
        func: entry,
        header: m.func(entry).entry(),
        blocks: m.func(entry).block_ids().collect(),
    };

    let st = IdempotenceAnalyzer::new(&m, &StaticAlias).analyze_region(&spec, &|_| false);
    assert!(!st.cp.is_empty(), "static oracle must checkpoint the arena store");

    let oracle = ProfiledAlias::new(Arc::new(profile.mem.clone()));
    let pr = IdempotenceAnalyzer::new(&m, &oracle).analyze_region(&spec, &|_| false);
    assert!(
        pr.cp.is_empty(),
        "profiled oracle should prove the halves disjoint: {:?}",
        pr.cp
    );
    assert!(pr.verdict.is_idempotent());
}

#[test]
fn profiled_pipeline_stays_transparent_on_arena_kernel() {
    let (m, entry) = arena_kernel();
    let profile = train(&m, entry, 32);
    let outcome = Encore::new(EncoreConfig::default().with_alias(AliasMode::Profiled))
        .run(&m, &profile);
    let baseline = run_function(&m, None, entry, &[Value::Int(32)], &RunConfig::default());
    let instrumented = run_function(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        entry,
        &[Value::Int(32)],
        &RunConfig::default(),
    );
    assert!(instrumented.observably_equal(&baseline));
}

#[test]
fn empty_profile_degrades_to_static() {
    let (m, entry) = arena_kernel();
    let spec = RegionSpec {
        func: entry,
        header: m.func(entry).entry(),
        blocks: m.func(entry).block_ids().collect(),
    };
    let st = IdempotenceAnalyzer::new(&m, &StaticAlias).analyze_region(&spec, &|_| false);
    let oracle = ProfiledAlias::default();
    let pr = IdempotenceAnalyzer::new(&m, &oracle).analyze_region(&spec, &|_| false);
    assert_eq!(st.cp.len(), pr.cp.len());
    assert_eq!(st.verdict, pr.verdict);
}

#[test]
fn mesa_and_equake_gain_from_profiling() {
    for name in ["177.mesa", "183.equake"] {
        let w = encore::workloads::by_name(name).expect("workload");
        let profile = train(&w.module, w.entry, w.train_arg);
        let st =
            Encore::new(EncoreConfig::default().with_alias(AliasMode::Static)).run(&w.module, &profile);
        let pr = Encore::new(EncoreConfig::default().with_alias(AliasMode::Profiled))
            .run(&w.module, &profile);
        let st_cp: usize = st.candidates.iter().map(|(c, _)| c.analysis.cp.len()).sum();
        let pr_cp: usize = pr.candidates.iter().map(|(c, _)| c.analysis.cp.len()).sum();
        assert!(
            pr_cp < st_cp,
            "{name}: profiled ({pr_cp}) should need fewer checkpoints than static ({st_cp})"
        );
        assert!(
            pr.breakdown.protected_fraction() >= st.breakdown.protected_fraction(),
            "{name}: profiling should never lose coverage"
        );
    }
}

/// On random programs the profiled oracle never needs more
/// checkpoints than the static one, and the instrumented module is
/// still transparent.
#[test]
fn profiled_never_worse_than_static() {
    check::<Vec<Stmt>>("profiled_never_worse_than_static", 24, |stmts| {
        let (m, entry) = build_program(stmts);
        let profile = train(&m, entry, 5);
        let spec = RegionSpec {
            func: entry,
            header: m.func(entry).entry(),
            blocks: m.func(entry).block_ids().collect(),
        };
        let st = IdempotenceAnalyzer::new(&m, &StaticAlias)
            .analyze_region(&spec, &|_| false);
        let oracle = ProfiledAlias::new(Arc::new(profile.mem.clone()));
        let pr = IdempotenceAnalyzer::new(&m, &oracle)
            .analyze_region(&spec, &|_| false);
        prop_assert!(pr.cp.len() <= st.cp.len());

        let outcome = Encore::new(
            EncoreConfig::default()
                .with_alias(AliasMode::Profiled)
                .with_overhead_budget(1e9),
        )
        .run(&m, &profile);
        let baseline =
            run_function(&m, None, entry, &[Value::Int(5)], &RunConfig::default());
        let instrumented = run_function(
            &outcome.instrumented.module,
            Some(&outcome.instrumented.map),
            entry,
            &[Value::Int(5)],
            &RunConfig::default(),
        );
        prop_assert!(instrumented.observably_equal(&baseline));
        Ok(())
    });
}
