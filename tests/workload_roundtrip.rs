//! Printer/parser round-trips for the entire workload suite, at every
//! supported size scale: each module in `encore_workloads::all()` —
//! and its `scaled(10)` / `scaled(100)` variants — must survive
//! `display → parse → display` unchanged, and the reparsed module must
//! still verify. Scaling only grows global data, but 100× mediabench
//! tables are exactly where a printer or parser with a length-dependent
//! bug would break first.

use encore::ir::{parse_module, verify_module};
use encore::workloads::Workload;

/// The scale tiers every suite workload must survive.
const SCALES: [u32; 3] = [1, 10, 100];

fn scaled_suite() -> Vec<Workload> {
    let suite = encore::workloads::all();
    assert!(!suite.is_empty());
    suite
        .iter()
        .flat_map(|w| SCALES.iter().map(|&s| w.scaled(s)))
        .collect()
}

#[test]
fn every_workload_round_trips_through_text_at_every_scale() {
    for w in scaled_suite() {
        let spec = w.spec();
        let text = w.module.to_string();
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("{spec}: reparse failed: {e}\n{text}"));
        assert_eq!(reparsed, w.module, "{spec}: parse(print(m)) != m");
        verify_module(&reparsed).unwrap_or_else(|e| panic!("{spec}: {e:?}"));
    }
}

#[test]
fn workload_printing_is_stable_at_every_scale() {
    // A second print of the reparsed module is byte-identical: the
    // textual form is a fixpoint, so goldens diffed across runs or
    // machines never churn.
    for w in scaled_suite() {
        let text = w.module.to_string();
        let reparsed = parse_module(&text).expect("reparse");
        assert_eq!(text, reparsed.to_string(), "{}: printing is not a fixpoint", w.spec());
    }
}
