//! Printer/parser round-trips for the entire workload suite: every
//! module in `encore_workloads::all()` must survive `display → parse →
//! display` unchanged, and the reparsed module must still verify.

use encore::ir::{parse_module, verify_module};

#[test]
fn every_workload_round_trips_through_text() {
    let suite = encore::workloads::all();
    assert!(!suite.is_empty());
    for w in &suite {
        let text = w.module.to_string();
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", w.name));
        assert_eq!(reparsed, w.module, "{}: parse(print(m)) != m", w.name);
        verify_module(&reparsed).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
    }
}

#[test]
fn workload_printing_is_stable() {
    // A second print of the reparsed module is byte-identical: the
    // textual form is a fixpoint, so goldens diffed across runs or
    // machines never churn.
    for w in encore::workloads::all() {
        let text = w.module.to_string();
        let reparsed = parse_module(&text).expect("reparse");
        assert_eq!(text, reparsed.to_string(), "{}: printing is not a fixpoint", w.name);
    }
}
