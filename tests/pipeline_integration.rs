//! End-to-end pipeline integration over the full workload suite:
//! profile → analyze → select → instrument → execute. Instrumentation
//! must be semantics-preserving, overhead must respect the budget, and
//! the coverage model must be well-formed, for every workload.

use encore::core::{Encore, EncoreConfig};
use encore::ir::verify_module;
use encore::sim::{run_function, RunConfig, Value};

struct WorkloadRun {
    name: &'static str,
    outcome: encore::core::EncoreOutcome,
    baseline_dyn: u64,
    instrumented_dyn: u64,
    equal: bool,
}

fn run_all(config: &EncoreConfig) -> Vec<WorkloadRun> {
    encore::workloads::all()
        .into_iter()
        .map(|w| {
            let train = run_function(
                &w.module,
                None,
                w.entry,
                &[Value::Int(w.train_arg)],
                &RunConfig { collect_profile: true, ..Default::default() },
            );
            assert!(train.completed, "{}: training run trapped", w.name);
            let outcome = Encore::new(config.clone())
                .run(&w.module, train.profile.as_ref().unwrap());
            let baseline = run_function(
                &w.module,
                None,
                w.entry,
                &[Value::Int(w.eval_arg)],
                &RunConfig::default(),
            );
            assert!(baseline.completed, "{}: baseline trapped", w.name);
            let instrumented = run_function(
                &outcome.instrumented.module,
                Some(&outcome.instrumented.map),
                w.entry,
                &[Value::Int(w.eval_arg)],
                &RunConfig::default(),
            );
            assert!(instrumented.completed, "{}: instrumented run trapped", w.name);
            WorkloadRun {
                name: w.name,
                baseline_dyn: baseline.dyn_insts,
                instrumented_dyn: instrumented.dyn_insts,
                equal: instrumented.observably_equal(&baseline),
                outcome,
            }
        })
        .collect()
}

#[test]
fn instrumentation_preserves_semantics_on_all_workloads() {
    for run in run_all(&EncoreConfig::default()) {
        assert!(run.equal, "{}: instrumented run diverged from baseline", run.name);
    }
}

#[test]
fn instrumented_modules_verify() {
    for run in run_all(&EncoreConfig::default()) {
        verify_module(&run.outcome.instrumented.module)
            .unwrap_or_else(|e| panic!("{}: invalid instrumented IR: {e:?}", run.name));
    }
}

#[test]
fn measured_overhead_respects_budget() {
    // The estimate drives selection on the *training* input; measured
    // overhead on the evaluation input gets modest slack for input-shift.
    for run in run_all(&EncoreConfig::default()) {
        let overhead = (run.instrumented_dyn as f64 - run.baseline_dyn as f64)
            / run.baseline_dyn as f64;
        assert!(
            overhead <= 0.25,
            "{}: measured overhead {:.1}% blows the 20% budget (+slack)",
            run.name,
            overhead * 100.0
        );
        assert!(run.outcome.est_overhead <= 0.20 + 1e-9, "{}: estimate over budget", run.name);
    }
}

#[test]
fn coverage_model_is_well_formed_everywhere() {
    for run in run_all(&EncoreConfig::default()) {
        let fs = run.outcome.full_system;
        let sum =
            fs.masked + fs.recovered_idempotent + fs.recovered_checkpointed + fs.not_recoverable;
        assert!((sum - 1.0).abs() < 1e-6, "{}: stack sums to {sum}", run.name);
        assert!(fs.total() >= fs.masked, "{}", run.name);
        assert!(fs.total() <= 1.0 + 1e-9, "{}", run.name);
        let b = run.outcome.breakdown;
        assert!((b.idempotent + b.checkpointed + b.unprotected - 1.0).abs() < 1e-6,
            "{}: breakdown sums to {}", run.name, b.idempotent + b.checkpointed + b.unprotected);
    }
}

#[test]
fn regions_partition_every_function() {
    for run in run_all(&EncoreConfig::default()) {
        use std::collections::BTreeSet;
        let mut per_func: std::collections::BTreeMap<_, BTreeSet<_>> = Default::default();
        for (cand, _) in &run.outcome.candidates {
            for b in &cand.spec.blocks {
                assert!(
                    per_func.entry(cand.spec.func).or_default().insert(*b),
                    "{}: block {b} appears in two regions",
                    run.name
                );
            }
        }
    }
}

#[test]
fn zero_budget_instruments_nothing_costly() {
    for run in run_all(&EncoreConfig::default().with_overhead_budget(0.0)) {
        assert_eq!(
            run.baseline_dyn, run.instrumented_dyn,
            "{}: zero budget must add zero overhead",
            run.name
        );
    }
}

#[test]
fn analysis_worker_count_is_bit_identical() {
    // The sharded per-function analysis loop must produce exactly the
    // output of a sequential run, for every workload.
    let seq = run_all(&EncoreConfig::default().with_analysis_workers(1));
    let par = run_all(&EncoreConfig::default().with_analysis_workers(8));
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.name, p.name);
        assert_eq!(
            s.outcome.candidates, p.outcome.candidates,
            "{}: candidates differ between 1 and 8 workers",
            s.name
        );
        assert_eq!(
            s.outcome.instrumented.module, p.outcome.instrumented.module,
            "{}: instrumented module differs between 1 and 8 workers",
            s.name
        );
        assert_eq!(s.outcome.reports, p.outcome.reports, "{}", s.name);
        assert_eq!(s.outcome.est_overhead, p.outcome.est_overhead, "{}", s.name);
        assert_eq!(s.outcome.derived_gamma, p.outcome.derived_gamma, "{}", s.name);
        assert_eq!(s.outcome.merges, p.outcome.merges, "{}", s.name);
    }
}

#[test]
fn unlimited_budget_increases_protection() {
    let default_runs = run_all(&EncoreConfig::default());
    let rich_runs = run_all(&EncoreConfig::default().with_overhead_budget(10.0));
    for (d, r) in default_runs.iter().zip(&rich_runs) {
        assert!(
            r.outcome.breakdown.protected_fraction()
                >= d.outcome.breakdown.protected_fraction() - 1e-9,
            "{}: bigger budget reduced protection",
            d.name
        );
    }
}
