//! Shared test utilities: a generator for random, terminating,
//! memory-safe IR programs, on top of the in-repo property harness
//! ([`prop`]).
//!
//! Programs are generated as statement trees (arithmetic, global
//! loads/stores with constant or bounded dynamic indices, bounded `if`s
//! and constant-trip loops), so every generated module verifies, runs to
//! completion, and is deterministic — the foundation for the end-to-end
//! soundness properties in the integration tests.

#![allow(dead_code)]

pub mod prop;

use encore_ir::{
    AddrExpr, BinOp, FuncId, FunctionBuilder, MemBase, Module, ModuleBuilder, Operand, Reg,
};
use prop::{Arbitrary, Gen};

/// Number of globals every generated module declares.
pub const GLOBALS: usize = 3;
/// Cells per global.
pub const CELLS: i64 = 8;

/// A generated statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `r = op(a, b)` over existing integer registers/immediates.
    Arith { op: usize, lhs: usize, rhs: i64 },
    /// Load from a static global cell into a fresh register.
    LoadG { g: usize, off: i64 },
    /// Store an existing register to a static global cell.
    StoreG { g: usize, off: i64, src: usize },
    /// Load through a bounded dynamic index derived from a register.
    LoadIdx { g: usize, idx: usize },
    /// Store through a bounded dynamic index.
    StoreIdx { g: usize, idx: usize, src: usize },
    /// Two-way branch on a register value.
    If { cond: usize, then_s: Vec<Stmt>, else_s: Vec<Stmt> },
    /// Constant-trip loop (always terminates).
    For { trip: u8, body: Vec<Stmt> },
}

/// Maximum statement-tree nesting depth (matches the old proptest
/// strategy's `prop_recursive(3, ..)`).
const MAX_DEPTH: usize = 3;

fn gen_stmt(g: &mut Gen, depth: usize) -> Stmt {
    // At positive depth, one in four statements nests.
    if depth > 0 && g.chance(1, 4) {
        if g.bool() {
            Stmt::If {
                cond: g.usize(8),
                then_s: gen_stmt_list(g, depth - 1, 0, 4),
                else_s: gen_stmt_list(g, depth - 1, 0, 4),
            }
        } else {
            Stmt::For { trip: g.u8(1, 5), body: gen_stmt_list(g, depth - 1, 1, 4) }
        }
    } else {
        match g.usize(5) {
            0 => Stmt::Arith { op: g.usize(8), lhs: g.usize(8), rhs: g.i64(-4, 16) },
            1 => Stmt::LoadG { g: g.usize(GLOBALS), off: g.i64(0, CELLS) },
            2 => Stmt::StoreG { g: g.usize(GLOBALS), off: g.i64(0, CELLS), src: g.usize(8) },
            3 => Stmt::LoadIdx { g: g.usize(GLOBALS), idx: g.usize(8) },
            _ => Stmt::StoreIdx { g: g.usize(GLOBALS), idx: g.usize(8), src: g.usize(8) },
        }
    }
}

fn gen_stmt_list(g: &mut Gen, depth: usize, lo: usize, hi: usize) -> Vec<Stmt> {
    let len = lo + g.usize(hi - lo);
    (0..len).map(|_| gen_stmt(g, depth)).collect()
}

/// Smaller variants of one statement (empty for irreducible leaves).
fn shrink_stmt(s: &Stmt) -> Vec<Stmt> {
    match s {
        Stmt::Arith { op, lhs, rhs } if *rhs != 0 => {
            vec![Stmt::Arith { op: *op, lhs: *lhs, rhs: 0 }]
        }
        Stmt::If { cond, then_s, else_s } => {
            let mut out = Vec::new();
            for t in then_s.shrink() {
                out.push(Stmt::If { cond: *cond, then_s: t, else_s: else_s.clone() });
            }
            for e in else_s.shrink() {
                out.push(Stmt::If { cond: *cond, then_s: then_s.clone(), else_s: e });
            }
            out
        }
        Stmt::For { trip, body } => {
            let mut out = Vec::new();
            if *trip > 1 {
                out.push(Stmt::For { trip: 1, body: body.clone() });
            }
            for b in body.shrink() {
                if !b.is_empty() {
                    out.push(Stmt::For { trip: *trip, body: b });
                }
            }
            out
        }
        _ => Vec::new(),
    }
}

impl Arbitrary for Vec<Stmt> {
    fn arbitrary(g: &mut Gen) -> Self {
        gen_stmt_list(g, MAX_DEPTH, 1, 10)
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Drop one statement.
        for i in 0..self.len() {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Splice a nested statement's body into the list (removes one
        // level of control flow while keeping the leaves that matter).
        for i in 0..self.len() {
            let inner: Option<Vec<Stmt>> = match &self[i] {
                Stmt::If { then_s, else_s, .. } => {
                    Some(then_s.iter().chain(else_s.iter()).cloned().collect())
                }
                Stmt::For { body, .. } => Some(body.clone()),
                _ => None,
            };
            if let Some(inner) = inner {
                let mut v = self.clone();
                v.splice(i..=i, inner);
                out.push(v);
            }
        }
        // Shrink one statement in place.
        for i in 0..self.len() {
            for s in shrink_stmt(&self[i]) {
                let mut v = self.clone();
                v[i] = s;
                out.push(v);
            }
        }
        out
    }
}

const OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Lt,
    BinOp::Eq,
];

fn emit(f: &mut FunctionBuilder<'_>, pool: &mut Vec<Reg>, stmts: &[Stmt], globals: &[encore_ir::GlobalId]) {
    for s in stmts {
        match s {
            Stmt::Arith { op, lhs, rhs } => {
                let a = pool[*lhs % pool.len()];
                let r = f.bin(OPS[*op % OPS.len()], a.into(), Operand::ImmI(*rhs));
                pool.push(r);
            }
            Stmt::LoadG { g, off } => {
                let r = f.load(AddrExpr::global(globals[*g % GLOBALS], *off));
                pool.push(r);
            }
            Stmt::StoreG { g, off, src } => {
                let v = pool[*src % pool.len()];
                f.store(AddrExpr::global(globals[*g % GLOBALS], *off), v.into());
            }
            Stmt::LoadIdx { g, idx } => {
                let raw = pool[*idx % pool.len()];
                let masked = f.bin(BinOp::And, raw.into(), Operand::ImmI(CELLS - 1));
                let r = f.load(AddrExpr::indexed(
                    MemBase::Global(globals[*g % GLOBALS]),
                    masked,
                    1,
                    0,
                ));
                pool.push(r);
            }
            Stmt::StoreIdx { g, idx, src } => {
                let raw = pool[*idx % pool.len()];
                let masked = f.bin(BinOp::And, raw.into(), Operand::ImmI(CELLS - 1));
                let v = pool[*src % pool.len()];
                f.store(
                    AddrExpr::indexed(MemBase::Global(globals[*g % GLOBALS]), masked, 1, 0),
                    v.into(),
                );
            }
            Stmt::If { cond, then_s, else_s } => {
                let c = pool[*cond % pool.len()];
                // Arms may define registers, but the pool must stay
                // consistent at the join: snapshot and restore.
                let snapshot = pool.clone();
                let then_v: Vec<Stmt> = then_s.clone();
                let else_v: Vec<Stmt> = else_s.clone();
                let g2 = globals.to_vec();
                let mut pool_then = snapshot.clone();
                let mut pool_else = snapshot.clone();
                f.if_else(
                    c.into(),
                    |f| emit(f, &mut pool_then, &then_v, &g2),
                    |f| emit(f, &mut pool_else, &else_v, &g2),
                );
            }
            Stmt::For { trip, body } => {
                let body_v = body.clone();
                let g2 = globals.to_vec();
                let snapshot = pool.clone();
                let mut pool_body = snapshot;
                f.for_range(Operand::ImmI(0), Operand::ImmI(*trip as i64), |f, i| {
                    pool_body.push(i);
                    emit(f, &mut pool_body, &body_v, &g2);
                });
            }
        }
    }
}

/// Materializes a random program as a verified module.
pub fn build_program(stmts: &[Stmt]) -> (Module, FuncId) {
    let mut mb = ModuleBuilder::new("generated");
    let globals: Vec<_> = (0..GLOBALS)
        .map(|g| mb.global_init(format!("g{g}"), CELLS as u32, vec![3, 1, 4, 1, 5, 9, 2, 6]))
        .collect();
    let entry = mb.function("main", 1, |f| {
        let p = f.param(0);
        let seed = f.bin(BinOp::Mul, p.into(), Operand::ImmI(7));
        let mut pool = vec![p, seed];
        emit(f, &mut pool, stmts, &globals);
        let last = *pool.last().expect("nonempty pool");
        f.ret(Some(last.into()));
    });
    let m = mb.finish();
    encore_ir::verify_module(&m).expect("generated module verifies");
    (m, entry)
}
