//! Shared test utilities: a proptest generator for random, terminating,
//! memory-safe IR programs.
//!
//! Programs are generated as statement trees (arithmetic, global
//! loads/stores with constant or bounded dynamic indices, bounded `if`s
//! and constant-trip loops), so every generated module verifies, runs to
//! completion, and is deterministic — the foundation for the end-to-end
//! soundness properties in the integration tests.

use encore_ir::{
    AddrExpr, BinOp, FuncId, FunctionBuilder, MemBase, Module, ModuleBuilder, Operand, Reg,
};
use proptest::prelude::*;

/// Number of globals every generated module declares.
pub const GLOBALS: usize = 3;
/// Cells per global.
pub const CELLS: i64 = 8;

/// A generated statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `r = op(a, b)` over existing integer registers/immediates.
    Arith { op: usize, lhs: usize, rhs: i64 },
    /// Load from a static global cell into a fresh register.
    LoadG { g: usize, off: i64 },
    /// Store an existing register to a static global cell.
    StoreG { g: usize, off: i64, src: usize },
    /// Load through a bounded dynamic index derived from a register.
    LoadIdx { g: usize, idx: usize },
    /// Store through a bounded dynamic index.
    StoreIdx { g: usize, idx: usize, src: usize },
    /// Two-way branch on a register value.
    If { cond: usize, then_s: Vec<Stmt>, else_s: Vec<Stmt> },
    /// Constant-trip loop (always terminates).
    For { trip: u8, body: Vec<Stmt> },
}

/// Strategy producing a statement list of bounded depth and size.
pub fn stmt_strategy() -> impl Strategy<Value = Vec<Stmt>> {
    prop::collection::vec(stmt_leaf_or_nested(), 1..10)
}

fn stmt_leaf_or_nested() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (0usize..8, 0usize..8, -4i64..16).prop_map(|(op, lhs, rhs)| Stmt::Arith { op, lhs, rhs }),
        (0usize..GLOBALS, 0..CELLS).prop_map(|(g, off)| Stmt::LoadG { g, off }),
        (0usize..GLOBALS, 0..CELLS, 0usize..8)
            .prop_map(|(g, off, src)| Stmt::StoreG { g, off, src }),
        (0usize..GLOBALS, 0usize..8).prop_map(|(g, idx)| Stmt::LoadIdx { g, idx }),
        (0usize..GLOBALS, 0usize..8, 0usize..8)
            .prop_map(|(g, idx, src)| Stmt::StoreIdx { g, idx, src }),
    ];
    leaf.prop_recursive(3, 32, 5, |inner| {
        prop_oneof![
            (
                0usize..8,
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(cond, then_s, else_s)| Stmt::If { cond, then_s, else_s }),
            (1u8..5, prop::collection::vec(inner, 1..4))
                .prop_map(|(trip, body)| Stmt::For { trip, body }),
        ]
    })
}

const OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Lt,
    BinOp::Eq,
];

fn emit(f: &mut FunctionBuilder<'_>, pool: &mut Vec<Reg>, stmts: &[Stmt], globals: &[encore_ir::GlobalId]) {
    for s in stmts {
        match s {
            Stmt::Arith { op, lhs, rhs } => {
                let a = pool[*lhs % pool.len()];
                let r = f.bin(OPS[*op % OPS.len()], a.into(), Operand::ImmI(*rhs));
                pool.push(r);
            }
            Stmt::LoadG { g, off } => {
                let r = f.load(AddrExpr::global(globals[*g % GLOBALS], *off));
                pool.push(r);
            }
            Stmt::StoreG { g, off, src } => {
                let v = pool[*src % pool.len()];
                f.store(AddrExpr::global(globals[*g % GLOBALS], *off), v.into());
            }
            Stmt::LoadIdx { g, idx } => {
                let raw = pool[*idx % pool.len()];
                let masked = f.bin(BinOp::And, raw.into(), Operand::ImmI(CELLS - 1));
                let r = f.load(AddrExpr::indexed(
                    MemBase::Global(globals[*g % GLOBALS]),
                    masked,
                    1,
                    0,
                ));
                pool.push(r);
            }
            Stmt::StoreIdx { g, idx, src } => {
                let raw = pool[*idx % pool.len()];
                let masked = f.bin(BinOp::And, raw.into(), Operand::ImmI(CELLS - 1));
                let v = pool[*src % pool.len()];
                f.store(
                    AddrExpr::indexed(MemBase::Global(globals[*g % GLOBALS]), masked, 1, 0),
                    v.into(),
                );
            }
            Stmt::If { cond, then_s, else_s } => {
                let c = pool[*cond % pool.len()];
                // Arms may define registers, but the pool must stay
                // consistent at the join: snapshot and restore.
                let snapshot = pool.clone();
                let then_v: Vec<Stmt> = then_s.clone();
                let else_v: Vec<Stmt> = else_s.clone();
                let g2 = globals.to_vec();
                let mut pool_then = snapshot.clone();
                let mut pool_else = snapshot.clone();
                f.if_else(
                    c.into(),
                    |f| emit(f, &mut pool_then, &then_v, &g2),
                    |f| emit(f, &mut pool_else, &else_v, &g2),
                );
            }
            Stmt::For { trip, body } => {
                let body_v = body.clone();
                let g2 = globals.to_vec();
                let snapshot = pool.clone();
                let mut pool_body = snapshot;
                f.for_range(Operand::ImmI(0), Operand::ImmI(*trip as i64), |f, i| {
                    pool_body.push(i);
                    emit(f, &mut pool_body, &body_v, &g2);
                });
            }
        }
    }
}

/// Materializes a random program as a verified module.
pub fn build_program(stmts: &[Stmt]) -> (Module, FuncId) {
    let mut mb = ModuleBuilder::new("generated");
    let globals: Vec<_> = (0..GLOBALS)
        .map(|g| mb.global_init(format!("g{g}"), CELLS as u32, vec![3, 1, 4, 1, 5, 9, 2, 6]))
        .collect();
    let entry = mb.function("main", 1, |f| {
        let p = f.param(0);
        let seed = f.bin(BinOp::Mul, p.into(), Operand::ImmI(7));
        let mut pool = vec![p, seed];
        emit(f, &mut pool, stmts, &globals);
        let last = *pool.last().expect("nonempty pool");
        f.ret(Some(last.into()));
    });
    let m = mb.finish();
    encore_ir::verify_module(&m).expect("generated module verifies");
    (m, entry)
}
