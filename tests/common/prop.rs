//! A zero-dependency property-test harness.
//!
//! Replaces `proptest` for this workspace's integration tests so the
//! whole test suite builds and runs offline. The design is the familiar
//! generate/check/shrink loop, stripped to what these tests need:
//!
//! * **Fixed-seed case iteration.** Case `i` of property `name` is
//!   generated from `SplitMix64::for_index(fnv1a(name), i)` — runs are
//!   bit-reproducible across machines and thread counts, with no state
//!   files. A failure report names the property and case index, which
//!   is all it takes to regenerate the exact input.
//! * **A generator trait.** [`Arbitrary`] produces values from a
//!   [`Gen`] (the harness's random source) and enumerates structurally
//!   smaller variants via [`Arbitrary::shrink`].
//! * **Greedy shrinking.** On failure the runner repeatedly takes the
//!   first shrink candidate that still fails, until a fixpoint (or a
//!   step cap), then panics with the minimal input's `Debug` form.
//!
//! Known failure cases worth keeping are written back into the suite as
//! explicit `#[test]` regression functions (see
//! `optimizer_properties.rs`), not as opaque seed files.

// Each integration test file compiles this module as part of its own
// crate and uses a different subset of the harness.
#![allow(dead_code, unused_macros, unused_imports)]

use encore::sim::rng::{Rng, SplitMix64};

/// The random source handed to generators.
#[derive(Clone, Debug)]
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// The generator for case `index` of the property keyed by `seed`.
    pub fn for_case(seed: u64, index: u64) -> Self {
        Self { rng: SplitMix64::for_index(seed, index) }
    }

    /// Direct access to the underlying stream, for generators (like the
    /// workload fuzzer) whose own API is written against [`Rng`].
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn usize(&mut self, bound: usize) -> usize {
        self.rng.gen_usize(bound)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn i64(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_i64(lo, hi)
    }

    /// Uniform `u8` in `[lo, hi)`.
    pub fn u8(&mut self, lo: u8, hi: u8) -> u8 {
        self.rng.gen_i64(lo as i64, hi as i64) as u8
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.gen_bool()
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.rng.gen_below(den) < num
    }
}

/// Values the harness can generate and shrink.
pub trait Arbitrary: Clone + std::fmt::Debug {
    /// Generates one value.
    fn arbitrary(g: &mut Gen) -> Self;

    /// Structurally smaller candidates, most aggressive first. An empty
    /// list ends shrinking.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// An `i64` drawn uniformly from `[LO, HI)`, shrinking toward `LO`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Bounded<const LO: i64, const HI: i64>(pub i64);

impl<const LO: i64, const HI: i64> Arbitrary for Bounded<LO, HI> {
    fn arbitrary(g: &mut Gen) -> Self {
        Bounded(g.i64(LO, HI))
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for cand in [LO, LO + (self.0 - LO) / 2, self.0 - 1] {
            if (LO..self.0).contains(&cand) && !out.iter().any(|b: &Self| b.0 == cand) {
                out.push(Bounded(cand));
            }
        }
        out
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(g: &mut Gen) -> Self {
        (A::arbitrary(g), B::arbitrary(g))
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> =
            self.0.shrink().into_iter().map(|a| (a, self.1.clone())).collect();
        out.extend(self.1.shrink().into_iter().map(|b| (self.0.clone(), b)));
        out
    }
}

/// Property verdict: `Err` carries the failure message.
pub type PropResult = Result<(), String>;

/// FNV-1a, for deriving a stable per-property seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Cap on greedy shrink steps (each step re-runs the property).
const MAX_SHRINK_STEPS: usize = 400;

/// Runs `prop` against `cases` generated inputs; on failure, shrinks
/// greedily and panics with the minimal counterexample.
///
/// # Panics
///
/// Panics (failing the test) on the first input whose shrunk form still
/// violates the property.
pub fn check<T: Arbitrary>(name: &str, cases: u64, prop: impl Fn(&T) -> PropResult) {
    let seed = fnv1a(name);
    for index in 0..cases {
        let mut g = Gen::for_case(seed, index);
        let input = T::arbitrary(&mut g);
        if let Err(first_err) = prop(&input) {
            let (minimal, err, steps) = shrink_failure(input, first_err, &prop);
            panic!(
                "property `{name}` failed at case {index}/{cases} \
                 (seed {seed:#018x}, minimized in {steps} steps)\n\
                 minimal input: {minimal:#?}\n\
                 failure: {err}"
            );
        }
    }
}

fn shrink_failure<T: Arbitrary>(
    input: T,
    err: String,
    prop: &impl Fn(&T) -> PropResult,
) -> (T, String, usize) {
    let mut cur = input;
    let mut cur_err = err;
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in cur.shrink() {
            if let Err(e) = prop(&cand) {
                cur = cand;
                cur_err = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (cur, cur_err, steps)
}

/// Fails the property unless `cond` holds.
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the property unless both sides compare equal.
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                left,
                right
            ));
        }
    }};
}

pub(crate) use {prop_assert, prop_assert_eq};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let mut a = Gen::for_case(fnv1a("x"), 3);
        let mut b = Gen::for_case(fnv1a("x"), 3);
        let va: Vec<i64> = (0..8).map(|_| a.i64(-100, 100)).collect();
        let vb: Vec<i64> = (0..8).map(|_| b.i64(-100, 100)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u64;
        let counter = std::cell::Cell::new(0u64);
        check::<Bounded<0, 10>>("always_in_range", 32, |b| {
            counter.set(counter.get() + 1);
            prop_assert!((0..10).contains(&b.0));
            Ok(())
        });
        seen += counter.get();
        assert_eq!(seen, 32);
    }

    #[test]
    #[should_panic(expected = "minimal input")]
    fn failing_property_shrinks_and_panics() {
        check::<Bounded<0, 1000>>("never_above_five", 64, |b| {
            prop_assert!(b.0 <= 5, "{} > 5", b.0);
            Ok(())
        });
    }

    #[test]
    fn shrinking_reaches_the_boundary() {
        // Shrink 900 under "fails when > 5": greedy descent must land
        // exactly on the smallest failing value, 6.
        let (min, _, _) = shrink_failure(Bounded::<0, 1000>(900), "seed".into(), &|b| {
            if b.0 > 5 { Err("too big".into()) } else { Ok(()) }
        });
        assert_eq!(min.0, 6);
    }
}
