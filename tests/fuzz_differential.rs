//! Differential splice-soundness fuzzing.
//!
//! The hand-built kernels in `sfi_campaign.rs` prove each divergence
//! splice rule *can* fire and classify correctly; this suite asks the
//! stronger question on machine-written programs: for arbitrary
//! verified, terminating IR — aliased global/slot/heap traffic, stores
//! through `lea`'d pointers, branchy CFGs, extern output — is the
//! campaign report **bit-identical** with splicing on and off, at every
//! snapshot stride and worker count? Programs come from the seeded
//! fuzzer in `encore::workloads::fuzz`; failures shrink greedily to a
//! minimal statement tree via the harness in `common/prop.rs`, and
//! shrunk counterexamples worth keeping become the named
//! `regression_fuzz_*` tests at the bottom.
//!
//! Case count: `ENCORE_FUZZ_CASES` (default 64; `scripts/ci.sh` pins
//! 64, the acceptance sweep uses 512). Cases are a pure function of
//! the property name and index, so a larger run always covers a
//! smaller one.

mod common;

use common::prop::{check, prop_assert, Arbitrary, Gen, PropResult};
use encore::core::{Encore, EncoreConfig};
use encore::sim::{
    run_function, CampaignReport, FaultAction, FaultModelKind, FaultPlan, LatencyHistogram,
    RunConfig, SfiCampaign, SfiConfig, FaultOutcome, SfiStats, SpliceRule, Value,
};
use encore::workloads::fuzz::{self, FuzzProgram, FuzzStmt};

/// Newtype so the fuzzer's program type can implement the local
/// [`Arbitrary`] trait.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Fuzzed(FuzzProgram);

impl Arbitrary for Fuzzed {
    fn arbitrary(g: &mut Gen) -> Self {
        Fuzzed(fuzz::gen_program(g.rng()))
    }

    fn shrink(&self) -> Vec<Self> {
        fuzz::shrink_program(&self.0).into_iter().map(Fuzzed).collect()
    }
}

/// `ENCORE_FUZZ_CASES` override, defaulting to a tier-1-friendly count.
fn case_count(default: u64) -> u64 {
    std::env::var("ENCORE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Outcome-relevant projection of a report: everything except the
/// config echo (worker count legitimately differs) and the splice
/// bookkeeping (engagement counts legitimately vary with the stride).
fn results(r: &CampaignReport) -> (SfiStats, [LatencyHistogram; FaultOutcome::ALL.len()]) {
    (r.stats, r.latency)
}

/// Profiles `prog`, runs it through the Encore pipeline, and returns
/// the instrumented module + region map ready for a campaign.
fn instrument(prog: &FuzzProgram) -> Result<(encore_ir::Module, encore::core::RegionMap, encore_ir::FuncId), String> {
    let (module, entry) = fuzz::build(prog);
    let train = run_function(
        &module,
        None,
        entry,
        &[Value::Int(prog.arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    if !train.completed {
        return Err(format!("training run trapped: {:?}", train.trap));
    }
    let outcome = Encore::new(EncoreConfig::default().with_overhead_budget(1e9))
        .run(&module, train.profile.as_ref().unwrap());
    Ok((outcome.instrumented.module, outcome.instrumented.map, entry))
}

/// The differential property: campaign results are a pure function of
/// `(module, args, seed, injections, dmax, model)` — splicing,
/// snapshot stride and worker count must all be invisible in the
/// report, for every member of the fault-model taxonomy.
fn splice_stride_workers_invisible_under(
    prog: &FuzzProgram,
    model: FaultModelKind,
) -> PropResult {
    let (module, map, entry) = instrument(prog).map_err(|e| e.to_string())?;
    let mut reference: Option<(SfiStats, [LatencyHistogram; FaultOutcome::ALL.len()])> = None;
    for stride in [0u64, 1, 64] {
        let base = SfiConfig {
            injections: 12,
            dmax: 16,
            seed: 0xD1FF,
            workers: 1,
            snapshot_stride: stride,
            model,
            ..Default::default()
        };
        let campaign =
            SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(prog.arg)], &base)
                .map_err(|e| format!("golden run failed: {e}"))?;
        for workers in [1usize, 8] {
            let on = SfiConfig { workers, ..base };
            let off = SfiConfig { splice: false, ..on };
            let with = campaign.run_report(&on);
            let without = campaign.run_report(&off);
            prop_assert!(
                results(&with) == results(&without),
                "splice changed {model} results at stride {stride}, {workers} workers:\n\
                 with:    {:?}\nwithout: {:?}",
                results(&with),
                results(&without)
            );
            prop_assert!(
                without.splice.total() == 0,
                "splice-off {model} campaign recorded engagements at stride {stride}"
            );
            match &reference {
                None => reference = Some(results(&with)),
                Some(r) => prop_assert!(
                    *r == results(&with),
                    "stride {stride} / {workers} workers changed {model} results:\n\
                     reference: {r:?}\ngot:       {:?}",
                    results(&with)
                ),
            }
        }
    }
    Ok(())
}

#[test]
fn fuzzed_campaigns_are_splice_stride_and_worker_invariant() {
    check::<Fuzzed>("fuzz_differential", case_count(64), |f| {
        splice_stride_workers_invisible_under(&f.0, FaultModelKind::default())
    });
}

/// The same invariance for every non-default member of the taxonomy:
/// wrong-edge and address faults defer firing past their sampled
/// ordinal and power failures detect instantly, so each model stresses
/// the snapshot-resume and splice machinery along a different seam.
/// Fewer cases per model than the default sweep — the product with
/// five models keeps tier-1 time bounded.
#[test]
fn fuzzed_campaigns_are_invariant_under_every_fault_model() {
    for model in FaultModelKind::ALL {
        if model == FaultModelKind::default() {
            continue;
        }
        check::<Fuzzed>(&format!("fuzz_differential_{}", model.label()), case_count(16), |f| {
            splice_stride_workers_invisible_under(&f.0, model)
        });
    }
}

/// The dirty-diff-vs-full-diff differential: the O(dirty) page-hash
/// probe path (`incremental_diff: true`, the default) and the retained
/// full-scan reference must produce **bit-identical**
/// [`CampaignReport`]s — outcomes, latency histograms, *and* splice
/// engagement counts, because both paths probe the same schedule and
/// compare the same state by the same `PartialEq` semantics. Only the
/// config echo of the knob itself may differ.
fn incremental_diff_invisible_under(prog: &FuzzProgram, model: FaultModelKind) -> PropResult {
    let (module, map, entry) = instrument(prog).map_err(|e| e.to_string())?;
    for stride in [0u64, 1, 64] {
        let base = SfiConfig {
            injections: 12,
            dmax: 16,
            seed: 0xD1FF,
            workers: 1,
            snapshot_stride: stride,
            model,
            ..Default::default()
        };
        let campaign =
            SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(prog.arg)], &base)
                .map_err(|e| format!("golden run failed: {e}"))?;
        for workers in [1usize, 8] {
            let inc = SfiConfig { workers, ..base };
            let full = SfiConfig { incremental_diff: false, ..inc };
            let fast = campaign.run_report(&inc);
            let mut slow = campaign.run_report(&full);
            // The flag echo is the one intended difference; normalize
            // it so the assertion covers every other report field.
            slow.config.incremental_diff = true;
            prop_assert!(
                fast == slow,
                "incremental diff changed {model} report at stride {stride}, \
                 {workers} workers:\nincremental: {fast:?}\nfull-scan:   {slow:?}"
            );
        }
    }
    Ok(())
}

#[test]
fn fuzzed_campaigns_agree_between_incremental_and_fullscan_diff() {
    check::<Fuzzed>("fuzz_differential_incremental", case_count(48), |f| {
        incremental_diff_invisible_under(&f.0, FaultModelKind::default())
    });
}

/// The same dirty-diff differential under every non-default fault
/// model: power failures roll machines back (exercising the
/// reset-dirty-on-resume seam), address faults corrupt heap traffic
/// (new-object pages), and deferred-arming models stretch run suffixes
/// (long incremental probe chains).
#[test]
fn fuzzed_campaigns_agree_between_diff_paths_under_every_fault_model() {
    for model in FaultModelKind::ALL {
        if model == FaultModelKind::default() {
            continue;
        }
        check::<Fuzzed>(
            &format!("fuzz_differential_incremental_{}", model.label()),
            case_count(12),
            |f| incremental_diff_invisible_under(&f.0, model),
        );
    }
}

/// Draws a stream of deliberately non-uniform [`FaultPlan`]s — sites
/// clustered at both ends of the eligible range (plus one past it),
/// dense and sparse multi-bit masks, wrong-edge, address and
/// power-failure actions, latencies from 0 to far beyond the campaign
/// Dmax — none of which any [`FaultModelKind`] sampler would emit with
/// these marginals.
fn adversarial_plans(eligible: u64) -> Vec<FaultPlan> {
    let mut plans = Vec::new();
    let mut state = 0x00AD_5EEDu64;
    let mut next = move || {
        // xorshift64*: cheap, deterministic, independent of the
        // simulator's own RNG so plan and model spaces can't collude.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let sites = [0, 1, eligible / 2, eligible.saturating_sub(1), eligible + 3];
    let latencies = [0u64, 1, 7, 33, 1000];
    for (i, &inject_at) in sites.iter().enumerate() {
        let action = match i % 5 {
            0 => FaultAction::FlipBits { mask: 1u64 << (next() % 64) },
            1 => FaultAction::FlipBits { mask: next() | 1 }, // dense multi-bit
            2 => FaultAction::WrongEdge,
            3 => FaultAction::CorruptAddress { mask: (next() % 0xFFFF) + 1 },
            _ => FaultAction::PowerFailure,
        };
        for &detect_latency in &latencies {
            plans.push(FaultPlan { inject_at, action, detect_latency });
        }
    }
    plans
}

/// Beyond model-sampled spaces: for arbitrary plans (any action, any
/// site, any latency) the snapshot-resume path must classify exactly
/// like a from-scratch replay. This is the per-plan granularity of the
/// campaign-level invariance above, on plans no sampler produces.
#[test]
fn fuzzed_fault_plans_agree_between_resume_and_scratch() {
    check::<Fuzzed>("fuzz_differential_plans", case_count(24), |f| {
        let (module, map, entry) = instrument(&f.0).map_err(|e| e.to_string())?;
        let cfg = SfiConfig { dmax: 16, snapshot_stride: 4, ..Default::default() };
        let campaign =
            SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(f.0.arg)], &cfg)
                .map_err(|e| format!("golden run failed: {e}"))?;
        for plan in adversarial_plans(campaign.golden().eligible_insts) {
            let resumed = campaign.run_one(plan);
            let scratch = campaign.run_one_from_scratch(plan);
            prop_assert!(
                resumed == scratch,
                "resume/scratch diverged on {plan:?}: {resumed:?} vs {scratch:?}"
            );
        }
        Ok(())
    });
}

/// Campaign shape under which the corpus must reach every splice rule.
fn engagement_config() -> SfiConfig {
    SfiConfig {
        injections: 48,
        dmax: 8,
        seed: 0x5E1CE,
        workers: 2,
        snapshot_stride: 4,
        ..Default::default()
    }
}

/// Runs one campaign over `prog` and returns the per-rule engagement
/// counts `(converged, dead_diff, sdc)`.
fn engagements(prog: &FuzzProgram) -> (usize, usize, usize) {
    let Ok((module, map, entry)) = instrument(prog) else { return (0, 0, 0) };
    let cfg = engagement_config();
    let Ok(campaign) =
        SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(prog.arg)], &cfg)
    else {
        return (0, 0, 0);
    };
    let report = campaign.run_report(&cfg);
    (
        report.splice.count(SpliceRule::Converged),
        report.splice.count(SpliceRule::DeadDiff),
        report.splice.count(SpliceRule::Sdc),
    )
}

/// The generator's whole point is that every `SpliceRule` path is
/// reachable from machine-written programs, not just from the
/// hand-built kernel in `sfi_campaign.rs`. A fixed-seed corpus sweep
/// must engage all three rules.
#[test]
fn fuzz_corpus_reaches_every_splice_rule() {
    let (mut a, mut b, mut c) = (0, 0, 0);
    for index in 0..192 {
        let (ca, cb, cc) = engagements(&fuzz::program_for(0x005E_EDF0, index));
        a += ca;
        b += cb;
        c += cc;
        if a > 0 && b > 0 && c > 0 {
            return;
        }
    }
    panic!("corpus never engaged every rule: converged={a} dead_diff={b} sdc={c}");
}

/// Dev tool (run with `--ignored --nocapture`): searches the corpus for
/// the first few cases engaging each rule and prints their shrunk
/// forms, for promotion to `regression_fuzz_*` tests below.
#[test]
#[ignore = "regression-case mining tool, not a CI check"]
fn find_rule_regression_candidates() {
    for (label, pick) in [
        ("converged", 0usize),
        ("dead_diff", 1),
        ("sdc", 2),
    ] {
        for index in 0..512u64 {
            let prog = fuzz::program_for(0x005E_EDF0, index);
            let counts = engagements(&prog);
            let count_of = |t: (usize, usize, usize)| [t.0, t.1, t.2][pick];
            if count_of(counts) == 0 {
                continue;
            }
            // Greedy shrink under "the rule still engages".
            let mut cur = prog;
            'shrink: loop {
                for cand in fuzz::shrink_program(&cur) {
                    if count_of(engagements(&cand)) > 0 {
                        cur = cand;
                        continue 'shrink;
                    }
                }
                break;
            }
            println!("=== {label} (seed 0x005E_EDF0 case {index}) ===\n{cur:#?}");
            break;
        }
    }
}

/// Asserts `prog` engages `rule` under [`engagement_config`] and that
/// the differential property holds on it — the contract every
/// `regression_fuzz_*` case below must keep satisfying.
fn assert_rule_regression(prog: &FuzzProgram, rule: SpliceRule) {
    let counts = engagements(prog);
    let count = match rule {
        SpliceRule::Converged => counts.0,
        SpliceRule::DeadDiff => counts.1,
        SpliceRule::Sdc => counts.2,
    };
    assert!(count > 0, "{rule:?} no longer engages on {prog:#?} (counts {counts:?})");
    splice_stride_workers_invisible_under(prog, FaultModelKind::default()).unwrap_or_else(|e| {
        panic!("differential property regressed on {prog:#?}:\n{e}");
    });
}

/// Fuzzer-found (seed `0x005E_EDF0` case 0, shrunk): a fuel-1 `while`
/// whose body only prints. Faults detected inside the activation roll
/// back and re-execute to a bit-identical diff — rule (a) `Converged`
/// must certify the recovery without replaying the golden suffix.
#[test]
fn regression_fuzz_converged_rollback_heals_printing_while_loop() {
    let prog = FuzzProgram {
        arg: 3,
        stmts: vec![FuzzStmt::While {
            fuel: 1,
            cond: 4,
            body: vec![FuzzStmt::Print { src: 14 }],
        }],
    };
    assert_rule_regression(&prog, SpliceRule::Converged);
}

/// Fuzzer-found (seed `0x005E_EDF0` case 0, shrunk): a heap load and a
/// division feed a printing loop, then two stores land on global `g2`.
/// A fault that corrupts one of those cells before rollback leaves a
/// residual diff the golden suffix's own stores overwrite — rule (b)
/// `DeadDiff`.
#[test]
fn regression_fuzz_dead_diff_golden_suffix_overwrites_global_cell() {
    let prog = FuzzProgram {
        arg: 3,
        stmts: vec![
            FuzzStmt::LoadHeap { idx: 8 },
            FuzzStmt::Arith { op: 4, lhs: 12, rhs: 0 },
            FuzzStmt::While {
                fuel: 1,
                cond: 4,
                body: vec![FuzzStmt::Print { src: 14 }],
            },
            FuzzStmt::StoreG { g: 2, off: 14, src: 5 },
            FuzzStmt::StoreG { g: 2, off: 9, src: 5 },
        ],
    };
    assert_rule_regression(&prog, SpliceRule::DeadDiff);
}

/// Fuzzer-found (seed `0x005E_EDF0` case 2, shrunk): a single-trip loop
/// storing through a `lea`'d global pointer. A corrupted masked index
/// strays the store to a cell nothing rewrites or reads — a persistent
/// dead diff the splice certifies as rule (c) `Sdc` without running
/// the suffix.
#[test]
fn regression_fuzz_sdc_stray_store_through_global_pointer() {
    let prog = FuzzProgram {
        arg: 1,
        stmts: vec![FuzzStmt::For {
            trip: 1,
            body: vec![FuzzStmt::StorePtr { g: 1, idx: 1, src: 10 }],
        }],
    };
    assert_rule_regression(&prog, SpliceRule::Sdc);
}
