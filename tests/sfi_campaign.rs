//! Determinism guarantees of the parallel fault-injection engine,
//! checked end-to-end on real instrumented workloads and hand-built
//! kernels:
//!
//! * the same seed yields bit-identical results at **any** worker
//!   count (sharding is a pure load-balancing choice);
//! * the snapshot stride is a pure performance knob: campaigns resumed
//!   from golden-run checkpoints are bit-identical to campaigns run
//!   from scratch, at every stride;
//! * any single injection can be replayed in isolation from its
//!   `(seed, index)` pair — the whole campaign is just the sum of its
//!   independently derivable members;
//! * every [`FaultOutcome`] variant is reachable, and the snapshot and
//!   from-scratch paths agree on each of them.

use encore::core::{Encore, EncoreConfig, RegionInfo, RegionMap};
use encore::sim::{
    run_function, CampaignReport, FaultOutcome, FaultPlan, RunConfig, SfiCampaign, SfiConfig,
    SpliceRule, Value,
};
use encore_ir::{
    AddrExpr, BinOp, BlockId, FuncId, Inst, MemBase, ModuleBuilder, Operand, RegionId,
};

/// Profiles and instruments `name`, returning the protected module and
/// its region map (owned, so tests can borrow them into a campaign).
fn instrument(name: &str) -> (encore_ir::Module, RegionMap, FuncId, i64) {
    let w = encore::workloads::by_name(name).expect("known workload");
    let train = run_function(
        &w.module,
        None,
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    assert!(train.completed);
    let outcome = Encore::new(EncoreConfig::default().with_overhead_budget(1e9))
        .run(&w.module, train.profile.as_ref().unwrap());
    (outcome.instrumented.module, outcome.instrumented.map, w.entry, w.eval_arg)
}

fn config(injections: usize, workers: usize) -> SfiConfig {
    SfiConfig { injections, dmax: 64, seed: 0xDEC0DE, workers, ..Default::default() }
}

/// Outcome-relevant parts of a report (its `config` records the worker
/// count, which legitimately differs between the runs under test).
fn results(r: &CampaignReport) -> (encore::sim::SfiStats, &[encore::sim::LatencyHistogram]) {
    (r.stats, &r.latency)
}

#[test]
fn parallel_campaign_is_bit_identical_to_sequential() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let base = config(96, 1);
    let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(arg)], &base)
        .expect("golden run completes");
    let sequential = campaign.run_report(&base);
    assert_eq!(sequential.stats.injections, 96);

    for workers in [2, 3, 8] {
        let parallel = campaign.run_report(&config(96, workers));
        assert_eq!(
            results(&sequential),
            results(&parallel),
            "workers = {workers} changed campaign results"
        );
    }
}

#[test]
fn same_seed_twice_is_bit_identical() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let cfg = config(96, 4);
    let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(arg)], &cfg)
        .expect("golden run completes");
    let first = campaign.run_report(&cfg);
    let second = campaign.run_report(&cfg);
    assert_eq!(first, second);
}

#[test]
fn different_seeds_draw_different_plans() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let a = config(96, 1);
    let b = SfiConfig { seed: a.seed ^ 1, ..a };
    let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(arg)], &a)
        .expect("golden run completes");
    assert!(
        (0..16).any(|i| campaign.plan_for_index(&a, i) != campaign.plan_for_index(&b, i)),
        "independent seeds produced identical plans for the first 16 injections"
    );
}

/// Every member of a parallel campaign can be replayed alone from its
/// `(seed, index)` pair; replaying all of them reconstructs the parallel
/// report exactly.
#[test]
fn replaying_each_index_reconstructs_the_parallel_report() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let cfg = config(48, 8);
    let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(arg)], &cfg)
        .expect("golden run completes");
    let parallel = campaign.run_report(&cfg);

    let mut replayed = CampaignReport::new(cfg);
    for index in 0..cfg.injections as u64 {
        let plan = campaign.plan_for_index(&cfg, index);
        replayed.record(plan, campaign.run_one(plan));
    }
    // `run_one` replays without splice bookkeeping, so compare the
    // outcome-relevant projection rather than the whole report.
    assert_eq!(results(&parallel), results(&replayed));
}

/// The snapshot stride is a pure performance knob: disabled (0),
/// every-instruction (1), coarse (64) and effectively-unreachable
/// (`u64::MAX`) strides all produce bit-identical campaign reports on
/// three instrumented workloads.
#[test]
fn snapshot_stride_never_changes_campaign_reports() {
    for name in ["rawcaudio", "rawdaudio", "g721encode"] {
        let (module, map, entry, _) = instrument(name);
        // A small eval input keeps the stride-1 log (one checkpoint per
        // dynamic instruction) affordable.
        let args = [Value::Int(48)];
        let reference_cfg = SfiConfig {
            injections: 48,
            dmax: 64,
            seed: 0xBEEF,
            workers: 2,
            snapshot_stride: 0,
            ..Default::default()
        };
        let reference =
            SfiCampaign::prepare(&module, Some(&map), entry, &args, &reference_cfg)
                .expect("golden run completes")
                .run_report(&reference_cfg);

        for stride in [1, 64, u64::MAX] {
            let cfg = SfiConfig { snapshot_stride: stride, ..reference_cfg };
            let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &args, &cfg)
                .expect("golden run completes");
            if stride == 1 {
                assert!(
                    !campaign.snapshots().is_empty(),
                    "{name}: stride 1 must capture checkpoints"
                );
            }
            let report = campaign.run_report(&cfg);
            // Splice bookkeeping legitimately varies with the stride
            // (stride 0 has no snapshots to splice from); outcomes and
            // latencies must not.
            assert_eq!(
                results(&reference),
                results(&report),
                "{name}: stride {stride} changed the results"
            );
        }
    }
}

/// Fixed-seed incremental-diff smoke (run by name from `scripts/ci.sh`):
/// one real workload, both compare paths, full reports asserted equal.
/// The O(dirty) page-hash probe path and the full-scan reference probe
/// the same schedule and compare the same state by the same `PartialEq`
/// semantics, so *everything* — outcomes, latency histograms, splice
/// engagement counts, suffix instructions saved — must match; only the
/// config echo of the knob itself is normalized away.
#[test]
fn incremental_diff_smoke_reports_identical_both_paths() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let inc = config(64, 2);
    assert!(inc.incremental_diff, "incremental compare is the default");
    let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(arg)], &inc)
        .expect("golden run completes");
    let fast = campaign.run_report(&inc);
    let mut slow = campaign.run_report(&SfiConfig { incremental_diff: false, ..inc });
    slow.config.incremental_diff = true;
    assert_eq!(fast, slow, "full-scan reference disagreed with the incremental path");
    assert!(
        fast.splice.cost.probes > 0,
        "smoke campaign never probed — the property ran vacuously"
    );
}

/// Builds a RegionMap with one entry per (func, header, recovery block).
fn map_of(entries: &[(FuncId, BlockId, BlockId)]) -> RegionMap {
    let mut map = RegionMap::default();
    for (i, (func, header, rb)) in entries.iter().enumerate() {
        map.regions.push(RegionInfo {
            id: RegionId::new(i as u32),
            func: *func,
            header: *header,
            blocks: vec![*header],
            recovery_block: Some(*rb),
            protected: true,
            idempotent: false,
            mem_ckpts: 0,
            reg_ckpts: 0,
            avg_activation_len: 0.0,
            exec_fraction: 0.0,
        });
    }
    map
}

/// Runs one injection per eligible site (up to `max_sites`) through BOTH
/// the snapshot-resume path and the retained from-scratch path, asserts
/// they classify every plan identically, and returns the outcomes.
fn sweep_outcomes(
    campaign: &SfiCampaign<'_>,
    bit: u8,
    detect_latency: u64,
    max_sites: u64,
) -> Vec<FaultOutcome> {
    (0..campaign.golden().eligible_insts.min(max_sites))
        .map(|inject_at| {
            let plan = FaultPlan::bit_flip(inject_at, bit, detect_latency);
            let outcome = campaign.run_one(plan);
            assert_eq!(
                outcome,
                campaign.run_one_from_scratch(plan),
                "snapshot resume diverged from scratch for {plan:?}"
            );
            outcome
        })
        .collect()
}

/// Hand-built kernels drive each [`FaultOutcome`] variant at least once,
/// with the snapshot and from-scratch paths agreeing on all of them
/// (via [`sweep_outcomes`]).
#[test]
fn every_fault_outcome_variant_is_exercised() {
    // Dense checkpointing so even these short kernels resume mid-trace.
    let cfg = SfiConfig { snapshot_stride: 8, ..Default::default() };

    // Benign / SilentCorruption / DetectedUnrecoverable: straight-line
    // unprotected code with one architecturally dead load.
    let mut mb = ModuleBuilder::new("straight");
    let g = mb.global_init("g", 2, vec![5, 0]);
    let fid = mb.function("f", 0, |f| {
        let _dead = f.load(AddrExpr::global(g, 0));
        let a = f.load(AddrExpr::global(g, 0));
        f.store(AddrExpr::global(g, 1), a.into());
        let v = f.load(AddrExpr::global(g, 0));
        let v2 = f.bin(BinOp::Mul, v.into(), Operand::ImmI(2));
        f.store(AddrExpr::global(g, 0), v2.into());
        f.ret(Some(v2.into()));
    });
    let m = mb.finish();
    let campaign =
        SfiCampaign::prepare(&m, None, fid, &[], &cfg).expect("golden run completes");
    // Latency long enough that the run completes before detection: the
    // fault either lands in the dead load (benign) or corrupts state.
    let quiet = sweep_outcomes(&campaign, 3, 1000, 64);
    assert!(quiet.contains(&FaultOutcome::Benign), "no benign outcome: {quiet:?}");
    assert!(
        quiet.contains(&FaultOutcome::SilentCorruption),
        "no silent corruption: {quiet:?}"
    );
    // Immediate detection with no armed region is unrecoverable.
    let detected = sweep_outcomes(&campaign, 0, 0, 64);
    assert!(
        detected.contains(&FaultOutcome::DetectedUnrecoverable),
        "no detected-unrecoverable outcome: {detected:?}"
    );

    // Recovered: the checkpointed WAR loop `g[0] += 10` with immediate
    // detection — rollback restores the entry state and re-execution
    // converges on the golden result.
    let mut mb = ModuleBuilder::new("war");
    let g = mb.global("g", 2);
    let fid = mb.function("f", 0, |f| {
        let hdr = f.add_block();
        let recovery = f.add_block();
        let exit = f.add_block();
        let i = f.mov(Operand::ImmI(0));
        f.jump(hdr);
        f.switch_to(hdr);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        f.emit(Inst::CheckpointReg { reg: i });
        f.emit(Inst::CheckpointMem { addr: AddrExpr::global(g, 0) });
        let cur = f.load(AddrExpr::global(g, 0));
        let next = f.bin(BinOp::Add, cur.into(), Operand::ImmI(10));
        f.store(AddrExpr::global(g, 0), next.into());
        f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1));
        let more = f.bin(BinOp::Lt, i.into(), Operand::ImmI(4));
        f.branch(more.into(), hdr, exit);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        f.jump(hdr);
        f.switch_to(exit);
        let out = f.load(AddrExpr::global(g, 0));
        f.ret(Some(out.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);
    let campaign =
        SfiCampaign::prepare(&m, Some(&map), fid, &[], &cfg).expect("golden run completes");
    let recovered = sweep_outcomes(&campaign, 1, 0, 64);
    assert!(
        recovered.contains(&FaultOutcome::Recovered),
        "no recovered outcome: {recovered:?}"
    );

    // Hung: flipping the sign bit of the loop counter in a pure-compute
    // loop makes it run until the fuel budget trips, provided the
    // detection latency is far beyond the budget.
    let mut mb = ModuleBuilder::new("spin");
    let g = mb.global("g", 1);
    let fid = mb.function("f", 1, |f| {
        let n = f.param(0);
        let acc = f.mov(Operand::ImmI(0));
        f.for_range(Operand::ImmI(0), n.into(), |f, i| {
            let s = f.bin(BinOp::Add, acc.into(), i.into());
            f.mov_to(acc, s.into());
        });
        f.store(AddrExpr::global(g, 0), acc.into());
        f.ret(Some(acc.into()));
    });
    let m = mb.finish();
    let campaign = SfiCampaign::prepare(&m, None, fid, &[Value::Int(32)], &cfg)
        .expect("golden run completes");
    let hung = sweep_outcomes(&campaign, 63, 1 << 40, 16);
    assert!(hung.contains(&FaultOutcome::Hung), "no hung outcome: {hung:?}");

    // Crashed: the fault escapes the region through an uncheckpointed
    // global before the symptom trap; rollback consumes the fault, then
    // the recovery path indexes with the corrupted value and dies.
    let mut mb = ModuleBuilder::new("crash");
    let src = mb.global_init("src", 1, vec![3]);
    let bounce = mb.global("bounce", 1);
    let data = mb.global_init("data", 8, (0..8).collect());
    let out = mb.global("out", 1);
    let fid = mb.function("f", 0, |f| {
        let hdr = f.add_block();
        let recovery = f.add_block();
        let exit = f.add_block();
        f.jump(hdr);
        f.switch_to(hdr);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        let a = f.load(AddrExpr::global(src, 0));
        f.store(AddrExpr::global(bounce, 0), a.into());
        let b = f.load(AddrExpr::indexed(MemBase::Global(data), a, 1, 0));
        f.store(AddrExpr::global(out, 0), b.into());
        f.jump(exit);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        let c = f.load(AddrExpr::global(bounce, 0));
        let d = f.load(AddrExpr::indexed(MemBase::Global(data), c, 1, 0));
        f.store(AddrExpr::global(out, 0), d.into());
        f.jump(exit);
        f.switch_to(exit);
        let v = f.load(AddrExpr::global(out, 0));
        f.ret(Some(v.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);
    let campaign =
        SfiCampaign::prepare(&m, Some(&map), fid, &[], &cfg).expect("golden run completes");
    let crashed = sweep_outcomes(&campaign, 40, 50, 64);
    assert!(crashed.contains(&FaultOutcome::Crashed), "no crashed outcome: {crashed:?}");
}

/// The divergence splice is a pure performance knob: campaigns with
/// splicing disabled (`--no-splice`) produce bit-identical outcome
/// counts and latency histograms, at every snapshot stride and worker
/// count, on three instrumented workloads — including rawcaudio, whose
/// injections are majority-SilentCorruption (the population rule (c)
/// targets). Splicing must actually engage on that SDC population for
/// the optimisation to mean anything, so the test also demands a
/// non-zero rule-(c) count somewhere in the sweep.
#[test]
fn splice_never_changes_campaign_results() {
    let mut spliced_sdc = 0;
    for name in ["rawcaudio", "rawdaudio", "g721encode"] {
        let (module, map, entry, _) = instrument(name);
        // Small eval input keeps the stride-1 snapshot log affordable.
        let args = [Value::Int(48)];
        for stride in [0u64, 1, 64] {
            let on = SfiConfig {
                injections: 48,
                dmax: 64,
                seed: 0xFEED,
                workers: 1,
                snapshot_stride: stride,
                ..Default::default()
            };
            assert!(on.splice, "splicing must be on by default");
            let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &args, &on)
                .expect("golden run completes");
            for workers in [1, 8] {
                let on = SfiConfig { workers, ..on };
                let off = SfiConfig { splice: false, ..on };
                let with = campaign.run_report(&on);
                let without = campaign.run_report(&off);
                assert_eq!(
                    results(&with),
                    results(&without),
                    "{name}: splice changed results at stride {stride}, {workers} workers"
                );
                assert_eq!(
                    without.splice.total(),
                    0,
                    "{name}: splice-off campaign recorded engagements"
                );
                if stride == 0 {
                    assert_eq!(
                        with.splice.total(),
                        0,
                        "{name}: nothing to splice from without snapshots"
                    );
                }
                spliced_sdc += with.splice.sdc;
            }
        }
    }
    assert!(spliced_sdc > 0, "rule (c) never engaged on the SDC population");
}

/// A protected copy loop whose store index `t = i + 0` is a fault
/// target: corrupting `t` lands the store on the wrong cell of `dst`, a
/// global the program writes but never reads. After the symptom trap
/// rolls the activation back (the loop counter is register-checkpointed,
/// so control realigns), the stray cell's fate picks the splice rule:
///
/// * overwritten by a later iteration → diff dies in the golden write
///   set → rule (b) `DeadDiff`, outcome `Recovered`;
/// * below the resume point (or past the loop bound) → nothing rewrites
///   it → persistent dead global → rule (c) `Sdc`;
/// * fault rolled back before the store retired → diff empties →
///   rule (a) `Converged`.
fn splice_kernel() -> (encore_ir::Module, RegionMap, FuncId) {
    let mut mb = ModuleBuilder::new("splice");
    let src = mb.global_init("src", 8, (1..=8).collect());
    let dst = mb.global("dst", 512);
    let fid = mb.function("f", 0, |f| {
        let hdr = f.add_block();
        let recovery = f.add_block();
        let exit = f.add_block();
        let i = f.mov(Operand::ImmI(0));
        f.jump(hdr);
        f.switch_to(hdr);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        f.emit(Inst::CheckpointReg { reg: i });
        let t = f.bin(BinOp::Add, i.into(), Operand::ImmI(0));
        let v = f.load(AddrExpr::indexed(MemBase::Global(src), i, 1, 0));
        let v3 = f.bin(BinOp::Mul, v.into(), Operand::ImmI(3));
        f.store(AddrExpr::indexed(MemBase::Global(dst), t, 1, 0), v3.into());
        f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1));
        let more = f.bin(BinOp::Lt, i.into(), Operand::ImmI(8));
        f.branch(more.into(), hdr, exit);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        f.jump(hdr);
        f.switch_to(exit);
        f.ret(Some(i.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);
    (m, map, fid)
}

/// Injects `(inject_at, bit, detect_latency)` at every eligible site,
/// asserting the spliced outcome agrees with the from-scratch replay and
/// that each fired rule implies the outcome it certifies. Returns the
/// rules that fired.
fn sweep_rules(campaign: &SfiCampaign<'_>, bit: u8, detect_latency: u64) -> Vec<SpliceRule> {
    (0..campaign.golden().eligible_insts)
        .filter_map(|inject_at| {
            let plan = FaultPlan::bit_flip(inject_at, bit, detect_latency);
            let (outcome, engagement) = campaign.run_one_detailed(plan, true);
            assert_eq!(
                outcome,
                campaign.run_one_from_scratch(plan),
                "splice misclassified {plan:?}"
            );
            let rule = engagement.map(|e| e.rule);
            match rule {
                Some(SpliceRule::Converged | SpliceRule::DeadDiff) => {
                    assert_eq!(outcome, FaultOutcome::Recovered, "{plan:?} fired {rule:?}")
                }
                Some(SpliceRule::Sdc) => {
                    assert_eq!(outcome, FaultOutcome::SilentCorruption, "{plan:?} fired Sdc")
                }
                None => {}
            }
            rule
        })
        .collect()
}

#[test]
fn splice_rule_converged_fires_when_rollback_heals_everything() {
    let (m, map, fid) = splice_kernel();
    let cfg = SfiConfig { snapshot_stride: 4, ..Default::default() };
    let campaign =
        SfiCampaign::prepare(&m, Some(&map), fid, &[], &cfg).expect("golden run completes");
    // Latency 0: the trap fires before the corrupted value escapes to
    // memory, so rollback restores the pre-fault state bit-exactly.
    let rules = sweep_rules(&campaign, 0, 0);
    assert!(rules.contains(&SpliceRule::Converged), "rule (a) never fired: {rules:?}");
}

#[test]
fn splice_rule_dead_diff_fires_when_the_golden_suffix_overwrites() {
    let (m, map, fid) = splice_kernel();
    let cfg = SfiConfig { snapshot_stride: 4, ..Default::default() };
    let campaign =
        SfiCampaign::prepare(&m, Some(&map), fid, &[], &cfg).expect("golden run completes");
    // Bit 0 on an even `t` strays the store to `dst[t + 1]`, which
    // iteration `t + 1` of the suffix rewrites; latency 4 lets the
    // store retire first.
    let rules = sweep_rules(&campaign, 0, 4);
    assert!(rules.contains(&SpliceRule::DeadDiff), "rule (b) never fired: {rules:?}");
}

#[test]
fn splice_rule_sdc_fires_on_persistent_dead_corruption() {
    let (m, map, fid) = splice_kernel();
    let cfg = SfiConfig { snapshot_stride: 4, ..Default::default() };
    let campaign =
        SfiCampaign::prepare(&m, Some(&map), fid, &[], &cfg).expect("golden run completes");
    // Bit 5 sends the stray store to `dst[t + 32]`, which no iteration
    // ever touches again: a dead global divergence that persists to the
    // final state.
    let rules = sweep_rules(&campaign, 5, 4);
    assert!(rules.contains(&SpliceRule::Sdc), "rule (c) never fired: {rules:?}");
}

/// Fixed-seed smoke check wired into `scripts/ci.sh`: one small campaign
/// on the hand-built kernel engages all three splice rules and saves
/// golden-suffix work. Deterministic by construction (seeded plans,
/// deterministic interpreter), so a pass here is stable.
#[test]
fn splice_smoke_all_rules_engage() {
    let (m, map, fid) = splice_kernel();
    let cfg = SfiConfig {
        injections: 512,
        dmax: 8,
        seed: 0x5E1CE,
        workers: 2,
        snapshot_stride: 4,
        ..Default::default()
    };
    let campaign =
        SfiCampaign::prepare(&m, Some(&map), fid, &[], &cfg).expect("golden run completes");
    let report = campaign.run_report(&cfg);
    for rule in SpliceRule::ALL {
        assert!(
            report.splice.count(rule) > 0,
            "{} rule never engaged: {:?}",
            rule.label(),
            report.splice
        );
    }
    assert!(report.splice.dyn_insts_saved > 0, "splicing saved no work");
}

/// A workload whose golden run traps cannot host a campaign; `prepare`
/// reports it as a typed error instead of panicking.
#[test]
fn prepare_surfaces_trapping_golden_run_as_error() {
    let mut mb = ModuleBuilder::new("bad");
    let g = mb.global("g", 1);
    let fid = mb.function("f", 0, |f| {
        f.store(AddrExpr::global(g, 7), Operand::ImmI(1)); // out of bounds
        f.ret(None);
    });
    let m = mb.finish();
    let err = SfiCampaign::prepare(&m, None, fid, &[], &SfiConfig::default())
        .expect_err("trapping golden run must be an error");
    assert!(err.to_string().contains("golden run trapped"), "unhelpful error: {err}");
}
