//! Determinism guarantees of the parallel fault-injection engine,
//! checked end-to-end on a real instrumented workload:
//!
//! * the same seed yields bit-identical results at **any** worker
//!   count (sharding is a pure load-balancing choice), and
//! * any single injection can be replayed in isolation from its
//!   `(seed, index)` pair — the whole campaign is just the sum of its
//!   independently derivable members.

use encore::core::{Encore, EncoreConfig};
use encore::sim::{run_function, CampaignReport, RunConfig, SfiCampaign, SfiConfig, Value};

/// Profiles and instruments `name`, returning the protected module and
/// its region map (owned, so tests can borrow them into a campaign).
fn instrument(name: &str) -> (encore_ir::Module, encore::core::RegionMap, encore_ir::FuncId, i64) {
    let w = encore::workloads::by_name(name).expect("known workload");
    let train = run_function(
        &w.module,
        None,
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    assert!(train.completed);
    let outcome = Encore::new(EncoreConfig::default().with_overhead_budget(1e9))
        .run(&w.module, train.profile.as_ref().unwrap());
    (outcome.instrumented.module, outcome.instrumented.map, w.entry, w.eval_arg)
}

fn config(injections: usize, workers: usize) -> SfiConfig {
    SfiConfig { injections, dmax: 64, seed: 0xDEC0DE, workers, ..Default::default() }
}

/// Outcome-relevant parts of a report (its `config` records the worker
/// count, which legitimately differs between the runs under test).
fn results(r: &CampaignReport) -> (encore::sim::SfiStats, &[encore::sim::LatencyHistogram]) {
    (r.stats, &r.latency)
}

#[test]
fn parallel_campaign_is_bit_identical_to_sequential() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let base = config(96, 1);
    let campaign = SfiCampaign::new(&module, Some(&map), entry, &[Value::Int(arg)], &base);
    let sequential = campaign.run_report(&base);
    assert_eq!(sequential.stats.injections, 96);

    for workers in [2, 3, 8] {
        let parallel = campaign.run_report(&config(96, workers));
        assert_eq!(
            results(&sequential),
            results(&parallel),
            "workers = {workers} changed campaign results"
        );
    }
}

#[test]
fn same_seed_twice_is_bit_identical() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let cfg = config(96, 4);
    let campaign = SfiCampaign::new(&module, Some(&map), entry, &[Value::Int(arg)], &cfg);
    let first = campaign.run_report(&cfg);
    let second = campaign.run_report(&cfg);
    assert_eq!(first, second);
}

#[test]
fn different_seeds_draw_different_plans() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let a = config(96, 1);
    let b = SfiConfig { seed: a.seed ^ 1, ..a };
    let campaign = SfiCampaign::new(&module, Some(&map), entry, &[Value::Int(arg)], &a);
    assert!(
        (0..16).any(|i| campaign.plan_for_index(&a, i) != campaign.plan_for_index(&b, i)),
        "independent seeds produced identical plans for the first 16 injections"
    );
}

/// Every member of a parallel campaign can be replayed alone from its
/// `(seed, index)` pair; replaying all of them reconstructs the parallel
/// report exactly.
#[test]
fn replaying_each_index_reconstructs_the_parallel_report() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let cfg = config(48, 8);
    let campaign = SfiCampaign::new(&module, Some(&map), entry, &[Value::Int(arg)], &cfg);
    let parallel = campaign.run_report(&cfg);

    let mut replayed = CampaignReport::new(cfg);
    for index in 0..cfg.injections as u64 {
        let plan = campaign.plan_for_index(&cfg, index);
        replayed.record(plan, campaign.run_one(plan));
    }
    assert_eq!(parallel, replayed);
}
