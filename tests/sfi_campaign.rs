//! Determinism guarantees of the parallel fault-injection engine,
//! checked end-to-end on real instrumented workloads and hand-built
//! kernels:
//!
//! * the same seed yields bit-identical results at **any** worker
//!   count (sharding is a pure load-balancing choice);
//! * the snapshot stride is a pure performance knob: campaigns resumed
//!   from golden-run checkpoints are bit-identical to campaigns run
//!   from scratch, at every stride;
//! * any single injection can be replayed in isolation from its
//!   `(seed, index)` pair — the whole campaign is just the sum of its
//!   independently derivable members;
//! * every [`FaultOutcome`] variant is reachable, and the snapshot and
//!   from-scratch paths agree on each of them.

use encore::core::{Encore, EncoreConfig, RegionInfo, RegionMap};
use encore::sim::{
    run_function, CampaignReport, FaultOutcome, FaultPlan, RunConfig, SfiCampaign, SfiConfig,
    Value,
};
use encore_ir::{
    AddrExpr, BinOp, BlockId, FuncId, Inst, MemBase, ModuleBuilder, Operand, RegionId,
};

/// Profiles and instruments `name`, returning the protected module and
/// its region map (owned, so tests can borrow them into a campaign).
fn instrument(name: &str) -> (encore_ir::Module, RegionMap, FuncId, i64) {
    let w = encore::workloads::by_name(name).expect("known workload");
    let train = run_function(
        &w.module,
        None,
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    assert!(train.completed);
    let outcome = Encore::new(EncoreConfig::default().with_overhead_budget(1e9))
        .run(&w.module, train.profile.as_ref().unwrap());
    (outcome.instrumented.module, outcome.instrumented.map, w.entry, w.eval_arg)
}

fn config(injections: usize, workers: usize) -> SfiConfig {
    SfiConfig { injections, dmax: 64, seed: 0xDEC0DE, workers, ..Default::default() }
}

/// Outcome-relevant parts of a report (its `config` records the worker
/// count, which legitimately differs between the runs under test).
fn results(r: &CampaignReport) -> (encore::sim::SfiStats, &[encore::sim::LatencyHistogram]) {
    (r.stats, &r.latency)
}

#[test]
fn parallel_campaign_is_bit_identical_to_sequential() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let base = config(96, 1);
    let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(arg)], &base)
        .expect("golden run completes");
    let sequential = campaign.run_report(&base);
    assert_eq!(sequential.stats.injections, 96);

    for workers in [2, 3, 8] {
        let parallel = campaign.run_report(&config(96, workers));
        assert_eq!(
            results(&sequential),
            results(&parallel),
            "workers = {workers} changed campaign results"
        );
    }
}

#[test]
fn same_seed_twice_is_bit_identical() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let cfg = config(96, 4);
    let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(arg)], &cfg)
        .expect("golden run completes");
    let first = campaign.run_report(&cfg);
    let second = campaign.run_report(&cfg);
    assert_eq!(first, second);
}

#[test]
fn different_seeds_draw_different_plans() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let a = config(96, 1);
    let b = SfiConfig { seed: a.seed ^ 1, ..a };
    let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(arg)], &a)
        .expect("golden run completes");
    assert!(
        (0..16).any(|i| campaign.plan_for_index(&a, i) != campaign.plan_for_index(&b, i)),
        "independent seeds produced identical plans for the first 16 injections"
    );
}

/// Every member of a parallel campaign can be replayed alone from its
/// `(seed, index)` pair; replaying all of them reconstructs the parallel
/// report exactly.
#[test]
fn replaying_each_index_reconstructs_the_parallel_report() {
    let (module, map, entry, arg) = instrument("rawcaudio");
    let cfg = config(48, 8);
    let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &[Value::Int(arg)], &cfg)
        .expect("golden run completes");
    let parallel = campaign.run_report(&cfg);

    let mut replayed = CampaignReport::new(cfg);
    for index in 0..cfg.injections as u64 {
        let plan = campaign.plan_for_index(&cfg, index);
        replayed.record(plan, campaign.run_one(plan));
    }
    assert_eq!(parallel, replayed);
}

/// The snapshot stride is a pure performance knob: disabled (0),
/// every-instruction (1), coarse (64) and effectively-unreachable
/// (`u64::MAX`) strides all produce bit-identical campaign reports on
/// three instrumented workloads.
#[test]
fn snapshot_stride_never_changes_campaign_reports() {
    for name in ["rawcaudio", "rawdaudio", "g721encode"] {
        let (module, map, entry, _) = instrument(name);
        // A small eval input keeps the stride-1 log (one checkpoint per
        // dynamic instruction) affordable.
        let args = [Value::Int(48)];
        let reference_cfg = SfiConfig {
            injections: 48,
            dmax: 64,
            seed: 0xBEEF,
            workers: 2,
            snapshot_stride: 0,
            ..Default::default()
        };
        let reference =
            SfiCampaign::prepare(&module, Some(&map), entry, &args, &reference_cfg)
                .expect("golden run completes")
                .run_report(&reference_cfg);

        for stride in [1, 64, u64::MAX] {
            let cfg = SfiConfig { snapshot_stride: stride, ..reference_cfg };
            let campaign = SfiCampaign::prepare(&module, Some(&map), entry, &args, &cfg)
                .expect("golden run completes");
            if stride == 1 {
                assert!(
                    !campaign.snapshots().is_empty(),
                    "{name}: stride 1 must capture checkpoints"
                );
            }
            let mut report = campaign.run_report(&cfg);
            // The config is embedded in the report; the stride is the
            // one field allowed to differ.
            report.config.snapshot_stride = reference_cfg.snapshot_stride;
            assert_eq!(reference, report, "{name}: stride {stride} changed the report");
        }
    }
}

/// Builds a RegionMap with one entry per (func, header, recovery block).
fn map_of(entries: &[(FuncId, BlockId, BlockId)]) -> RegionMap {
    let mut map = RegionMap::default();
    for (i, (func, header, rb)) in entries.iter().enumerate() {
        map.regions.push(RegionInfo {
            id: RegionId::new(i as u32),
            func: *func,
            header: *header,
            blocks: vec![*header],
            recovery_block: Some(*rb),
            protected: true,
            idempotent: false,
            mem_ckpts: 0,
            reg_ckpts: 0,
            avg_activation_len: 0.0,
            exec_fraction: 0.0,
        });
    }
    map
}

/// Runs one injection per eligible site (up to `max_sites`) through BOTH
/// the snapshot-resume path and the retained from-scratch path, asserts
/// they classify every plan identically, and returns the outcomes.
fn sweep_outcomes(
    campaign: &SfiCampaign<'_>,
    bit: u8,
    detect_latency: u64,
    max_sites: u64,
) -> Vec<FaultOutcome> {
    (0..campaign.golden().eligible_insts.min(max_sites))
        .map(|inject_at| {
            let plan = FaultPlan { inject_at, bit, detect_latency };
            let outcome = campaign.run_one(plan);
            assert_eq!(
                outcome,
                campaign.run_one_from_scratch(plan),
                "snapshot resume diverged from scratch for {plan:?}"
            );
            outcome
        })
        .collect()
}

/// Hand-built kernels drive each [`FaultOutcome`] variant at least once,
/// with the snapshot and from-scratch paths agreeing on all of them
/// (via [`sweep_outcomes`]).
#[test]
fn every_fault_outcome_variant_is_exercised() {
    // Dense checkpointing so even these short kernels resume mid-trace.
    let cfg = SfiConfig { snapshot_stride: 8, ..Default::default() };

    // Benign / SilentCorruption / DetectedUnrecoverable: straight-line
    // unprotected code with one architecturally dead load.
    let mut mb = ModuleBuilder::new("straight");
    let g = mb.global_init("g", 2, vec![5, 0]);
    let fid = mb.function("f", 0, |f| {
        let _dead = f.load(AddrExpr::global(g, 0));
        let a = f.load(AddrExpr::global(g, 0));
        f.store(AddrExpr::global(g, 1), a.into());
        let v = f.load(AddrExpr::global(g, 0));
        let v2 = f.bin(BinOp::Mul, v.into(), Operand::ImmI(2));
        f.store(AddrExpr::global(g, 0), v2.into());
        f.ret(Some(v2.into()));
    });
    let m = mb.finish();
    let campaign =
        SfiCampaign::prepare(&m, None, fid, &[], &cfg).expect("golden run completes");
    // Latency long enough that the run completes before detection: the
    // fault either lands in the dead load (benign) or corrupts state.
    let quiet = sweep_outcomes(&campaign, 3, 1000, 64);
    assert!(quiet.contains(&FaultOutcome::Benign), "no benign outcome: {quiet:?}");
    assert!(
        quiet.contains(&FaultOutcome::SilentCorruption),
        "no silent corruption: {quiet:?}"
    );
    // Immediate detection with no armed region is unrecoverable.
    let detected = sweep_outcomes(&campaign, 0, 0, 64);
    assert!(
        detected.contains(&FaultOutcome::DetectedUnrecoverable),
        "no detected-unrecoverable outcome: {detected:?}"
    );

    // Recovered: the checkpointed WAR loop `g[0] += 10` with immediate
    // detection — rollback restores the entry state and re-execution
    // converges on the golden result.
    let mut mb = ModuleBuilder::new("war");
    let g = mb.global("g", 2);
    let fid = mb.function("f", 0, |f| {
        let hdr = f.add_block();
        let recovery = f.add_block();
        let exit = f.add_block();
        let i = f.mov(Operand::ImmI(0));
        f.jump(hdr);
        f.switch_to(hdr);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        f.emit(Inst::CheckpointReg { reg: i });
        f.emit(Inst::CheckpointMem { addr: AddrExpr::global(g, 0) });
        let cur = f.load(AddrExpr::global(g, 0));
        let next = f.bin(BinOp::Add, cur.into(), Operand::ImmI(10));
        f.store(AddrExpr::global(g, 0), next.into());
        f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1));
        let more = f.bin(BinOp::Lt, i.into(), Operand::ImmI(4));
        f.branch(more.into(), hdr, exit);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        f.jump(hdr);
        f.switch_to(exit);
        let out = f.load(AddrExpr::global(g, 0));
        f.ret(Some(out.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);
    let campaign =
        SfiCampaign::prepare(&m, Some(&map), fid, &[], &cfg).expect("golden run completes");
    let recovered = sweep_outcomes(&campaign, 1, 0, 64);
    assert!(
        recovered.contains(&FaultOutcome::Recovered),
        "no recovered outcome: {recovered:?}"
    );

    // Hung: flipping the sign bit of the loop counter in a pure-compute
    // loop makes it run until the fuel budget trips, provided the
    // detection latency is far beyond the budget.
    let mut mb = ModuleBuilder::new("spin");
    let g = mb.global("g", 1);
    let fid = mb.function("f", 1, |f| {
        let n = f.param(0);
        let acc = f.mov(Operand::ImmI(0));
        f.for_range(Operand::ImmI(0), n.into(), |f, i| {
            let s = f.bin(BinOp::Add, acc.into(), i.into());
            f.mov_to(acc, s.into());
        });
        f.store(AddrExpr::global(g, 0), acc.into());
        f.ret(Some(acc.into()));
    });
    let m = mb.finish();
    let campaign = SfiCampaign::prepare(&m, None, fid, &[Value::Int(32)], &cfg)
        .expect("golden run completes");
    let hung = sweep_outcomes(&campaign, 63, 1 << 40, 16);
    assert!(hung.contains(&FaultOutcome::Hung), "no hung outcome: {hung:?}");

    // Crashed: the fault escapes the region through an uncheckpointed
    // global before the symptom trap; rollback consumes the fault, then
    // the recovery path indexes with the corrupted value and dies.
    let mut mb = ModuleBuilder::new("crash");
    let src = mb.global_init("src", 1, vec![3]);
    let bounce = mb.global("bounce", 1);
    let data = mb.global_init("data", 8, (0..8).collect());
    let out = mb.global("out", 1);
    let fid = mb.function("f", 0, |f| {
        let hdr = f.add_block();
        let recovery = f.add_block();
        let exit = f.add_block();
        f.jump(hdr);
        f.switch_to(hdr);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        let a = f.load(AddrExpr::global(src, 0));
        f.store(AddrExpr::global(bounce, 0), a.into());
        let b = f.load(AddrExpr::indexed(MemBase::Global(data), a, 1, 0));
        f.store(AddrExpr::global(out, 0), b.into());
        f.jump(exit);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        let c = f.load(AddrExpr::global(bounce, 0));
        let d = f.load(AddrExpr::indexed(MemBase::Global(data), c, 1, 0));
        f.store(AddrExpr::global(out, 0), d.into());
        f.jump(exit);
        f.switch_to(exit);
        let v = f.load(AddrExpr::global(out, 0));
        f.ret(Some(v.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);
    let campaign =
        SfiCampaign::prepare(&m, Some(&map), fid, &[], &cfg).expect("golden run completes");
    let crashed = sweep_outcomes(&campaign, 40, 50, 64);
    assert!(crashed.contains(&FaultOutcome::Crashed), "no crashed outcome: {crashed:?}");
}

/// A workload whose golden run traps cannot host a campaign; `prepare`
/// reports it as a typed error instead of panicking.
#[test]
fn prepare_surfaces_trapping_golden_run_as_error() {
    let mut mb = ModuleBuilder::new("bad");
    let g = mb.global("g", 1);
    let fid = mb.function("f", 0, |f| {
        f.store(AddrExpr::global(g, 7), Operand::ImmI(1)); // out of bounds
        f.ret(None);
    });
    let m = mb.finish();
    let err = SfiCampaign::prepare(&m, None, fid, &[], &SfiConfig::default())
        .expect_err("trapping golden run must be an error");
    assert!(err.to_string().contains("golden run trapped"), "unhelpful error: {err}");
}
