//! Property tests for the optimizer: every pass combination must
//! preserve program semantics on random programs and on the whole
//! workload suite, and optimized programs must remain analyzable and
//! protectable by Encore.

mod common;

use common::prop::{check, prop_assert, prop_assert_eq, Bounded, PropResult};
use common::{build_program, Stmt};
use encore::core::{Encore, EncoreConfig};
use encore::ir::verify_module;
use encore::opt::optimize_module;
use encore::sim::{run_function, RunConfig, Value};

const CASES: u64 = 48;

/// The property body of `optimization_preserves_semantics`, shared with
/// the named regression cases below.
fn semantics_preserved(stmts: &[Stmt], arg: i64) -> PropResult {
    let (module, entry) = build_program(stmts);
    let baseline =
        run_function(&module, None, entry, &[Value::Int(arg)], &RunConfig::default());
    prop_assert!(baseline.completed);

    let mut optimized = module.clone();
    optimize_module(&mut optimized);
    verify_module(&optimized).expect("optimized module verifies");

    let opt_run =
        run_function(&optimized, None, entry, &[Value::Int(arg)], &RunConfig::default());
    prop_assert!(opt_run.completed);
    prop_assert!(opt_run.observably_equal(&baseline));
    // No strict "never slower" claim: LICM speculates pure
    // computations out of conditional arms (profitable on hot loops,
    // a few extra instructions when the arm never runs — property
    // testing found exactly that counterexample; see the regression
    // below). Static code size may grow only by the inserted preheader
    // jumps.
    let loops = optimized.funcs.iter().map(|f| f.blocks.len()).sum::<usize>();
    prop_assert!(
        optimized.static_inst_count() <= module.static_inst_count() + loops,
        "static size grew beyond preheader jumps"
    );
    Ok(())
}

/// `optimize(p)` is observably equivalent to `p` on random programs.
#[test]
fn optimization_preserves_semantics() {
    check::<(Vec<Stmt>, Bounded<0, 12>)>(
        "optimization_preserves_semantics",
        CASES,
        |(stmts, arg)| semantics_preserved(stmts, arg.0),
    );
}

/// The shrunk counterexample proptest once recorded in
/// `optimizer_properties.proptest-regressions`: a single-trip loop whose
/// cold `else` arm both loads and stores through a dynamic index. LICM's
/// speculation of the masked index computation out of the arm grew the
/// dynamic instruction count — the reason the property above bounds
/// *static* size plus preheader jumps instead of claiming "never
/// slower". Kept as an explicit named case so it runs on every suite
/// invocation, shrink-free.
#[test]
fn regression_licm_speculates_cold_indexed_else_arm() {
    let stmts = vec![Stmt::For {
        trip: 1,
        body: vec![Stmt::If {
            cond: 0,
            then_s: vec![],
            else_s: vec![
                Stmt::LoadIdx { g: 0, idx: 0 },
                Stmt::StoreIdx { g: 0, idx: 0, src: 0 },
            ],
        }],
    }];
    semantics_preserved(&stmts, 1).expect("regression case must pass");
}

/// Encore still protects optimized random programs transparently.
#[test]
fn optimized_programs_remain_protectable() {
    check::<Vec<Stmt>>("optimized_programs_remain_protectable", CASES, |stmts| {
        let (module, entry) = build_program(stmts);
        let mut optimized = module;
        optimize_module(&mut optimized);

        let train = run_function(
            &optimized,
            None,
            entry,
            &[Value::Int(5)],
            &RunConfig { collect_profile: true, ..Default::default() },
        );
        prop_assert!(train.completed);
        let outcome = Encore::new(EncoreConfig::default().with_overhead_budget(1e9))
            .run(&optimized, train.profile.as_ref().unwrap());
        verify_module(&outcome.instrumented.module).expect("instrumented verifies");

        let baseline =
            run_function(&optimized, None, entry, &[Value::Int(7)], &RunConfig::default());
        let instrumented = run_function(
            &outcome.instrumented.module,
            Some(&outcome.instrumented.map),
            entry,
            &[Value::Int(7)],
            &RunConfig::default(),
        );
        prop_assert!(instrumented.completed);
        prop_assert!(instrumented.observably_equal(&baseline));
        Ok(())
    });
}

/// Optimization is idempotent: a second run changes nothing.
#[test]
fn optimization_is_idempotent() {
    check::<Vec<Stmt>>("optimization_is_idempotent", CASES, |stmts| {
        let (module, _) = build_program(stmts);
        let mut once = module;
        optimize_module(&mut once);
        let mut twice = once.clone();
        let stats = optimize_module(&mut twice);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(stats.iterations, 1);
        Ok(())
    });
}

#[test]
fn whole_suite_is_optimization_stable() {
    // Every workload must behave identically after optimization, on its
    // evaluation input.
    for w in encore::workloads::all() {
        let baseline = run_function(
            &w.module,
            None,
            w.entry,
            &[Value::Int(w.eval_arg)],
            &RunConfig::default(),
        );
        assert!(baseline.completed, "{}", w.name);
        let mut optimized = w.module.clone();
        let stats = optimize_module(&mut optimized);
        verify_module(&optimized).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
        let opt_run = run_function(
            &optimized,
            None,
            w.entry,
            &[Value::Int(w.eval_arg)],
            &RunConfig::default(),
        );
        assert!(opt_run.completed, "{}", w.name);
        assert!(
            opt_run.observably_equal(&baseline),
            "{}: optimization changed behavior",
            w.name
        );
        assert!(
            opt_run.dyn_insts <= baseline.dyn_insts,
            "{}: optimization slowed the program down",
            w.name
        );
        let _ = stats;
    }
}
