//! Property-based invariants of the analysis stack, exercised on random
//! generated programs: printer/parser round-trips, dominator-tree laws,
//! region partition well-formedness, alias-oracle monotonicity, and
//! analysis determinism.

mod common;

use common::prop::{check, prop_assert, prop_assert_eq, Bounded};
use common::{build_program, Stmt};
use encore::analysis::{DomTree, IntervalHierarchy, LoopForest, Profile};
use encore::analysis::{OptimisticAlias, StaticAlias};
use encore::core::idempotence::{IdempotenceAnalyzer, RegionSpec, Verdict};
use encore::ir::parse_module;

const CASES: u64 = 48;

/// `parse(print(m)) == m` for every generated module.
#[test]
fn print_parse_roundtrip() {
    check::<Vec<Stmt>>("print_parse_roundtrip", CASES, |stmts| {
        let (module, _) = build_program(stmts);
        let text = module.to_string();
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(reparsed, module);
        Ok(())
    });
}

/// Dominator-tree laws: the entry dominates everything reachable,
/// idom(b) strictly dominates b, and dominance is transitive along
/// idom chains.
#[test]
fn dominator_laws() {
    check::<Vec<Stmt>>("dominator_laws", CASES, |stmts| {
        let (module, entry) = build_program(stmts);
        let func = module.func(entry);
        let dom = DomTree::compute(func);
        for b in func.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            prop_assert!(dom.dominates(func.entry(), b));
            prop_assert!(dom.dominates(b, b));
            if let Some(idom) = dom.idom(b) {
                prop_assert!(dom.dominates(idom, b));
                prop_assert!(idom != b);
            }
        }
        Ok(())
    });
}

/// Interval invariants: each level partitions the reachable blocks
/// and every interval header dominates its members (SEME-ness).
#[test]
fn interval_laws() {
    check::<Vec<Stmt>>("interval_laws", CASES, |stmts| {
        let (module, entry) = build_program(stmts);
        let func = module.func(entry);
        let dom = DomTree::compute(func);
        let hierarchy = IntervalHierarchy::compute(func);
        let reachable: std::collections::BTreeSet<_> = func
            .block_ids()
            .filter(|b| dom.is_reachable(*b))
            .collect();
        for level in &hierarchy.levels {
            let mut seen = std::collections::BTreeSet::new();
            for iv in level {
                for b in &iv.blocks {
                    prop_assert!(seen.insert(*b), "block in two intervals");
                    prop_assert!(dom.dominates(iv.header, *b));
                }
            }
            prop_assert_eq!(&seen, &reachable);
        }
        Ok(())
    });
}

/// Builder-generated CFGs are reducible: every cycle is a natural
/// loop and nesting is strict containment.
#[test]
fn loops_are_reducible() {
    check::<Vec<Stmt>>("loops_are_reducible", CASES, |stmts| {
        let (module, entry) = build_program(stmts);
        let func = module.func(entry);
        let dom = DomTree::compute(func);
        let forest = LoopForest::compute(func, &dom);
        prop_assert!(!forest.irreducible);
        for (i, l) in forest.loops.iter().enumerate() {
            prop_assert!(l.blocks.contains(&l.header));
            prop_assert!(!l.latches.is_empty());
            if let Some(p) = l.parent {
                prop_assert!(l.blocks.is_subset(&forest.loops[p].blocks));
                prop_assert!(p != i);
            }
        }
        Ok(())
    });
}

/// The optimistic oracle never needs more checkpoints than the
/// conservative one, and an idempotent-under-static region stays
/// idempotent under optimistic.
#[test]
fn optimistic_is_never_worse() {
    check::<Vec<Stmt>>("optimistic_is_never_worse", CASES, |stmts| {
        let (module, entry) = build_program(stmts);
        let spec = RegionSpec {
            func: entry,
            header: module.func(entry).entry(),
            blocks: module.func(entry).block_ids().collect(),
        };
        let st = IdempotenceAnalyzer::new(&module, &StaticAlias)
            .analyze_region(&spec, &|_| false);
        let op = IdempotenceAnalyzer::new(&module, &OptimisticAlias)
            .analyze_region(&spec, &|_| false);
        prop_assert!(op.cp.len() <= st.cp.len());
        if st.verdict == Verdict::Idempotent {
            prop_assert_eq!(op.verdict, Verdict::Idempotent);
        }
        Ok(())
    });
}

/// Pruning blocks can only shrink the checkpoint set.
#[test]
fn pruning_shrinks_cp() {
    check::<(Vec<Stmt>, Bounded<0, 6>)>("pruning_shrinks_cp", CASES, |(stmts, cutoff)| {
        let cutoff = cutoff.0 as u32;
        let (module, entry) = build_program(stmts);
        let spec = RegionSpec {
            func: entry,
            header: module.func(entry).entry(),
            blocks: module.func(entry).block_ids().collect(),
        };
        let az = IdempotenceAnalyzer::new(&module, &StaticAlias);
        let full = az.analyze_region(&spec, &|_| false);
        // Prune a deterministic subset of non-header blocks.
        let pruned = az.analyze_region(&spec, &|b| b.raw() % 7 < cutoff && b.raw() != 0);
        prop_assert!(pruned.cp.len() <= full.cp.len());
        Ok(())
    });
}

/// The bitset worklist engine agrees bit-for-bit with the retained
/// naive round-robin reference solver — verdict, CP, violations, and
/// block sets — with and without pruning.
#[test]
fn worklist_engine_matches_reference() {
    check::<(Vec<Stmt>, Bounded<0, 6>)>(
        "worklist_engine_matches_reference",
        CASES,
        |(stmts, cutoff)| {
            let cutoff = cutoff.0 as u32;
            let (module, entry) = build_program(stmts);
            let spec = RegionSpec {
                func: entry,
                header: module.func(entry).entry(),
                blocks: module.func(entry).block_ids().collect(),
            };
            let az = IdempotenceAnalyzer::new(&module, &StaticAlias);
            prop_assert_eq!(
                az.analyze_region(&spec, &|_| false),
                az.analyze_region_reference(&spec, &|_| false)
            );
            let prune =
                |b: encore::ir::BlockId| b.raw() % 7 < cutoff && b.raw() != 0;
            prop_assert_eq!(
                az.analyze_region(&spec, &prune),
                az.analyze_region_reference(&spec, &prune)
            );
            Ok(())
        },
    );
}

/// The whole pipeline is deterministic.
#[test]
fn pipeline_is_deterministic() {
    check::<Vec<Stmt>>("pipeline_is_deterministic", CASES, |stmts| {
        use encore::core::{Encore, EncoreConfig};
        let (module, entry) = build_program(stmts);
        let train = encore::sim::run_function(
            &module,
            None,
            entry,
            &[encore::sim::Value::Int(4)],
            &encore::sim::RunConfig { collect_profile: true, ..Default::default() },
        );
        let profile: Profile = train.profile.expect("profile");
        let a = Encore::new(EncoreConfig::default()).run(&module, &profile);
        let b = Encore::new(EncoreConfig::default()).run(&module, &profile);
        prop_assert_eq!(a.instrumented.module, b.instrumented.module);
        prop_assert_eq!(a.est_overhead, b.est_overhead);
        Ok(())
    });
}
