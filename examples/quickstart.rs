//! Quickstart: profile a workload, protect it with Encore, and survive a
//! transient fault.
//!
//! Run with `cargo run --example quickstart`.

use encore::core::{Encore, EncoreConfig};
use encore::sim::{run_function, FaultPlan, RunConfig, Value};

fn main() {
    // 1. Pick a workload from the suite (an ADPCM audio encoder).
    let w = encore::workloads::by_name("rawcaudio").expect("workload exists");
    println!("workload: {} — {}", w.name, w.description);

    // 2. Training run: collect an execution profile.
    let train = run_function(
        &w.module,
        None,
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    println!("profiled {} dynamic instructions", train.dyn_insts);

    // 3. Encore pipeline: partition into regions, analyze idempotence,
    //    select under the 20% overhead budget, instrument.
    let outcome = Encore::new(EncoreConfig::default())
        .run(&w.module, train.profile.as_ref().expect("profile collected"));
    for report in &outcome.reports {
        println!(
            "  region {}@{}: {:?}, protected={}, {:.1}% of execution",
            report.func_name,
            report.header,
            report.verdict,
            report.protected,
            report.exec_fraction * 100.0
        );
    }
    println!("estimated overhead: {:.1}%", outcome.est_overhead * 100.0);

    // 4. Baseline (fault-free) evaluation run.
    let golden = run_function(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        w.entry,
        &[Value::Int(w.eval_arg)],
        &RunConfig::default(),
    );

    // 5. Same run, but flip bit 9 of the 500th value produced, detected
    //    6 instructions later — then compare against the golden run.
    let faulty = run_function(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        w.entry,
        &[Value::Int(w.eval_arg)],
        &RunConfig {
            fault: Some(FaultPlan::bit_flip(500, 9, 6)),
            ..Default::default()
        },
    );
    println!(
        "fault injected={}, detected={}, rolled back={} (to {:?})",
        faulty.fault.injected,
        faulty.fault.detected,
        faulty.fault.rolled_back,
        faulty.fault.rollback_region,
    );
    if faulty.observably_equal(&golden) {
        println!("state matches the golden run: the fault was recovered ✔");
    } else {
        println!("state diverged: the fault escaped recovery ✘");
    }
}
