//! The paper's Figure 4 worked example, reconstructed instruction by
//! instruction: eight basic blocks, four syntactic WAR pairs (#, ⋆, @, +)
//! of which exactly one — loads of `B` against store 10 — survives the
//! RS/GA/EA analysis, so CP = {instruction 10}.
//!
//! Run with `cargo run --example paper_example`.

use encore::analysis::StaticAlias;
use encore::core::idempotence::{IdempotenceAnalyzer, RegionSpec};
use encore::ir::{AddrExpr, ModuleBuilder, Operand};

fn main() {
    let mut mb = ModuleBuilder::new("fig4");
    let ga = mb.global("A", 1);
    let gb = mb.global("B", 1);
    let gc = mb.global("C", 1);
    let a = AddrExpr::global(ga, 0);
    let b = AddrExpr::global(gb, 0);
    let c = AddrExpr::global(gc, 0);

    let fid = mb.function("fig4", 1, |f| {
        let p = f.param(0);
        let bb2 = f.add_block();
        let bb3 = f.add_block();
        let bb4 = f.add_block();
        let bb5 = f.add_block();
        let bb6 = f.add_block();
        let bb7 = f.add_block();
        let bb8 = f.add_block();
        // bb1:  1: Store A
        f.store(a, Operand::ImmI(1));
        f.branch(p.into(), bb2, bb3);
        // bb2:  2: Store B ; 3: Store C
        f.switch_to(bb2);
        f.store(b, Operand::ImmI(2));
        f.store(c, Operand::ImmI(3));
        f.jump(bb5);
        // bb3:  4: Load A ; 5: Store C       (# pair with 9)
        f.switch_to(bb3);
        let v4 = f.load(a);
        f.store(c, v4.into());
        f.jump(bb4);
        // bb4:  6: Load B
        f.switch_to(bb4);
        let v6 = f.load(b);
        f.branch(v6.into(), bb5, bb6);
        // bb5:  7: Load B                    (⋆ pair with 10)
        f.switch_to(bb5);
        let v7 = f.load(b);
        f.branch(v7.into(), bb7, bb8);
        // bb6:  8: Load C                    (@ pair with 12)
        f.switch_to(bb6);
        let v8 = f.load(c);
        f.branch(v8.into(), bb7, bb8);
        // bb7:  9: Store A ; 10: Store B ; 11: Load C   (+ pair with 12)
        f.switch_to(bb7);
        f.store(a, Operand::ImmI(9));
        f.store(b, Operand::ImmI(10));
        let _v11 = f.load(c);
        f.ret(None);
        // bb8: 12: Store C
        f.switch_to(bb8);
        f.store(c, Operand::ImmI(12));
        f.ret(None);
    });
    let module = mb.finish();
    println!("the region under analysis:\n{}", module.func(fid));

    let oracle = StaticAlias;
    let analyzer = IdempotenceAnalyzer::new(&module, &oracle);
    let spec = RegionSpec {
        func: fid,
        header: module.func(fid).entry(),
        blocks: module.func(fid).block_ids().collect(),
    };
    let result = analyzer.analyze_region(&spec, &|_| false);

    println!("verdict: {:?}", result.verdict);
    println!("surviving WAR hazards:");
    for v in &result.violations {
        println!("  load {} ({:?}) vs store {} ({})", v.load.at, v.load.addr, v.store.at, v.store.addr);
    }
    println!("checkpoint set CP:");
    for cp in &result.cp {
        println!("  store at {} to {}", cp.at, cp.addr);
    }
    println!(
        "\nAs in the paper: of the four syntactic WAR pairs, only the ⋆ pair\n\
         (loads of B at bb4/bb5 against store 10) requires a checkpoint —\n\
         A is guarded by store 1 on all paths, C by stores 3/5, and store 12\n\
         is unreachable from load 11."
    );
}
