//! Protecting your own code: build a kernel with the IR builder, inspect
//! the idempotence analysis, and see exactly which stores Encore
//! checkpoints and why.
//!
//! Run with `cargo run --example protect_custom_kernel`.

use encore::core::{Encore, EncoreConfig};
use encore::ir::{AddrExpr, BinOp, MemBase, ModuleBuilder, Operand};
use encore::sim::{run_function, RunConfig, Value};

fn main() {
    // A histogram kernel: `hist[data[i]] += 1` — the canonical WAR
    // (read-modify-write through a dynamic index), plus an idempotent
    // normalization pass that streams into a separate buffer.
    let mut mb = ModuleBuilder::new("custom");
    let data = mb.global_init("data", 128, (0..128).map(|i| (i * 7) % 16).collect());
    let hist = mb.global("hist", 16);
    let norm = mb.global("norm", 16);
    let entry = mb.function("histogram", 1, |f| {
        let n = f.param(0);
        f.for_range(Operand::ImmI(0), n.into(), |f, i| {
            let v = f.load(AddrExpr::indexed(MemBase::Global(data), i, 1, 0));
            let count = f.load(AddrExpr::indexed(MemBase::Global(hist), v, 1, 0));
            let next = f.bin(BinOp::Add, count.into(), Operand::ImmI(1));
            f.store(AddrExpr::indexed(MemBase::Global(hist), v, 1, 0), next.into());
        });
        f.for_range(Operand::ImmI(0), Operand::ImmI(16), |f, b| {
            let c = f.load(AddrExpr::indexed(MemBase::Global(hist), b, 1, 0));
            let scaled = f.bin(BinOp::Mul, c.into(), Operand::ImmI(100));
            let pct = f.bin(BinOp::Div, scaled.into(), n.into());
            f.store(AddrExpr::indexed(MemBase::Global(norm), b, 1, 0), pct.into());
        });
        let top = f.load(AddrExpr::global(norm, 0));
        f.ret(Some(top.into()));
    });
    let module = mb.finish();
    encore::ir::verify_module(&module).expect("valid IR");

    // Profile, then run the pipeline with a generous budget so every
    // protectable region is instrumented.
    let train = run_function(
        &module,
        None,
        entry,
        &[Value::Int(64)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    let config = EncoreConfig::default().with_overhead_budget(1.0);
    let outcome = Encore::new(config).run(&module, train.profile.as_ref().unwrap());

    println!("regions and verdicts:");
    for (cand, selected) in &outcome.candidates {
        println!(
            "  header {} ({} blocks): {:?}  selected={}",
            cand.spec.header,
            cand.spec.blocks.len(),
            cand.analysis.verdict,
            selected
        );
        for v in &cand.analysis.violations {
            println!(
                "    WAR hazard: load at {} may be overwritten by store at {} ({})",
                v.load.at, v.store.at, v.store.addr
            );
        }
        for cp in &cand.analysis.cp {
            println!("    checkpoint inserted before store at {} ({})", cp.at, cp.addr);
        }
    }

    // Show the instrumented IR of the function — SetRecovery,
    // CheckpointMem/CheckpointReg and the recovery blocks are visible in
    // the printed text.
    println!("\ninstrumented IR:\n{}", outcome.instrumented.module.func(entry));
}
