//! The reliability/performance dial: sweep Encore's heuristics (`Pmin`,
//! the overhead budget, η) on one workload and print how coverage and
//! overhead trade off — the paper's "dial in the desired degree of fault
//! tolerance" claim, made concrete.
//!
//! Run with `cargo run --release --example tune_heuristics [-- <workload>]`.

use encore::core::{Encore, EncoreConfig};
use encore::sim::{run_function, RunConfig, Value};

fn evaluate(w: &encore::workloads::Workload, config: EncoreConfig) -> (f64, f64, f64) {
    let train = run_function(
        &w.module,
        None,
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    let outcome = Encore::new(config).run(&w.module, train.profile.as_ref().unwrap());

    // Measure the real overhead on the evaluation input.
    let baseline = run_function(&w.module, None, w.entry, &[Value::Int(w.eval_arg)], &RunConfig::default());
    let instrumented = run_function(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        w.entry,
        &[Value::Int(w.eval_arg)],
        &RunConfig::default(),
    );
    let overhead =
        (instrumented.dyn_insts as f64 - baseline.dyn_insts as f64) / baseline.dyn_insts as f64;
    (
        outcome.full_system.total(),
        outcome.breakdown.protected_fraction(),
        overhead,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("164.gzip");
    let w = encore::workloads::by_name(name).expect("known workload");
    println!("tuning {} — {}\n", w.name, w.description);

    println!("{:<28}{:>10}{:>12}{:>10}", "configuration", "coverage", "protected", "overhead");
    let budgets = [0.05, 0.10, 0.20, 0.40, 1.00];
    for b in budgets {
        let (cov, prot, ovh) = evaluate(&w, EncoreConfig::default().with_overhead_budget(b));
        println!(
            "{:<28}{:>9.1}%{:>11.1}%{:>9.1}%",
            format!("budget = {:.0}%", b * 100.0),
            cov * 100.0,
            prot * 100.0,
            ovh * 100.0
        );
    }
    println!();
    for pmin in [None, Some(0.0), Some(0.1), Some(0.25)] {
        let label = match pmin {
            None => "Pmin = ∅ (no pruning)".to_string(),
            Some(p) => format!("Pmin = {p}"),
        };
        let (cov, prot, ovh) = evaluate(&w, EncoreConfig::default().with_pmin(pmin));
        println!(
            "{:<28}{:>9.1}%{:>11.1}%{:>9.1}%",
            label,
            cov * 100.0,
            prot * 100.0,
            ovh * 100.0
        );
    }
    println!();
    for eta in [0.1, 1.0, 10.0, 1e9] {
        let (cov, prot, ovh) = evaluate(&w, EncoreConfig::default().with_eta(eta));
        println!(
            "{:<28}{:>9.1}%{:>11.1}%{:>9.1}%",
            format!("eta = {eta}"),
            cov * 100.0,
            prot * 100.0,
            ovh * 100.0
        );
    }
    println!("\n(coverage = modeled full-system fault coverage at Dmax = 100)");
}
