//! Writes Graphviz renderings of a workload's CFG with its Encore region
//! partition overlaid (green = idempotent+protected, yellow =
//! checkpointed, red = unprotected, gray = unknown) — the reproduction's
//! Figure 2.
//!
//! Run with `cargo run --example visualize_regions [-- <workload> <out.dot>]`
//! then render via `dot -Tsvg regions.dot -o regions.svg`.

use encore::core::{dot_regions, Encore, EncoreConfig};
use encore::sim::{run_function, RunConfig, Value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("175.vpr");
    let out_path = args.get(2).map(String::as_str).unwrap_or("regions.dot");

    let w = encore::workloads::by_name(name).expect("known workload");
    let train = run_function(
        &w.module,
        None,
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    let outcome = Encore::new(EncoreConfig::default())
        .run(&w.module, train.profile.as_ref().unwrap());

    let mut dot = String::new();
    for (fid, func) in w.module.iter_funcs() {
        println!("function `{}`:", func.name);
        for (cand, sel) in outcome.candidates.iter().filter(|(c, _)| c.spec.func == fid) {
            println!(
                "  region @{}: {:?}, protected={}, {} blocks",
                cand.spec.header,
                cand.analysis.verdict,
                sel,
                cand.spec.blocks.len()
            );
        }
        dot.push_str(&dot_regions(&w.module, &outcome, fid));
        dot.push('\n');
    }
    std::fs::write(out_path, &dot).expect("write dot file");
    println!("\nwrote {out_path}; render with: dot -Tsvg {out_path} -o regions.svg");
}
