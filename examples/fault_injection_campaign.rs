//! Statistical fault injection end-to-end: run a Monte-Carlo campaign of
//! real bit flips against an instrumented workload and compare the
//! protected module against the unprotected baseline.
//!
//! Run with `cargo run --release --example fault_injection_campaign`
//! (optionally `-- <workload> <injections> <dmax>`).

use encore::core::{Encore, EncoreConfig};
use encore::sim::{run_function, MaskingModel, RunConfig, SfiCampaign, SfiConfig, Value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("g721encode");
    let injections: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let dmax: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);

    let w = encore::workloads::by_name(name).expect("known workload");
    println!("campaign: {name}, {injections} injections, Dmax = {dmax}");

    // Profile + instrument.
    let train = run_function(
        &w.module,
        None,
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    let outcome = Encore::new(EncoreConfig::default().with_dmax(dmax))
        .run(&w.module, train.profile.as_ref().unwrap());

    let sfi = SfiConfig { injections, dmax, ..Default::default() };

    // Unprotected baseline campaign.
    let base_campaign =
        SfiCampaign::new(&w.module, None, w.entry, &[Value::Int(w.eval_arg)], &sfi);
    let base = base_campaign.run(&sfi);

    // Protected campaign.
    let prot_campaign = SfiCampaign::new(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        w.entry,
        &[Value::Int(w.eval_arg)],
        &sfi,
    );
    let prot = prot_campaign.run(&sfi);

    println!("\n{:<26}{:>12}{:>12}", "outcome", "unprotected", "Encore");
    let rows = [
        ("benign (sw-masked)", base.benign, prot.benign),
        ("recovered by rollback", base.recovered, prot.recovered),
        ("silent corruption", base.silent_corruption, prot.silent_corruption),
        ("detected, unrecoverable", base.detected_unrecoverable, prot.detected_unrecoverable),
        ("crashed", base.crashed, prot.crashed),
        ("hung", base.hung, prot.hung),
    ];
    for (label, b, p) in rows {
        println!("{label:<26}{b:>12}{p:>12}");
    }
    println!(
        "\nsafe fraction: {:.1}% → {:.1}%",
        base.safe_fraction() * 100.0,
        prot.safe_fraction() * 100.0
    );

    // Compose with the ARM926 hardware masking rate (Figure 8's floor).
    let composed = MaskingModel::arm926().compose(&prot);
    println!(
        "full-system coverage with 91% hw masking: {:.1}%",
        composed.total() * 100.0
    );
}
