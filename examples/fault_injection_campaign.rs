//! Statistical fault injection end-to-end: run a Monte-Carlo campaign of
//! real transient faults against an instrumented workload and compare
//! the protected module against the unprotected baseline.
//!
//! Campaigns run sharded across worker threads, yet every result is a
//! pure function of `(seed, injection index)` — the same seed gives
//! bit-identical numbers at any worker count, and any single injection
//! can be replayed alone (demonstrated at the end).
//!
//! Run with `cargo run --release --example fault_injection_campaign`
//! (optionally
//! `-- <workload> <injections> <dmax> <workers> <seed> <fault-model>`,
//! where `<fault-model>` is one of `bit-flip` (default), `multi-bit`,
//! `address`, `control-flow`, `power-failure`).

use encore::core::{Encore, EncoreConfig};
use encore::sim::{
    run_function, FaultModelKind, FaultOutcome, MaskingModel, RunConfig, SfiCampaign, SfiConfig,
    Value,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("g721encode");
    let injections: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let dmax: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);
    let workers: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0);
    let seed: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(0xE7_C04E);
    let model = match args.get(6) {
        Some(s) => FaultModelKind::parse(s).unwrap_or_else(|| {
            eprintln!(
                "unknown fault model `{s}`; available: {}",
                FaultModelKind::ALL
                    .iter()
                    .map(|m| m.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }),
        None => FaultModelKind::default(),
    };

    let w = encore::workloads::by_name(name).expect("known workload");
    let sfi = SfiConfig { injections, dmax, seed, workers, model, ..Default::default() };
    println!(
        "campaign: {name}, {injections} injections, Dmax = {dmax}, seed = {seed:#x}, \
         {} worker(s), fault model = {model}",
        sfi.effective_workers()
    );

    // Profile + instrument.
    let train = run_function(
        &w.module,
        None,
        w.entry,
        &[Value::Int(w.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    let outcome = Encore::new(EncoreConfig::default().with_dmax(dmax))
        .run(&w.module, train.profile.as_ref().unwrap());

    // Unprotected baseline campaign.
    let base_campaign =
        SfiCampaign::prepare(&w.module, None, w.entry, &[Value::Int(w.eval_arg)], &sfi)
            .expect("golden run completes");
    let base = base_campaign.run(&sfi);

    // Protected campaign, with the full per-outcome latency report.
    let prot_campaign = SfiCampaign::prepare(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        w.entry,
        &[Value::Int(w.eval_arg)],
        &sfi,
    )
    .expect("golden run completes");
    let report = prot_campaign.run_report(&sfi);
    let prot = report.stats;

    println!("\n{:<26}{:>12}{:>12}", "outcome", "unprotected", "Encore");
    let rows = [
        ("benign (sw-masked)", base.benign, prot.benign),
        ("recovered by rollback", base.recovered, prot.recovered),
        ("silent corruption", base.silent_corruption, prot.silent_corruption),
        ("detected, unrecoverable", base.detected_unrecoverable, prot.detected_unrecoverable),
        ("crashed", base.crashed, prot.crashed),
        ("hung", base.hung, prot.hung),
    ];
    for (label, b, p) in rows {
        println!("{label:<26}{b:>12}{p:>12}");
    }
    println!(
        "\nsafe fraction: {:.1}% → {:.1}%",
        base.safe_fraction() * 100.0,
        prot.safe_fraction() * 100.0
    );

    // Detection latency vs. recovery: the paper's Eq. 6 intuition made
    // empirical — recoveries concentrate at short latencies.
    println!("\ndetection-latency histogram (recovered / all non-benign):");
    let rec = report.latency_of(FaultOutcome::Recovered);
    for bin in 0..encore::sim::LATENCY_BINS {
        let all: u64 = FaultOutcome::ALL
            .iter()
            .filter(|o| **o != FaultOutcome::Benign)
            .map(|o| report.latency_of(*o).bins[bin])
            .sum();
        if all == 0 {
            continue;
        }
        let (lo, hi) = rec.bin_range(bin);
        println!("  latency {lo:>4}..{hi:<4} {:>5} / {all}", rec.bins[bin]);
    }

    // Where the campaign's speedup came from: runs the divergence
    // splice classified early instead of executing their full suffix,
    // broken down by the rule that certified them (converged = diff
    // emptied; dead_diff = dead residual diff, recovered; sdc = dead
    // residual diff with diverged observables, silent corruption).
    let sp = report.splice;
    println!("\nsplice engagement ({} of {} runs exited early):", sp.total(), prot.injections);
    for rule in encore::sim::SpliceRule::ALL {
        println!("  {:<12} {:>5}", rule.label(), sp.count(rule));
    }
    println!("  golden-suffix insts skipped: {}", sp.dyn_insts_saved);

    // Compose with the ARM926 hardware masking rate (Figure 8's floor).
    let composed = MaskingModel::arm926().compose(&prot);
    println!(
        "full-system coverage with 91% hw masking: {:.1}%",
        composed.total() * 100.0
    );

    // Reproduce one campaign member in isolation: injection i's fault
    // plan depends only on (seed, i), so a single interesting outcome
    // can be re-run (e.g. under a debugger) without the other N-1.
    let idx = (injections as u64) / 2;
    let plan = prot_campaign.plan_for_index(&sfi, idx);
    let replayed = prot_campaign.run_one(plan);
    println!(
        "\nreplay of injection {idx} from (seed {seed:#x}, index {idx}): \
         inject_at={}, action={:?}, latency={} → {}",
        plan.inject_at,
        plan.action,
        plan.detect_latency,
        replayed.label()
    );
}
