//! # encore
//!
//! A from-scratch reproduction of **"Encore: Low-Cost, Fine-Grained
//! Transient Fault Recovery"** (Feng, Gupta, Ansari, Mahlke, August —
//! MICRO 2011).
//!
//! Encore is a software-only rollback-recovery scheme: a compiler
//! partitions a program into single-entry multiple-exit regions, proves
//! (or profiles-and-gambles) that each region is *idempotent* — safely
//! re-executable — and instruments the few offending stores with
//! lightweight checkpoints. When a transient fault is detected, execution
//! simply rolls back to the current region header.
//!
//! This crate is a facade re-exporting the whole stack:
//!
//! * [`ir`] — the executable compiler IR the passes run on;
//! * [`analysis`] — dominators, loops, intervals, liveness, alias
//!   oracles, profiles;
//! * [`core`] — the paper's contribution: idempotence analysis
//!   (Eqs. 1–4), region formation/merging (γ, η, Eq. 5), selective
//!   checkpointing, and the coverage model (α, Eqs. 6–7);
//! * [`opt`] — scalar optimization passes (constant folding, copy
//!   propagation, DCE, CFG simplification), the "-O3 input" role;
//! * [`sim`] — interpreter with the recovery runtime, profiler, tracer
//!   and Monte-Carlo fault injection;
//! * [`workloads`] — 23 SPEC2000/Mediabench stand-in kernels.
//!
//! # Examples
//!
//! Protect a kernel and watch it survive a fault:
//!
//! ```
//! use encore::core::{Encore, EncoreConfig};
//! use encore::sim::{run_function, FaultPlan, RunConfig, Value};
//!
//! // 1. A workload (any encore::ir module works; here a suite kernel).
//! let w = encore::workloads::by_name("rawcaudio").unwrap();
//!
//! // 2. Profile it on a training input.
//! let train = run_function(
//!     &w.module, None, w.entry, &[Value::Int(w.train_arg)],
//!     &RunConfig { collect_profile: true, ..Default::default() },
//! );
//!
//! // 3. Run the Encore pipeline and get an instrumented module.
//! let outcome = Encore::new(EncoreConfig::default())
//!     .run(&w.module, &train.profile.unwrap());
//!
//! // 4. Execute with a transient fault injected; the recovery runtime
//! //    rolls back to the region header and re-executes.
//! let faulty = run_function(
//!     &outcome.instrumented.module,
//!     Some(&outcome.instrumented.map),
//!     w.entry,
//!     &[Value::Int(w.eval_arg)],
//!     &RunConfig {
//!         fault: Some(FaultPlan::bit_flip(120, 7, 5)),
//!         ..Default::default()
//!     },
//! );
//! assert!(faulty.completed);
//! ```

#![warn(missing_docs)]

pub use encore_analysis as analysis;
pub use encore_core as core;
pub use encore_ir as ir;
pub use encore_opt as opt;
pub use encore_sim as sim;
pub use encore_workloads as workloads;
