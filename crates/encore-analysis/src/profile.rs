//! Execution profiles.
//!
//! Encore is profile-guided: basic blocks whose execution probability
//! falls at or below `Pmin` are pruned from the idempotence analysis
//! (§3.4.1), and hot-path lengths drive the coverage/cost heuristics
//! (§3.4.2). The simulator fills a [`Profile`] during a training run; the
//! analyses consume it read-only.

use encore_ir::{BlockId, FuncId, Module};
use std::collections::BTreeMap;

/// Per-function execution counts.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FuncProfile {
    /// Number of times each block executed.
    pub block_counts: BTreeMap<BlockId, u64>,
    /// Number of times each CFG edge was taken.
    pub edge_counts: BTreeMap<(BlockId, BlockId), u64>,
    /// Number of invocations of the function.
    pub invocations: u64,
    /// Dynamic instructions retired inside the function body
    /// (callees excluded).
    pub dyn_insts: u64,
}

impl FuncProfile {
    /// Execution count of `b`.
    pub fn count(&self, b: BlockId) -> u64 {
        self.block_counts.get(&b).copied().unwrap_or(0)
    }

    /// Count of edge `from → to`.
    pub fn edge(&self, from: BlockId, to: BlockId) -> u64 {
        self.edge_counts.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Execution probability of `b` relative to `base` (typically a region
    /// header): `count(b) / count(base)`, clamped to `[0, 1]`; `0.0` when
    /// the base never ran.
    pub fn prob_relative(&self, b: BlockId, base: BlockId) -> f64 {
        let denom = self.count(base);
        if denom == 0 {
            return 0.0;
        }
        (self.count(b) as f64 / denom as f64).min(1.0)
    }
}

/// A whole-module profile.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Profile {
    /// One entry per function, indexed by [`FuncId`].
    pub funcs: Vec<FuncProfile>,
    /// Total dynamic instructions retired by the profiled run.
    pub total_dyn_insts: u64,
    /// Per-site memory footprints (for [`crate::ProfiledAlias`]).
    pub mem: crate::MemProfile,
}

impl Profile {
    /// Creates an all-zero profile shaped for `module`.
    pub fn empty_for(module: &Module) -> Self {
        Self {
            funcs: vec![FuncProfile::default(); module.funcs.len()],
            total_dyn_insts: 0,
            mem: crate::MemProfile::new(),
        }
    }

    /// Profile of function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range for the profiled module.
    pub fn func(&self, f: FuncId) -> &FuncProfile {
        &self.funcs[f.index()]
    }

    /// Mutable profile of function `f` (used by the simulator).
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range for the profiled module.
    pub fn func_mut(&mut self, f: FuncId) -> &mut FuncProfile {
        &mut self.funcs[f.index()]
    }

    /// Merges another profile into this one (e.g. multiple training runs).
    pub fn merge(&mut self, other: &Profile) {
        if self.funcs.len() < other.funcs.len() {
            self.funcs.resize(other.funcs.len(), FuncProfile::default());
        }
        for (dst, src) in self.funcs.iter_mut().zip(&other.funcs) {
            for (b, c) in &src.block_counts {
                *dst.block_counts.entry(*b).or_insert(0) += c;
            }
            for (e, c) in &src.edge_counts {
                *dst.edge_counts.entry(*e).or_insert(0) += c;
            }
            dst.invocations += src.invocations;
            dst.dyn_insts += src.dyn_insts;
        }
        self.total_dyn_insts += other.total_dyn_insts;
        self.mem.merge(&other.mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuncProfile {
        let mut p = FuncProfile::default();
        p.block_counts.insert(BlockId::new(0), 100);
        p.block_counts.insert(BlockId::new(1), 10);
        p.edge_counts.insert((BlockId::new(0), BlockId::new(1)), 10);
        p.invocations = 100;
        p
    }

    #[test]
    fn relative_probability() {
        let p = sample();
        assert!((p.prob_relative(BlockId::new(1), BlockId::new(0)) - 0.1).abs() < 1e-12);
        assert_eq!(p.prob_relative(BlockId::new(2), BlockId::new(0)), 0.0);
        // Never-executed base yields probability 0.
        assert_eq!(p.prob_relative(BlockId::new(0), BlockId::new(5)), 0.0);
    }

    #[test]
    fn probability_clamped_to_one() {
        let mut p = sample();
        p.block_counts.insert(BlockId::new(2), 500); // inner loop body
        assert_eq!(p.prob_relative(BlockId::new(2), BlockId::new(0)), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Profile {
            funcs: vec![sample()],
            total_dyn_insts: 50,
            mem: crate::MemProfile::new(),
        };
        let b = Profile {
            funcs: vec![sample()],
            total_dyn_insts: 70,
            mem: crate::MemProfile::new(),
        };
        a.merge(&b);
        assert_eq!(a.funcs[0].count(BlockId::new(0)), 200);
        assert_eq!(a.funcs[0].edge(BlockId::new(0), BlockId::new(1)), 20);
        assert_eq!(a.total_dyn_insts, 120);
        assert_eq!(a.funcs[0].invocations, 200);
    }
}
