//! A generic worklist fixpoint solver.
//!
//! The paper phrases Eqs. 1–3 as "multiple post-order traversals"; the
//! classic way to run such equations to a fixpoint without quadratic
//! re-sweeps is a worklist: seed every node once in an order that
//! respects the direction of flow (postorder for backward problems,
//! reverse postorder for forward ones), then re-process a node only
//! when one of the nodes it reads from actually changed.
//!
//! The solver is direction-agnostic: callers express the direction
//! entirely through the seed order and the `dependents` relation
//! (which nodes must be re-run when a node's output changes — the
//! predecessors for a backward analysis, the successors for a forward
//! one). Because every transfer function used here is monotone over a
//! finite lattice, the fixpoint is unique and therefore independent of
//! processing order — worklist results are bit-identical to the naive
//! round-robin iteration they replace.

use std::collections::VecDeque;

/// Runs `transfer` to a fixpoint over the nodes of `seed_order`.
///
/// * `seed_order` — every node to solve, each exactly once, in the
///   preferred first-pass order (postorder of the flow graph for
///   backward problems, reverse postorder for forward problems).
/// * `num_nodes` — the node universe size (`0..num_nodes`).
/// * `dependents(i)` — the nodes whose transfer reads node `i`'s
///   output; they are re-enqueued whenever `transfer(i)` reports a
///   change. Taking a slice-returning closure lets callers back the
///   relation with per-node `Vec`s or a flat CSR adjacency alike.
///   Nodes never named in `seed_order` or any dependents slice are
///   simply never processed.
/// * `transfer(i)` — recomputes node `i` from the current state of its
///   inputs and returns `true` iff node `i`'s output changed.
pub fn solve_worklist<'g>(
    seed_order: &[usize],
    num_nodes: usize,
    dependents: impl Fn(usize) -> &'g [usize],
    mut transfer: impl FnMut(usize) -> bool,
) {
    let mut queue: VecDeque<usize> = seed_order.iter().copied().collect();
    let mut queued = vec![false; num_nodes];
    for &i in seed_order {
        queued[i] = true;
    }
    while let Some(i) = queue.pop_front() {
        queued[i] = false;
        if transfer(i) {
            for &d in dependents(i) {
                if !queued[d] {
                    queued[d] = true;
                    queue.push_back(d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitSet;

    /// Reachability on a 4-cycle, solved as a forward union dataflow:
    /// every node must end up reaching every node.
    #[test]
    fn converges_on_a_cycle() {
        let succs: Vec<Vec<usize>> = vec![vec![1], vec![2], vec![3], vec![0]];
        let preds: Vec<Vec<usize>> = vec![vec![3], vec![0], vec![1], vec![2]];
        let mut reach: Vec<BitSet> = (0..4)
            .map(|i| {
                let mut s = BitSet::new(4);
                s.insert(i);
                s
            })
            .collect();
        let mut transfers = 0usize;
        solve_worklist(&[0, 1, 2, 3], 4, |i| succs[i].as_slice(), |i| {
            transfers += 1;
            let mut acc = std::mem::take(&mut reach[i]);
            let mut changed = false;
            for &p in &preds[i] {
                if p != i {
                    changed |= acc.union_with(&reach[p]);
                }
            }
            reach[i] = acc;
            changed
        });
        for s in &reach {
            assert_eq!(s.count(), 4);
        }
        // The worklist terminates (bounded by lattice height), it does
        // not spin: 4 nodes × 4 bits bounds useful work.
        assert!(transfers <= 4 * 4 + 4, "{transfers} transfers");
    }

    #[test]
    fn unchanged_nodes_are_not_reprocessed() {
        // A chain 0 -> 1 -> 2 where nothing ever changes: each node
        // runs exactly once.
        let deps: Vec<Vec<usize>> = vec![vec![1], vec![2], vec![]];
        let mut runs = [0usize; 3];
        solve_worklist(&[0, 1, 2], 3, |i| deps[i].as_slice(), |i| {
            runs[i] += 1;
            false
        });
        assert_eq!(runs, [1, 1, 1]);
    }
}
