//! CFG traversal orders.
//!
//! Encore's dataflow (Eqs. 1–3 of the paper) is phrased as post-order
//! traversals of a region's CFG and of the edge-reversed CFG. This module
//! provides those orders both for whole functions and for arbitrary block
//! subsets (regions).

use encore_ir::{BlockId, Function};
use std::collections::BTreeSet;

/// Post-order of the blocks reachable from `entry`, restricted to `allowed`
/// (pass `None` for the whole function).
///
/// Children are visited in successor order; a node is emitted after all its
/// (allowed, reachable) children.
pub fn postorder_from(
    func: &Function,
    entry: BlockId,
    allowed: Option<&BTreeSet<BlockId>>,
) -> Vec<BlockId> {
    let in_set = |b: BlockId| allowed.map(|s| s.contains(&b)).unwrap_or(true);
    let mut visited = vec![false; func.blocks.len()];
    let mut out = Vec::new();
    if !in_set(entry) {
        return out;
    }
    // Iterative DFS with an explicit child cursor to avoid recursion on
    // deep CFGs.
    let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
    visited[entry.index()] = true;
    let succs = |b: BlockId| -> Vec<BlockId> {
        func.block(b)
            .successors()
            .into_iter()
            .filter(|s| in_set(*s))
            .collect()
    };
    stack.push((entry, succs(entry), 0));
    while let Some((node, children, cursor)) = stack.last_mut() {
        if *cursor < children.len() {
            let child = children[*cursor];
            *cursor += 1;
            if !visited[child.index()] {
                visited[child.index()] = true;
                stack.push((child, succs(child), 0));
            }
        } else {
            out.push(*node);
            stack.pop();
        }
    }
    out
}

/// Post-order of the whole function from its entry block.
pub fn postorder(func: &Function) -> Vec<BlockId> {
    postorder_from(func, func.entry(), None)
}

/// Reverse post-order (a topological order for acyclic CFGs) of the whole
/// function.
pub fn reverse_postorder(func: &Function) -> Vec<BlockId> {
    let mut po = postorder(func);
    po.reverse();
    po
}

/// Post-order traversal of the *edge-reversed* subgraph induced by
/// `allowed`, started from each of `roots` in turn (the region's exiting
/// blocks in Encore's reverse pass). Returns the concatenated order; each
/// block appears once.
pub fn reverse_graph_postorder(
    func: &Function,
    roots: &[BlockId],
    allowed: &BTreeSet<BlockId>,
) -> Vec<BlockId> {
    // Predecessor map restricted to the allowed set.
    let mut preds: std::collections::BTreeMap<BlockId, Vec<BlockId>> =
        allowed.iter().map(|b| (*b, Vec::new())).collect();
    for &b in allowed {
        for s in func.block(b).successors() {
            if allowed.contains(&s) {
                preds.get_mut(&s).expect("allowed").push(b);
            }
        }
    }
    let mut visited = vec![false; func.blocks.len()];
    let mut out = Vec::new();
    for &root in roots {
        if !allowed.contains(&root) || visited[root.index()] {
            continue;
        }
        let mut stack: Vec<(BlockId, usize)> = vec![(root, 0)];
        visited[root.index()] = true;
        while let Some((node, cursor)) = stack.last_mut() {
            let ps = &preds[node];
            if *cursor < ps.len() {
                let p = ps[*cursor];
                *cursor += 1;
                if !visited[p.index()] {
                    visited[p.index()] = true;
                    stack.push((p, 0));
                }
            } else {
                out.push(*node);
                stack.pop();
            }
        }
    }
    out
}

/// Blocks reachable from `entry` within `allowed` (or the whole function).
pub fn reachable_from(
    func: &Function,
    entry: BlockId,
    allowed: Option<&BTreeSet<BlockId>>,
) -> BTreeSet<BlockId> {
    postorder_from(func, entry, allowed).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{ModuleBuilder, Operand};

    /// entry → (b1 | b2) → join → ret, a diamond.
    fn diamond() -> encore_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_else(p.into(), |_| {}, |_| {});
            f.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn postorder_ends_with_entry() {
        let m = diamond();
        let po = postorder(&m.funcs[0]);
        assert_eq!(po.len(), 4);
        assert_eq!(*po.last().unwrap(), m.funcs[0].entry());
    }

    #[test]
    fn rpo_starts_with_entry() {
        let m = diamond();
        let rpo = reverse_postorder(&m.funcs[0]);
        assert_eq!(rpo[0], m.funcs[0].entry());
    }

    #[test]
    fn restriction_excludes_blocks() {
        let m = diamond();
        let f = &m.funcs[0];
        let allowed: BTreeSet<_> = [BlockId::new(0), BlockId::new(1), BlockId::new(3)]
            .into_iter()
            .collect();
        let po = postorder_from(f, f.entry(), Some(&allowed));
        assert!(!po.contains(&BlockId::new(2)));
        assert_eq!(po.len(), 3);
    }

    #[test]
    fn reverse_graph_postorder_reaches_entry() {
        let m = diamond();
        let f = &m.funcs[0];
        let allowed: BTreeSet<_> = f.block_ids().collect();
        let exits = vec![BlockId::new(3)];
        let order = reverse_graph_postorder(f, &exits, &allowed);
        assert_eq!(order.len(), 4);
        // In reversed-graph post-order the entry comes before the root.
        let entry_pos = order.iter().position(|b| *b == f.entry()).unwrap();
        let root_pos = order.iter().position(|b| *b == BlockId::new(3)).unwrap();
        assert!(entry_pos < root_pos);
    }

    #[test]
    fn unreachable_blocks_not_visited() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            f.ret(None);
            let dead = f.add_block();
            f.switch_to(dead);
            f.ret(Some(Operand::ImmI(1)));
        });
        let m = mb.finish();
        let po = postorder(&m.funcs[0]);
        assert_eq!(po.len(), 1);
    }
}
