//! Natural-loop detection and the loop nesting forest.
//!
//! Encore treats loops hierarchically (§3.1.2 of the paper): inner-most
//! loops are summarized first, then enclosing loops treat them as single
//! pseudo-blocks. The paper assumes loops are in *canonical form* (single
//! header, no side entries); natural loops of a reducible CFG satisfy this
//! by construction, and irreducible cycles are detected and reported so
//! the enclosing region can be marked unsupported (footnote 3 of the
//! paper).

use crate::dom::DomTree;
use encore_ir::{BlockId, Function};
use std::collections::BTreeSet;

/// A natural loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Loop {
    /// The loop header (single entry of a canonical loop).
    pub header: BlockId,
    /// All blocks of the loop, header included (bodies of nested loops
    /// included).
    pub blocks: BTreeSet<BlockId>,
    /// Latch blocks (sources of back edges to the header).
    pub latches: Vec<BlockId>,
    /// Indices (into [`LoopForest::loops`]) of loops directly nested
    /// inside this one.
    pub children: Vec<usize>,
    /// Index of the directly enclosing loop, if any.
    pub parent: Option<usize>,
}

impl Loop {
    /// Blocks with an edge leaving the loop (the loop's exiting blocks,
    /// `X_li` in the paper).
    pub fn exiting_blocks(&self, func: &Function) -> Vec<BlockId> {
        self.blocks
            .iter()
            .copied()
            .filter(|b| {
                func.block(*b)
                    .successors()
                    .iter()
                    .any(|s| !self.blocks.contains(s))
            })
            .collect()
    }
}

/// The loop nesting forest of a function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopForest {
    /// All natural loops, inner-most first (safe processing order for
    /// hierarchical summarization).
    pub loops: Vec<Loop>,
    /// `block → innermost loop index`, if the block is in any loop.
    innermost: Vec<Option<usize>>,
    /// `true` if a retreating edge that is not a back edge was found —
    /// i.e. the CFG is irreducible and some cycles are not natural loops.
    pub irreducible: bool,
}

impl LoopForest {
    /// Computes the loop forest of `func` given its dominator tree.
    pub fn compute(func: &Function, dom: &DomTree) -> Self {
        let n = func.blocks.len();
        let mut headers: Vec<BlockId> = Vec::new();
        let mut loop_map: std::collections::BTreeMap<BlockId, Loop> = Default::default();
        let mut irreducible = false;

        // Find back edges: tail → head where head dominates tail.
        // A retreating edge to a non-dominator marks irreducibility; we
        // detect those as cycle edges found by DFS that are not back edges.
        let preds = func.predecessors();
        for (tail, block) in func.iter_blocks() {
            if !dom.is_reachable(tail) {
                continue;
            }
            for head in block.successors() {
                if dom.dominates(head, tail) {
                    // Natural back edge: collect the loop body.
                    let entry = loop_map.entry(head).or_insert_with(|| {
                        headers.push(head);
                        Loop {
                            header: head,
                            blocks: [head].into_iter().collect(),
                            latches: Vec::new(),
                            children: Vec::new(),
                            parent: None,
                        }
                    });
                    entry.latches.push(tail);
                    // Backward walk from the latch until the header.
                    let mut work = vec![tail];
                    while let Some(b) = work.pop() {
                        let lp = loop_map.get_mut(&head).expect("just inserted");
                        if lp.blocks.insert(b) {
                            for &p in preds.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
                                if dom.is_reachable(p) {
                                    work.push(p);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Irreducibility check: any cycle edge (successor already on the
        // current DFS stack) that is not a back edge to a dominator.
        {
            let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
            let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
            let entry = func.entry();
            state[entry.index()] = 1;
            stack.push((entry, func.block(entry).successors(), 0));
            while let Some((node, succs, cursor)) = stack.last_mut() {
                if *cursor < succs.len() {
                    let s = succs[*cursor];
                    *cursor += 1;
                    match state[s.index()] {
                        0 => {
                            state[s.index()] = 1;
                            stack.push((s, func.block(s).successors(), 0));
                        }
                        1 if !dom.dominates(s, *node) => irreducible = true,
                        1 => {}
                        _ => {}
                    }
                } else {
                    state[node.index()] = 2;
                    stack.pop();
                }
            }
        }

        // Order inner-most first: sort by block-count ascending (a nested
        // loop is a strict subset of its parent, hence strictly smaller).
        let mut loops: Vec<Loop> = headers
            .into_iter()
            .map(|h| loop_map.remove(&h).expect("header present"))
            .collect();
        loops.sort_by_key(|l| l.blocks.len());

        // Wire parent/children: the parent of `l` is the smallest loop
        // strictly containing it.
        let count = loops.len();
        for i in 0..count {
            for j in (i + 1)..count {
                let contains =
                    loops[i].blocks.is_subset(&loops[j].blocks) && loops[i].header != loops[j].header;
                if contains {
                    loops[i].parent = Some(j);
                    loops[j].children.push(i);
                    break;
                }
            }
        }

        // Innermost-loop map (loops are already sorted smallest-first).
        let mut innermost = vec![None; n];
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                if innermost[b.index()].is_none() {
                    innermost[b.index()] = Some(i);
                }
            }
        }

        Self { loops, innermost, irreducible }
    }

    /// Index of the innermost loop containing `b`, if any.
    pub fn innermost_loop_of(&self, b: BlockId) -> Option<usize> {
        self.innermost.get(b.index()).copied().flatten()
    }

    /// Returns `true` if `b` is the header of some natural loop.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.header == b)
    }

    /// Index of the loop headed by `b`, if any.
    pub fn loop_with_header(&self, b: BlockId) -> Option<usize> {
        self.loops.iter().position(|l| l.header == b)
    }

    /// The top-most (outermost) loops, i.e. those without parents.
    pub fn top_level(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.loops.len()).filter(|&i| self.loops[i].parent.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{BinOp, ModuleBuilder, Operand};

    fn forest_of(m: &encore_ir::Module) -> LoopForest {
        let f = &m.funcs[0];
        let dom = DomTree::compute(f);
        LoopForest::compute(f, &dom)
    }

    #[test]
    fn single_while_loop_found() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let i = f.mov(Operand::ImmI(0));
            f.while_loop(
                |f| Operand::Reg(f.bin(BinOp::Lt, i.into(), n.into())),
                |f| f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1)),
            );
            f.ret(None);
        });
        let m = mb.finish();
        let forest = forest_of(&m);
        assert_eq!(forest.loops.len(), 1);
        assert!(!forest.irreducible);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId::new(1));
        assert_eq!(l.blocks.len(), 2); // header + body
        assert_eq!(l.latches, vec![BlockId::new(2)]);
        assert_eq!(l.exiting_blocks(&m.funcs[0]), vec![BlockId::new(1)]);
    }

    #[test]
    fn nested_loops_inner_first() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, _i| {
                f.for_range(Operand::ImmI(0), n.into(), |f, _j| {
                    f.bin_to(n, BinOp::Add, n.into(), Operand::ImmI(0));
                });
            });
            f.ret(None);
        });
        let m = mb.finish();
        let forest = forest_of(&m);
        assert_eq!(forest.loops.len(), 2);
        // Inner loop (fewer blocks) comes first.
        assert!(forest.loops[0].blocks.len() < forest.loops[1].blocks.len());
        assert_eq!(forest.loops[0].parent, Some(1));
        assert_eq!(forest.loops[1].children, vec![0]);
        assert!(forest.loops[0].blocks.is_subset(&forest.loops[1].blocks));
        // Inner header's innermost loop is the inner loop.
        assert_eq!(
            forest.innermost_loop_of(forest.loops[0].header),
            Some(0)
        );
    }

    #[test]
    fn irreducible_cfg_detected() {
        // Two blocks jumping into each other with two entries:
        //   entry -> a, entry -> b, a -> b, b -> a.
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let a = f.add_block();
            let b = f.add_block();
            f.branch(p.into(), a, b);
            f.switch_to(a);
            f.jump(b);
            f.switch_to(b);
            // b -> a closes a cycle with two entries (irreducible).
            f.jump(a);
        });
        let m = mb.finish();
        let forest = forest_of(&m);
        assert!(forest.irreducible);
        assert!(forest.loops.is_empty());
    }

    #[test]
    fn self_loop_is_natural() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let body = f.add_block();
            let exit = f.add_block();
            f.jump(body);
            f.switch_to(body);
            f.branch(p.into(), body, exit);
            f.switch_to(exit);
            f.ret(None);
        });
        let m = mb.finish();
        let forest = forest_of(&m);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].blocks.len(), 1);
        assert_eq!(forest.loops[0].latches, vec![BlockId::new(1)]);
        assert!(!forest.irreducible);
    }

    #[test]
    fn acyclic_function_has_no_loops() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_else(p.into(), |_| {}, |_| {});
            f.ret(None);
        });
        let forest = forest_of(&mb.finish());
        assert!(forest.loops.is_empty());
        assert!(!forest.irreducible);
        assert_eq!(forest.innermost_loop_of(BlockId::new(0)), None);
    }
}
