//! Register liveness analysis.
//!
//! Encore checkpoints, at region entry, every live-in register that the
//! region overwrites (§3.2 of the paper): otherwise re-execution would
//! consume a clobbered value. This is the standard backward may-analysis
//! at basic-block granularity.

use crate::bitset::BitSet;
use crate::dataflow::solve_worklist;
use encore_ir::{BlockId, Function, Reg};
use std::collections::BTreeSet;

/// Per-block liveness results for one function, stored as packed
/// register bitsets; the `BTreeSet` accessors materialize on demand.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Liveness {
    in_bits: Vec<BitSet>,
    out_bits: Vec<BitSet>,
    use_bits: Vec<BitSet>,
    def_bits: Vec<BitSet>,
}

fn to_regs(bs: &BitSet) -> BTreeSet<Reg> {
    bs.iter().map(|i| Reg::new(i as u32)).collect()
}

impl Liveness {
    /// Computes liveness for `func` on the bitset worklist engine: the
    /// fixpoint runs over packed register sets seeded in postorder (a
    /// backward problem propagates fastest against the flow).
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        let nregs = func.reg_count as usize;
        let mut use_bits = vec![BitSet::new(nregs); n];
        let mut def_bits = vec![BitSet::new(nregs); n];

        for (bid, block) in func.iter_blocks() {
            let i = bid.index();
            for inst in &block.insts {
                for u in inst.uses() {
                    if !def_bits[i].contains(u.index()) {
                        use_bits[i].insert(u.index());
                    }
                }
                if let Some(d) = inst.def() {
                    def_bits[i].insert(d.index());
                }
            }
            if let Some(t) = &block.term {
                for u in t.uses() {
                    if !def_bits[i].contains(u.index()) {
                        use_bits[i].insert(u.index());
                    }
                }
            }
        }

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (bid, block) in func.iter_blocks() {
            for s in block.successors() {
                succs[bid.index()].push(s.index());
                preds[s.index()].push(bid.index());
            }
        }

        let mut in_bits = vec![BitSet::new(nregs); n];
        let mut out_bits = vec![BitSet::new(nregs); n];
        let seed: Vec<usize> =
            crate::order::postorder(func).into_iter().map(|b| b.index()).collect();
        // A block's live-in feeds its predecessors' live-out.
        solve_worklist(&seed, n, |i| preds[i].as_slice(), |i| {
            let mut out = BitSet::new(nregs);
            for &s in &succs[i] {
                out.union_with(&in_bits[s]);
            }
            let mut inn = out.clone();
            inn.subtract(&def_bits[i]);
            inn.union_with(&use_bits[i]);
            let changed = inn != in_bits[i];
            out_bits[i] = out;
            in_bits[i] = inn;
            changed
        });

        Self { in_bits, out_bits, use_bits, def_bits }
    }

    /// Registers live at entry to `b`.
    pub fn live_in(&self, b: BlockId) -> BTreeSet<Reg> {
        to_regs(&self.in_bits[b.index()])
    }

    /// Registers live at exit from `b`.
    pub fn live_out(&self, b: BlockId) -> BTreeSet<Reg> {
        to_regs(&self.out_bits[b.index()])
    }

    /// Registers defined (written) inside `b`.
    pub fn defs(&self, b: BlockId) -> BTreeSet<Reg> {
        to_regs(&self.def_bits[b.index()])
    }

    /// Registers upward-exposed (used before any local def) in `b`.
    pub fn upward_exposed(&self, b: BlockId) -> BTreeSet<Reg> {
        to_regs(&self.use_bits[b.index()])
    }

    /// Registers that are live at entry to `header` *and* written anywhere
    /// in `region_blocks` — exactly the set Encore must checkpoint at
    /// region entry. Runs entirely on the packed sets: per block, a
    /// word-level walk of `defs ∩ live-in(header)`.
    pub fn clobbered_live_ins(
        &self,
        header: BlockId,
        region_blocks: impl IntoIterator<Item = BlockId>,
    ) -> BTreeSet<Reg> {
        let live = &self.in_bits[header.index()];
        let mut clobbered = BTreeSet::new();
        for b in region_blocks {
            for d in self.def_bits[b.index()].iter_and(live) {
                clobbered.insert(Reg::new(d as u32));
            }
        }
        clobbered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{AddrExpr, BinOp, ModuleBuilder, Operand};

    #[test]
    fn param_live_into_use() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_else(p.into(), |_| {}, |_| {});
            f.ret(Some(p.into()));
        });
        let m = mb.finish();
        let f = &m.funcs[0];
        let lv = Liveness::compute(f);
        let p = Reg::new(0);
        // p is live into every block on the way to the final ret.
        assert!(lv.live_in(BlockId::new(0)).contains(&p));
        assert!(lv.live_in(BlockId::new(3)).contains(&p));
        assert!(lv.live_out(BlockId::new(0)).contains(&p));
    }

    #[test]
    fn dead_value_not_live() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let dead = f.mov(Operand::ImmI(1));
            let _ = dead;
            f.ret(None);
        });
        let m = mb.finish();
        let lv = Liveness::compute(&m.funcs[0]);
        assert!(lv.live_in(BlockId::new(0)).is_empty());
        assert!(lv.defs(BlockId::new(0)).contains(&Reg::new(0)));
    }

    #[test]
    fn loop_carried_value_is_live_at_header() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let i = f.mov(Operand::ImmI(0));
            f.while_loop(
                |f| Operand::Reg(f.bin(BinOp::Lt, i.into(), n.into())),
                |f| f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1)),
            );
            f.ret(Some(i.into()));
        });
        let m = mb.finish();
        let lv = Liveness::compute(&m.funcs[0]);
        let i_reg = Reg::new(1);
        let header = BlockId::new(1);
        let body = BlockId::new(2);
        assert!(lv.live_in(header).contains(&i_reg));
        assert!(lv.live_in(body).contains(&i_reg));
        // The body both uses and redefines i.
        assert!(lv.defs(body).contains(&i_reg));
    }

    #[test]
    fn clobbered_live_ins_detects_overwritten_inputs() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        mb.function("f", 2, |f| {
            let a = f.param(0); // overwritten below -> needs checkpoint
            let b = f.param(1); // only read -> no checkpoint
            let body_start = f.add_block();
            f.jump(body_start);
            f.switch_to(body_start);
            f.bin_to(a, BinOp::Add, a.into(), b.into());
            f.store(AddrExpr::global(g, 0), a.into());
            f.ret(Some(a.into()));
        });
        let m = mb.finish();
        let lv = Liveness::compute(&m.funcs[0]);
        let region = [BlockId::new(1)];
        let clobbered = lv.clobbered_live_ins(BlockId::new(1), region);
        assert!(clobbered.contains(&Reg::new(0)));
        assert!(!clobbered.contains(&Reg::new(1)));
    }

    #[test]
    fn use_before_def_is_upward_exposed() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            // use p, then redefine it
            let q = f.bin(BinOp::Add, p.into(), Operand::ImmI(1));
            f.mov_to(p, q.into());
            f.ret(Some(p.into()));
        });
        let m = mb.finish();
        let lv = Liveness::compute(&m.funcs[0]);
        assert!(lv.upward_exposed(BlockId::new(0)).contains(&Reg::new(0)));
    }
}
