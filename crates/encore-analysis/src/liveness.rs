//! Register liveness analysis.
//!
//! Encore checkpoints, at region entry, every live-in register that the
//! region overwrites (§3.2 of the paper): otherwise re-execution would
//! consume a clobbered value. This is the standard backward may-analysis
//! at basic-block granularity.

use encore_ir::{BlockId, Function, Reg};
use std::collections::BTreeSet;

/// Per-block liveness results for one function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Liveness {
    live_in: Vec<BTreeSet<Reg>>,
    live_out: Vec<BTreeSet<Reg>>,
    use_set: Vec<BTreeSet<Reg>>,
    def_set: Vec<BTreeSet<Reg>>,
}

impl Liveness {
    /// Computes liveness for `func` by iterating to a fixpoint.
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut use_set = vec![BTreeSet::new(); n];
        let mut def_set = vec![BTreeSet::new(); n];

        for (bid, block) in func.iter_blocks() {
            let i = bid.index();
            for inst in &block.insts {
                for u in inst.uses() {
                    if !def_set[i].contains(&u) {
                        use_set[i].insert(u);
                    }
                }
                if let Some(d) = inst.def() {
                    def_set[i].insert(d);
                }
            }
            if let Some(t) = &block.term {
                for u in t.uses() {
                    if !def_set[i].contains(&u) {
                        use_set[i].insert(u);
                    }
                }
            }
        }

        let mut live_in = vec![BTreeSet::new(); n];
        let mut live_out = vec![BTreeSet::new(); n];
        let order = crate::order::postorder(func); // propagate backwards fast
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let i = b.index();
                let mut out: BTreeSet<Reg> = BTreeSet::new();
                for s in func.block(b).successors() {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn = use_set[i].clone();
                for r in out.difference(&def_set[i]) {
                    inn.insert(*r);
                }
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }

        Self { live_in, live_out, use_set, def_set }
    }

    /// Registers live at entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &BTreeSet<Reg> {
        &self.live_in[b.index()]
    }

    /// Registers live at exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &BTreeSet<Reg> {
        &self.live_out[b.index()]
    }

    /// Registers defined (written) inside `b`.
    pub fn defs(&self, b: BlockId) -> &BTreeSet<Reg> {
        &self.def_set[b.index()]
    }

    /// Registers upward-exposed (used before any local def) in `b`.
    pub fn upward_exposed(&self, b: BlockId) -> &BTreeSet<Reg> {
        &self.use_set[b.index()]
    }

    /// Registers that are live at entry to `header` *and* written anywhere
    /// in `region_blocks` — exactly the set Encore must checkpoint at
    /// region entry.
    pub fn clobbered_live_ins(
        &self,
        header: BlockId,
        region_blocks: impl IntoIterator<Item = BlockId>,
    ) -> BTreeSet<Reg> {
        let live = self.live_in(header);
        let mut clobbered = BTreeSet::new();
        for b in region_blocks {
            for d in self.defs(b) {
                if live.contains(d) {
                    clobbered.insert(*d);
                }
            }
        }
        clobbered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{AddrExpr, BinOp, ModuleBuilder, Operand};

    #[test]
    fn param_live_into_use() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_else(p.into(), |_| {}, |_| {});
            f.ret(Some(p.into()));
        });
        let m = mb.finish();
        let f = &m.funcs[0];
        let lv = Liveness::compute(f);
        let p = Reg::new(0);
        // p is live into every block on the way to the final ret.
        assert!(lv.live_in(BlockId::new(0)).contains(&p));
        assert!(lv.live_in(BlockId::new(3)).contains(&p));
        assert!(lv.live_out(BlockId::new(0)).contains(&p));
    }

    #[test]
    fn dead_value_not_live() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let dead = f.mov(Operand::ImmI(1));
            let _ = dead;
            f.ret(None);
        });
        let m = mb.finish();
        let lv = Liveness::compute(&m.funcs[0]);
        assert!(lv.live_in(BlockId::new(0)).is_empty());
        assert!(lv.defs(BlockId::new(0)).contains(&Reg::new(0)));
    }

    #[test]
    fn loop_carried_value_is_live_at_header() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let i = f.mov(Operand::ImmI(0));
            f.while_loop(
                |f| Operand::Reg(f.bin(BinOp::Lt, i.into(), n.into())),
                |f| f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1)),
            );
            f.ret(Some(i.into()));
        });
        let m = mb.finish();
        let lv = Liveness::compute(&m.funcs[0]);
        let i_reg = Reg::new(1);
        let header = BlockId::new(1);
        let body = BlockId::new(2);
        assert!(lv.live_in(header).contains(&i_reg));
        assert!(lv.live_in(body).contains(&i_reg));
        // The body both uses and redefines i.
        assert!(lv.defs(body).contains(&i_reg));
    }

    #[test]
    fn clobbered_live_ins_detects_overwritten_inputs() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        mb.function("f", 2, |f| {
            let a = f.param(0); // overwritten below -> needs checkpoint
            let b = f.param(1); // only read -> no checkpoint
            let body_start = f.add_block();
            f.jump(body_start);
            f.switch_to(body_start);
            f.bin_to(a, BinOp::Add, a.into(), b.into());
            f.store(AddrExpr::global(g, 0), a.into());
            f.ret(Some(a.into()));
        });
        let m = mb.finish();
        let lv = Liveness::compute(&m.funcs[0]);
        let region = [BlockId::new(1)];
        let clobbered = lv.clobbered_live_ins(BlockId::new(1), region);
        assert!(clobbered.contains(&Reg::new(0)));
        assert!(!clobbered.contains(&Reg::new(1)));
    }

    #[test]
    fn use_before_def_is_upward_exposed() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            // use p, then redefine it
            let q = f.bin(BinOp::Add, p.into(), Operand::ImmI(1));
            f.mov_to(p, q.into());
            f.ret(Some(p.into()));
        });
        let m = mb.finish();
        let lv = Liveness::compute(&m.funcs[0]);
        assert!(lv.upward_exposed(BlockId::new(0)).contains(&Reg::new(0)));
    }
}
