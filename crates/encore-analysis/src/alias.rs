//! Static memory alias analysis.
//!
//! The paper's set operations over reachable-store / guarded-address /
//! exposed-address sets are "supplied with standard, conservative, static
//! memory alias analysis techniques" (§3.1.1), and Figure 7a contrasts the
//! overhead under that conservative analysis with an *optimistic* bound
//! representing a future dynamic alias framework. Both oracles live here:
//!
//! * [`StaticAlias`] — conservative: distinct named objects never alias;
//!   anything involving an opaque pointer or a dynamic index may alias.
//! * [`OptimisticAlias`] — the Figure 7a lower bound: assumes a perfect
//!   disambiguator for everything except accesses that *provably* must
//!   alias.

use crate::memprofile::{MemProfile, SiteRef};
use encore_ir::{AddrExpr, MemBase};
use std::sync::Arc;

/// Three-valued alias answer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AliasResult {
    /// The two references never overlap.
    No,
    /// The two references may overlap.
    May,
    /// The two references always denote the same cell.
    Must,
}

/// An alias oracle over symbolic addresses.
///
/// Implementations must be *sound for their advertised mode*: `Must` is
/// only returned when the addresses provably coincide; for the
/// conservative oracle, `No` is only returned when they provably differ.
///
/// Oracles are required to be [`Sync`]: the analysis pipeline shards its
/// per-function loop across threads, all of which consult one shared
/// oracle through the same [`crate::MemSummary`]-backed analyzer.
pub trait AliasOracle: Sync {
    /// Classifies the relationship between two addresses.
    fn alias(&self, a: &AddrExpr, b: &AddrExpr) -> AliasResult;

    /// Site-aware classification: like [`AliasOracle::alias`], but with
    /// the static instruction sites available so profile-guided oracles
    /// can consult observed footprints. The default ignores the sites.
    fn alias_at(
        &self,
        _a_site: Option<SiteRef>,
        a: &AddrExpr,
        _b_site: Option<SiteRef>,
        b: &AddrExpr,
    ) -> AliasResult {
        self.alias(a, b)
    }

    /// `true` when the pair may refer to the same cell (i.e. `May` or
    /// `Must`).
    fn may_alias(&self, a: &AddrExpr, b: &AddrExpr) -> bool {
        self.alias(a, b) != AliasResult::No
    }

    /// `true` when the pair provably refers to the same cell.
    fn must_alias(&self, a: &AddrExpr, b: &AddrExpr) -> bool {
        self.alias(a, b) == AliasResult::Must
    }
}

/// Do the two bases certainly name different objects?
fn distinct_static_bases(a: &MemBase, b: &MemBase) -> bool {
    match (a, b) {
        (MemBase::Global(x), MemBase::Global(y)) => x != y,
        (MemBase::Slot(x), MemBase::Slot(y)) => x != y,
        (MemBase::Heap(_), MemBase::Heap(_)) => false, // same/unknown objects
        (MemBase::Reg(_), _) | (_, MemBase::Reg(_)) => false,
        // Different kinds of static object never overlap.
        _ => true,
    }
}

/// Conservative static alias analysis.
///
/// Rules (in order):
/// * different static objects (global vs global with different ids,
///   global vs slot, ...) — `No`;
/// * opaque pointer bases (`MemBase::Reg`) — `May` against everything
///   (identical syntactic address included: the register may change);
/// * heap sites — `May` (allocation-site abstraction: two objects from
///   the same site are distinct at runtime but indistinguishable
///   statically, so neither `No` nor `Must` is sound);
/// * same static object, both offsets constant — `Must` if equal, else
///   `No`;
/// * same static object, any dynamic offset — `May`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StaticAlias;

impl AliasOracle for StaticAlias {
    fn alias(&self, a: &AddrExpr, b: &AddrExpr) -> AliasResult {
        if distinct_static_bases(&a.base, &b.base) {
            return AliasResult::No;
        }
        match (&a.base, &b.base) {
            (MemBase::Reg(_), _) | (_, MemBase::Reg(_)) => AliasResult::May,
            (MemBase::Heap(x), MemBase::Heap(y)) => {
                if x == y {
                    AliasResult::May
                } else {
                    AliasResult::No
                }
            }
            _ => match (a.offset.as_const(), b.offset.as_const()) {
                (Some(x), Some(y)) => {
                    if x == y {
                        AliasResult::Must
                    } else {
                        AliasResult::No
                    }
                }
                _ => AliasResult::May,
            },
        }
    }
}

/// Optimistic alias oracle — the "future dynamic alias analysis" lower
/// bound of Figure 7a.
///
/// Everything the conservative oracle calls `May` becomes `No`, *except*
/// syntactically identical addresses, which stay `May` (same base
/// register / same index expression genuinely can re-reference the same
/// cell). Constant-offset answers are unchanged.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct OptimisticAlias;

impl AliasOracle for OptimisticAlias {
    fn alias(&self, a: &AddrExpr, b: &AddrExpr) -> AliasResult {
        match StaticAlias.alias(a, b) {
            AliasResult::May => {
                if a == b {
                    AliasResult::May
                } else {
                    AliasResult::No
                }
            }
            other => other,
        }
    }
}

/// Profile-guided alias oracle — the paper's "more aggressive dynamic
/// memory profiling" (footnote 2): two access sites whose *observed*
/// footprints are disjoint in the training run are declared
/// non-aliasing. Statistical in the same sense as `Pmin` pruning: an
/// evaluation input exercising an unobserved conflict gambles
/// recoverability, never correctness of fault-free execution.
/// Everything the profile cannot disambiguate falls back to the
/// conservative [`StaticAlias`] answer.
#[derive(Clone, Debug, Default)]
pub struct ProfiledAlias {
    profile: Arc<MemProfile>,
}

impl ProfiledAlias {
    /// Creates the oracle over a training-run memory profile.
    pub fn new(profile: Arc<MemProfile>) -> Self {
        Self { profile }
    }
}

impl AliasOracle for ProfiledAlias {
    fn alias(&self, a: &AddrExpr, b: &AddrExpr) -> AliasResult {
        StaticAlias.alias(a, b)
    }

    fn alias_at(
        &self,
        a_site: Option<SiteRef>,
        a: &AddrExpr,
        b_site: Option<SiteRef>,
        b: &AddrExpr,
    ) -> AliasResult {
        if let (Some(sa), Some(sb)) = (a_site, b_site) {
            if self.profile.observed_disjoint(sa, sb) {
                return AliasResult::No;
            }
        }
        StaticAlias.alias(a, b)
    }
}

/// The alias mode used by an Encore run (selects the oracle).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub enum AliasMode {
    /// Conservative static analysis (the paper's deployed configuration).
    #[default]
    Static,
    /// Optimistic lower-bound analysis (Figure 7a's second bar).
    Optimistic,
    /// Profile-guided disambiguation (the paper's future-work bound,
    /// realized); requires a [`MemProfile`] from a training run and falls
    /// back to [`AliasMode::Static`] where the profile is silent.
    Profiled,
}

impl AliasMode {
    /// Returns the oracle implementing this mode. For
    /// [`AliasMode::Profiled`], `mem` supplies the training footprints
    /// (an empty profile degrades gracefully to the static oracle).
    pub fn oracle_with(self, mem: Option<Arc<MemProfile>>) -> Box<dyn AliasOracle> {
        match self {
            AliasMode::Static => Box::new(StaticAlias),
            AliasMode::Optimistic => Box::new(OptimisticAlias),
            AliasMode::Profiled => {
                Box::new(ProfiledAlias::new(mem.unwrap_or_default()))
            }
        }
    }

    /// Returns the oracle implementing this mode, with no profile
    /// attached.
    pub fn oracle(self) -> Box<dyn AliasOracle> {
        self.oracle_with(None)
    }
}

impl AliasOracle for Box<dyn AliasOracle> {
    fn alias(&self, a: &AddrExpr, b: &AddrExpr) -> AliasResult {
        self.as_ref().alias(a, b)
    }

    fn alias_at(
        &self,
        a_site: Option<SiteRef>,
        a: &AddrExpr,
        b_site: Option<SiteRef>,
        b: &AddrExpr,
    ) -> AliasResult {
        self.as_ref().alias_at(a_site, a, b_site, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{GlobalId, HeapId, Reg, SlotId};

    fn g(id: u32, off: i64) -> AddrExpr {
        AddrExpr::global(GlobalId::new(id), off)
    }

    #[test]
    fn distinct_globals_no_alias() {
        assert_eq!(StaticAlias.alias(&g(0, 0), &g(1, 0)), AliasResult::No);
    }

    #[test]
    fn same_global_same_offset_must_alias() {
        assert_eq!(StaticAlias.alias(&g(0, 3), &g(0, 3)), AliasResult::Must);
        assert_eq!(StaticAlias.alias(&g(0, 3), &g(0, 4)), AliasResult::No);
    }

    #[test]
    fn global_vs_slot_no_alias() {
        let s = AddrExpr::slot(SlotId::new(0), 0);
        assert_eq!(StaticAlias.alias(&g(0, 0), &s), AliasResult::No);
    }

    #[test]
    fn dynamic_offset_may_alias() {
        let idx = AddrExpr::indexed(MemBase::Global(GlobalId::new(0)), Reg::new(1), 1, 0);
        assert_eq!(StaticAlias.alias(&g(0, 5), &idx), AliasResult::May);
        assert_eq!(StaticAlias.alias(&idx, &idx), AliasResult::May);
    }

    #[test]
    fn pointer_base_may_alias_everything_static() {
        let p = AddrExpr::reg(Reg::new(2), 0);
        assert_eq!(StaticAlias.alias(&p, &g(0, 0)), AliasResult::May);
        assert_eq!(StaticAlias.alias(&p, &p), AliasResult::May);
    }

    #[test]
    fn heap_sites_never_must_alias() {
        let a = AddrExpr::heap(HeapId::new(0), 0);
        let b = AddrExpr::heap(HeapId::new(0), 0);
        assert_eq!(StaticAlias.alias(&a, &b), AliasResult::May);
        let c = AddrExpr::heap(HeapId::new(1), 0);
        assert_eq!(StaticAlias.alias(&a, &c), AliasResult::No);
    }

    #[test]
    fn optimistic_turns_may_into_no_for_distinct_exprs() {
        let idx1 = AddrExpr::indexed(MemBase::Global(GlobalId::new(0)), Reg::new(1), 1, 0);
        let idx2 = AddrExpr::indexed(MemBase::Global(GlobalId::new(0)), Reg::new(2), 1, 0);
        assert_eq!(OptimisticAlias.alias(&idx1, &idx2), AliasResult::No);
        // Identical expressions stay May.
        assert_eq!(OptimisticAlias.alias(&idx1, &idx1), AliasResult::May);
        // Must answers are preserved.
        assert_eq!(OptimisticAlias.alias(&g(0, 1), &g(0, 1)), AliasResult::Must);
    }

    #[test]
    fn symmetry_of_both_oracles() {
        let addrs = [
            g(0, 0),
            g(0, 1),
            g(1, 0),
            AddrExpr::slot(SlotId::new(0), 0),
            AddrExpr::heap(HeapId::new(0), 2),
            AddrExpr::reg(Reg::new(3), 1),
            AddrExpr::indexed(MemBase::Global(GlobalId::new(0)), Reg::new(1), 2, 0),
        ];
        for a in &addrs {
            for b in &addrs {
                assert_eq!(StaticAlias.alias(a, b), StaticAlias.alias(b, a));
                assert_eq!(OptimisticAlias.alias(a, b), OptimisticAlias.alias(b, a));
            }
        }
    }

    use encore_ir::MemBase;
}
