//! Dense bitsets for dataflow facts.
//!
//! The RS/GA/EA fixpoints (Eqs. 1–3 of the paper) and register liveness
//! manipulate sets of small dense indices — load/store sites, guard
//! cells, virtual registers — millions of times per module. A packed
//! `u64`-word representation turns every union/intersection/difference
//! into a handful of word ops and makes the final `EA ∩ RS` emptiness
//! probe (Eq. 4) a word-wise `is_disjoint` scan.

/// A fixed-universe set of `usize` indices packed into `u64` words.
///
/// All binary operations require both operands to share the same
/// universe size; dataflow over one function always does.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// The universe size (not the number of elements; see
    /// [`BitSet::count`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no index is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of indices present.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Widens the universe to `0..new_len` (no-op when already at least
    /// that wide); existing members are preserved.
    pub fn grow(&mut self, new_len: usize) {
        if new_len > self.len {
            self.len = new_len;
            self.words.resize(new_len.div_ceil(64), 0);
        }
    }

    /// Inserts `i`; returns `true` if it was absent.
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside universe 0..{}", self.len);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let absent = self.words[w] & m == 0;
        self.words[w] |= m;
        absent
    }

    /// Removes `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let present = self.words[w] & m != 0;
        self.words[w] &= !m;
        present
    }

    /// `true` when `i` is present.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    fn assert_same_universe(&self, other: &BitSet) {
        assert_eq!(
            self.len, other.len,
            "bitset universe mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// `self ∪= other`; returns `true` when `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self ∩= other`; returns `true` when `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self −= other`; returns `true` when `self` changed.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & !b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `true` when the two sets share no index — the Eq. 4 probe.
    #[must_use]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(&a, &b)| a & b == 0)
    }

    /// Iterates the members of `self ∩ other` in ascending order without
    /// materializing the intersection.
    pub fn iter_and<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = usize> + 'a {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).enumerate().flat_map(|(wi, (&a, &b))| {
            let mut rest = a & b;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set whose universe is just large enough
    /// for the largest member.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new(0);
        for i in iter {
            s.grow(i + 1);
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports no change");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(129));
        assert!(!s.remove(129));
        assert!(!s.contains(129));
    }

    #[test]
    fn grow_preserves_members() {
        let mut s = BitSet::new(3);
        s.insert(2);
        s.grow(200);
        assert_eq!(s.len(), 200);
        assert!(s.contains(2));
        assert!(s.insert(199));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 199]);
        // Shrinking is a no-op.
        s.grow(10);
        assert_eq!(s.len(), 200);
    }

    #[test]
    fn union_reports_change_exactly_when_bits_arrive() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(3);
        assert!(!a.union_with(&b), "union with a subset is a no-op");
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(a.contains(99));
        assert!(!a.union_with(&b), "fixpoint: second union changes nothing");
    }

    #[test]
    fn intersect_and_subtract_report_change() {
        let mut a: BitSet = [1, 2, 3].into_iter().collect();
        a.grow(10);
        let mut b: BitSet = [2, 3].into_iter().collect();
        b.grow(10);
        assert!(a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert!(!a.intersect_with(&b));
        assert!(a.subtract(&b));
        assert!(a.is_empty());
        assert!(!a.subtract(&b));
    }

    #[test]
    fn disjointness() {
        let mut a = BitSet::new(256);
        let mut b = BitSet::new(256);
        a.insert(70);
        b.insert(200);
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
        b.insert(70);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iter_and_walks_the_intersection() {
        let mut a: BitSet = [0, 5, 64, 190].into_iter().collect();
        a.grow(256);
        let mut b: BitSet = [5, 63, 64, 200].into_iter().collect();
        b.grow(256);
        assert_eq!(a.iter_and(&b).collect::<Vec<_>>(), vec![5, 64]);
        assert_eq!(b.iter_and(&a).collect::<Vec<_>>(), vec![5, 64]);
        let empty = BitSet::new(256);
        assert_eq!(a.iter_and(&empty).count(), 0);
    }

    #[test]
    fn iter_is_ascending() {
        let s: BitSet = [190, 0, 63, 64, 5].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 63, 64, 190]);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mixed_universe_ops_panic() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(20);
        a.union_with(&b);
    }
}
