//! Function memory-effect summaries (purity).
//!
//! Encore's region analysis must decide what to do with call sites. The
//! paper reports regions containing un-analyzable calls (system/library
//! functions without alias information) as *Unknown* (§5.1). We refine
//! this slightly with a cheap bottom-up purity analysis so that calls to
//! provably side-effect-free internal helpers do not poison their region:
//!
//! * [`Purity::Pure`] — touches no memory at all (registers only);
//! * [`Purity::ReadOnly`] — may load, never stores/allocates;
//! * [`Purity::Impure`] — may store, allocate, or call something opaque.
//!
//! The analysis is a monotone fixpoint over the call graph (handles
//! recursion), starting from `Pure` and raising as effects are found.

use encore_ir::{ExtEffect, FuncId, Inst, Module};

/// Memory effect level of a function, ordered `Pure < ReadOnly < Impure`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Purity {
    /// No memory access whatsoever.
    Pure,
    /// Loads only.
    ReadOnly,
    /// Stores, allocations, or opaque external effects.
    Impure,
}

impl Purity {
    fn join(self, other: Purity) -> Purity {
        self.max(other)
    }
}

/// Purity classification of every function in a module.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PuritySummary {
    levels: Vec<Purity>,
}

impl PuritySummary {
    /// Computes purity for all functions in `module`.
    pub fn compute(module: &Module) -> Self {
        let n = module.funcs.len();
        let mut levels = vec![Purity::Pure; n];
        // Iterate to fixpoint: effects only increase, and the lattice has
        // height 3, so this terminates quickly.
        let mut changed = true;
        while changed {
            changed = false;
            for (fi, func) in module.iter_funcs() {
                let mut level = levels[fi.index()];
                for block in &func.blocks {
                    for inst in &block.insts {
                        let effect = match inst {
                            Inst::Load { .. } => Purity::ReadOnly,
                            Inst::Store { .. } | Inst::Alloc { .. } => Purity::Impure,
                            Inst::Call { callee, .. } => levels[callee.index()],
                            Inst::CallExt { effect, .. } => match effect {
                                ExtEffect::Pure => Purity::Pure,
                                ExtEffect::ReadOnly => Purity::ReadOnly,
                                ExtEffect::Opaque => Purity::Impure,
                            },
                            // Instrumentation opcodes are invisible to the
                            // analysis (they exist to *preserve* semantics).
                            _ => Purity::Pure,
                        };
                        level = level.join(effect);
                        if level == Purity::Impure {
                            break;
                        }
                    }
                }
                if level != levels[fi.index()] {
                    levels[fi.index()] = level;
                    changed = true;
                }
            }
        }
        Self { levels }
    }

    /// Purity of function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn purity(&self, f: FuncId) -> Purity {
        self.levels[f.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{AddrExpr, BinOp, ModuleBuilder, Operand};

    #[test]
    fn arithmetic_function_is_pure() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.function("sq", 1, |f| {
            let p = f.param(0);
            let r = f.bin(BinOp::Mul, p.into(), p.into());
            f.ret(Some(r.into()));
        });
        let s = PuritySummary::compute(&mb.finish());
        assert_eq!(s.purity(f), Purity::Pure);
    }

    #[test]
    fn loads_make_readonly_stores_make_impure() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 2);
        let ro = mb.function("reader", 0, |f| {
            let v = f.load(AddrExpr::global(g, 0));
            f.ret(Some(v.into()));
        });
        let w = mb.function("writer", 0, |f| {
            f.store(AddrExpr::global(g, 1), Operand::ImmI(1));
            f.ret(None);
        });
        let s = PuritySummary::compute(&mb.finish());
        assert_eq!(s.purity(ro), Purity::ReadOnly);
        assert_eq!(s.purity(w), Purity::Impure);
    }

    #[test]
    fn purity_propagates_through_calls() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let writer = mb.function("writer", 0, |f| {
            f.store(AddrExpr::global(g, 0), Operand::ImmI(1));
            f.ret(None);
        });
        let caller = mb.function("caller", 0, |f| {
            f.call_void(writer, &[]);
            f.ret(None);
        });
        let s = PuritySummary::compute(&mb.finish());
        assert_eq!(s.purity(caller), Purity::Impure);
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("rec", 1);
        mb.define(f, |fb| {
            let p = fb.param(0);
            fb.if_else(
                p.into(),
                |fb| {
                    let dec = fb.bin(BinOp::Sub, p.into(), Operand::ImmI(1));
                    let r = fb.call(f, &[dec.into()]);
                    fb.ret(Some(r.into()));
                },
                |fb| fb.ret(Some(Operand::ImmI(0))),
            );
        });
        let s = PuritySummary::compute(&mb.finish());
        assert_eq!(s.purity(f), Purity::Pure);
    }

    #[test]
    fn ext_call_effects_respected() {
        use encore_ir::ExtEffect;
        let mut mb = ModuleBuilder::new("m");
        let p = mb.function("uses_sin", 1, |f| {
            let a = f.param(0);
            let r = f.call_ext("sin", &[a.into()], ExtEffect::Pure);
            f.ret(Some(r.into()));
        });
        let o = mb.function("uses_sys", 0, |f| {
            f.call_ext_void("write", &[], ExtEffect::Opaque);
            f.ret(None);
        });
        let s = PuritySummary::compute(&mb.finish());
        assert_eq!(s.purity(p), Purity::Pure);
        assert_eq!(s.purity(o), Purity::Impure);
    }

    #[test]
    fn alloc_is_impure() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.function("allocs", 0, |f| {
            let p = f.alloc(Operand::ImmI(8));
            f.ret(Some(p.into()));
        });
        let s = PuritySummary::compute(&mb.finish());
        assert_eq!(s.purity(f), Purity::Impure);
    }
}
