//! Inter-procedural memory-effect summaries.
//!
//! The paper marks regions containing calls "for which relevant alias
//! analysis information could not be easily obtained" as *Unknown*
//! (§5.1). For internal functions the information **can** be obtained: a
//! bottom-up fixpoint computes, per function, the set of addresses it may
//! load and may store, expressed against module-level objects (globals /
//! heap sites) — callee-local state (stack slots, registers) is invisible
//! to callers and excluded. A summary degrades to ⊤ when the function
//! touches memory through opaque pointers, calls opaque externals, or
//! takes pointer-typed arguments it dereferences (we cannot name the
//! callee's view of caller memory without a points-to analysis).
//!
//! `encore-core` uses these summaries to treat calls to *analyzable*
//! impure functions as ordinary bundles of loads/stores, so their
//! enclosing regions become checkpointable instead of Unknown.

use encore_ir::{AddrExpr, ExtEffect, FuncId, Inst, MemBase, Module};
use std::collections::BTreeSet;

/// A set of module-visible addresses, or ⊤ (anything).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AddrSet {
    /// A finite set of symbolic addresses (global/heap bases only).
    Set(BTreeSet<SummaryAddr>),
    /// May reference any memory.
    Top,
}

impl AddrSet {
    /// The empty set.
    pub fn empty() -> Self {
        AddrSet::Set(BTreeSet::new())
    }

    /// Is this the empty set?
    pub fn is_empty(&self) -> bool {
        matches!(self, AddrSet::Set(s) if s.is_empty())
    }

    fn insert(&mut self, a: SummaryAddr) {
        if let AddrSet::Set(s) = self {
            s.insert(a);
        }
    }

    fn join(&mut self, other: &AddrSet) -> bool {
        match (&mut *self, other) {
            (AddrSet::Top, _) => false,
            (me, AddrSet::Top) => {
                *me = AddrSet::Top;
                true
            }
            (AddrSet::Set(a), AddrSet::Set(b)) => {
                let before = a.len();
                a.extend(b.iter().copied());
                a.len() != before
            }
        }
    }

    fn make_top(&mut self) -> bool {
        if matches!(self, AddrSet::Top) {
            false
        } else {
            *self = AddrSet::Top;
            true
        }
    }

    /// Iterates the members (empty for ⊤ — use [`AddrSet::Top`] checks).
    pub fn iter(&self) -> impl Iterator<Item = &SummaryAddr> {
        match self {
            AddrSet::Set(s) => s.iter(),
            AddrSet::Top => {
                // Static empty set reference for the Top case.
                static EMPTY: std::sync::OnceLock<BTreeSet<SummaryAddr>> =
                    std::sync::OnceLock::new();
                EMPTY.get_or_init(BTreeSet::new).iter()
            }
        }
    }
}

/// A caller-visible address a callee may touch: a module object with a
/// constant cell, or the whole object when the offset is dynamic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SummaryAddr {
    /// A specific cell of a global.
    GlobalCell {
        /// Raw global id.
        id: u32,
        /// Cell offset.
        offset: i64,
    },
    /// Some cell(s) of a global (dynamic offset).
    GlobalAny {
        /// Raw global id.
        id: u32,
    },
    /// Some cell(s) of a heap allocation site.
    HeapAny {
        /// Raw heap-site id.
        id: u32,
    },
}

impl SummaryAddr {
    /// Classifies a callee-side address into its caller-visible form;
    /// `None` when the address is invisible to callers (stack slot) and
    /// `Some(Err(()))` when it is unanalyzable (pointer register).
    fn of(addr: &AddrExpr) -> Option<Result<SummaryAddr, ()>> {
        match addr.base {
            MemBase::Global(g) => Some(Ok(match addr.offset.as_const() {
                Some(offset) => SummaryAddr::GlobalCell { id: g.raw(), offset },
                None => SummaryAddr::GlobalAny { id: g.raw() },
            })),
            MemBase::Heap(h) => Some(Ok(SummaryAddr::HeapAny { id: h.raw() })),
            MemBase::Slot(_) => None, // callee-private
            MemBase::Reg(_) => Some(Err(())),
        }
    }

    /// Renders the summary address as a symbolic [`AddrExpr`]-like pair
    /// for alias queries: the global/heap base plus an optional constant
    /// offset (`None` = dynamic/any).
    pub fn parts(&self) -> (MemBase, Option<i64>) {
        match self {
            SummaryAddr::GlobalCell { id, offset } => {
                (MemBase::Global(encore_ir::GlobalId::new(*id)), Some(*offset))
            }
            SummaryAddr::GlobalAny { id } => {
                (MemBase::Global(encore_ir::GlobalId::new(*id)), None)
            }
            SummaryAddr::HeapAny { id } => (MemBase::Heap(encore_ir::HeapId::new(*id)), None),
        }
    }
}

/// One function's caller-visible memory effects.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncEffects {
    /// Addresses the function (transitively) may load.
    pub loads: AddrSet,
    /// Addresses the function (transitively) may store.
    pub stores: AddrSet,
    /// Whether the function (transitively) allocates memory.
    pub allocates: bool,
}

impl FuncEffects {
    fn new() -> Self {
        Self { loads: AddrSet::empty(), stores: AddrSet::empty(), allocates: false }
    }

    /// `true` when the effects are fully analyzable (no ⊤ component).
    pub fn is_analyzable(&self) -> bool {
        !matches!(self.loads, AddrSet::Top) && !matches!(self.stores, AddrSet::Top)
    }
}

/// Memory summaries for every function of a module.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemSummary {
    effects: Vec<FuncEffects>,
}

impl MemSummary {
    /// Computes summaries with a bottom-up fixpoint over the call graph
    /// (recursion converges because the abstract domain is finite:
    /// per-global cells collapse to `GlobalAny` only via dynamic offsets
    /// present in the code).
    pub fn compute(module: &Module) -> Self {
        let n = module.funcs.len();
        let mut effects: Vec<FuncEffects> = (0..n).map(|_| FuncEffects::new()).collect();
        let mut changed = true;
        let mut rounds = 0;
        while changed && rounds < 64 {
            changed = false;
            rounds += 1;
            for (fi, func) in module.iter_funcs() {
                let mut fx = effects[fi.index()].clone();
                for block in &func.blocks {
                    for inst in &block.insts {
                        match inst {
                            Inst::Load { addr, .. } => match SummaryAddr::of(addr) {
                                Some(Ok(a)) => fx.loads.insert(a),
                                Some(Err(())) => {
                                    changed |= fx.loads.make_top();
                                }
                                None => {}
                            },
                            Inst::Store { addr, .. } => match SummaryAddr::of(addr) {
                                Some(Ok(a)) => fx.stores.insert(a),
                                Some(Err(())) => {
                                    changed |= fx.stores.make_top();
                                }
                                None => {}
                            },
                            Inst::Alloc { .. } => fx.allocates = true,
                            Inst::Call { callee, .. } => {
                                let callee_fx = effects[callee.index()].clone();
                                changed |= fx.loads.join(&callee_fx.loads);
                                changed |= fx.stores.join(&callee_fx.stores);
                                fx.allocates |= callee_fx.allocates;
                            }
                            Inst::CallExt { effect, .. } => match effect {
                                ExtEffect::Pure => {}
                                ExtEffect::ReadOnly => {
                                    changed |= fx.loads.make_top();
                                }
                                ExtEffect::Opaque => {
                                    changed |= fx.loads.make_top();
                                    changed |= fx.stores.make_top();
                                }
                            },
                            _ => {}
                        }
                    }
                }
                if fx != effects[fi.index()] {
                    effects[fi.index()] = fx;
                    changed = true;
                }
            }
        }
        Self { effects }
    }

    /// Effects of function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn effects(&self, f: FuncId) -> &FuncEffects {
        &self.effects[f.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{AddrExpr, BinOp, ModuleBuilder, Operand, Reg};

    #[test]
    fn direct_effects_collected() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 4);
        let f = mb.function("f", 1, |f| {
            let p = f.param(0);
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::indexed(MemBase::Global(g), p, 1, 0), v.into());
            f.ret(None);
        });
        let s = MemSummary::compute(&mb.finish());
        let fx = s.effects(f);
        assert!(fx.is_analyzable());
        assert!(fx
            .loads
            .iter()
            .any(|a| *a == SummaryAddr::GlobalCell { id: 0, offset: 0 }));
        assert!(fx.stores.iter().any(|a| *a == SummaryAddr::GlobalAny { id: 0 }));
    }

    #[test]
    fn effects_propagate_through_calls() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let leaf = mb.function("leaf", 0, |f| {
            f.store(AddrExpr::global(g, 0), Operand::ImmI(1));
            f.ret(None);
        });
        let caller = mb.function("caller", 0, |f| {
            f.call_void(leaf, &[]);
            f.ret(None);
        });
        let s = MemSummary::compute(&mb.finish());
        assert!(s
            .effects(caller)
            .stores
            .iter()
            .any(|a| *a == SummaryAddr::GlobalCell { id: 0, offset: 0 }));
    }

    #[test]
    fn pointer_accesses_degrade_to_top() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.function("f", 1, |f| {
            // Treat the (integer) parameter as a pointer source via Lea;
            // simplest: store through a pointer register.
            let p = f.alloc(Operand::ImmI(4));
            f.store(AddrExpr::reg(p, 0), Operand::ImmI(1));
            let v = f.load(AddrExpr::reg(p, 0));
            f.ret(Some(v.into()));
        });
        let s = MemSummary::compute(&mb.finish());
        let fx = s.effects(f);
        assert!(!fx.is_analyzable());
        assert!(fx.allocates);
    }

    #[test]
    fn slots_are_invisible_to_callers() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.function("f", 0, |f| {
            let s = f.slot(2);
            f.store(AddrExpr::slot(s, 0), Operand::ImmI(1));
            let v = f.load(AddrExpr::slot(s, 0));
            f.ret(Some(v.into()));
        });
        let s = MemSummary::compute(&mb.finish());
        let fx = s.effects(f);
        assert!(fx.loads.is_empty());
        assert!(fx.stores.is_empty());
        assert!(fx.is_analyzable());
    }

    #[test]
    fn recursion_converges() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let f = mb.declare("rec", 1);
        mb.define(f, |fb| {
            let p = fb.param(0);
            fb.if_else(
                p.into(),
                |fb| {
                    let d = fb.bin(BinOp::Sub, p.into(), Operand::ImmI(1));
                    fb.store(AddrExpr::global(g, 0), d.into());
                    fb.call_void(f, &[d.into()]);
                    fb.ret(None);
                },
                |fb| fb.ret(None),
            );
        });
        let s = MemSummary::compute(&mb.finish());
        let fx = s.effects(f);
        assert!(fx.is_analyzable());
        assert_eq!(fx.stores.iter().count(), 1);
    }

    #[test]
    fn readonly_extern_tops_loads_only() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.function("f", 0, |f| {
            let v = f.call_ext("peek", &[], ExtEffect::ReadOnly);
            f.ret(Some(v.into()));
        });
        let s = MemSummary::compute(&mb.finish());
        let fx = s.effects(f);
        assert!(matches!(fx.loads, AddrSet::Top));
        assert!(fx.stores.is_empty());
    }

    #[test]
    fn summary_addr_parts_roundtrip() {
        let a = SummaryAddr::GlobalCell { id: 3, offset: 7 };
        let (base, off) = a.parts();
        assert_eq!(base, MemBase::Global(encore_ir::GlobalId::new(3)));
        assert_eq!(off, Some(7));
        let b = SummaryAddr::HeapAny { id: 1 };
        assert_eq!(b.parts().1, None);
        let _ = Reg::new(0);
    }
}
