//! Dynamic memory-access profiles for alias disambiguation.
//!
//! The paper's conservative static alias analysis forces checkpoints on
//! accesses that only *may* alias, and names "more aggressive dynamic
//! memory profiling" as the fix (footnote 2, §5.3's Optimistic bound).
//! A [`MemProfile`] records, per static load/store site, the set of
//! concrete cells the site touched during a training run; the
//! [`ProfiledAlias`](crate::ProfiledAlias) oracle then declares two sites
//! non-aliasing when their observed footprints are disjoint — a
//! *statistical* judgment in the same spirit as `Pmin` pruning.

use encore_ir::{Cell, FuncId, InstRef};
use std::collections::{BTreeMap, BTreeSet};

/// Identity of a static memory-access site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteRef {
    /// Function containing the instruction.
    pub func: FuncId,
    /// Instruction position.
    pub at: InstRef,
}

/// Observed footprints of memory-access sites.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MemProfile {
    touched: BTreeMap<SiteRef, BTreeSet<Cell>>,
}

impl MemProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `site` accessed `cell`.
    pub fn record(&mut self, site: SiteRef, cell: Cell) {
        self.touched.entry(site).or_default().insert(cell);
    }

    /// The cells `site` was observed touching, if it executed at all.
    pub fn footprint(&self, site: SiteRef) -> Option<&BTreeSet<Cell>> {
        self.touched.get(&site)
    }

    /// Were both sites observed, with provably disjoint footprints?
    pub fn observed_disjoint(&self, a: SiteRef, b: SiteRef) -> bool {
        match (self.footprint(a), self.footprint(b)) {
            (Some(fa), Some(fb)) => fa.intersection(fb).next().is_none(),
            _ => false,
        }
    }

    /// Number of profiled sites.
    pub fn site_count(&self) -> usize {
        self.touched.len()
    }

    /// Merges another profile (e.g. several training runs).
    pub fn merge(&mut self, other: &MemProfile) {
        for (site, cells) in &other.touched {
            self.touched.entry(*site).or_default().extend(cells.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{BlockId, ObjKind};

    fn site(f: u32, b: u32, i: usize) -> SiteRef {
        SiteRef { func: FuncId::new(f), at: InstRef::new(BlockId::new(b), i) }
    }

    fn cell(obj: u32, idx: u64) -> Cell {
        Cell { obj: ObjKind::Global(obj), index: idx }
    }

    #[test]
    fn disjoint_footprints_detected() {
        let mut p = MemProfile::new();
        p.record(site(0, 1, 0), cell(0, 0));
        p.record(site(0, 1, 0), cell(0, 1));
        p.record(site(0, 2, 3), cell(0, 5));
        assert!(p.observed_disjoint(site(0, 1, 0), site(0, 2, 3)));
        p.record(site(0, 2, 3), cell(0, 1)); // now they overlap
        assert!(!p.observed_disjoint(site(0, 1, 0), site(0, 2, 3)));
    }

    #[test]
    fn unobserved_sites_are_not_disjoint() {
        let mut p = MemProfile::new();
        p.record(site(0, 1, 0), cell(0, 0));
        // The other site never executed: no statistical evidence.
        assert!(!p.observed_disjoint(site(0, 1, 0), site(0, 9, 9)));
    }

    #[test]
    fn merge_unions_footprints() {
        let mut a = MemProfile::new();
        a.record(site(0, 1, 0), cell(0, 0));
        let mut b = MemProfile::new();
        b.record(site(0, 1, 0), cell(0, 7));
        a.merge(&b);
        assert_eq!(a.footprint(site(0, 1, 0)).unwrap().len(), 2);
        assert_eq!(a.site_count(), 1);
    }
}
