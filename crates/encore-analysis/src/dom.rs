//! Dominator tree computation (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! SEME regions are defined by header dominance, and natural-loop detection
//! needs back edges (`tail → head` with `head` dominating `tail`), so the
//! dominator tree underpins both region formation and loop analysis.

use crate::order::postorder;
use encore_ir::{BlockId, Function};

/// The dominator tree of a function's reachable CFG.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`;
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Map block → position in post-order (dense over reachable blocks).
    po_index: Vec<Option<u32>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `func`.
    pub fn compute(func: &Function) -> Self {
        let po = postorder(func);
        let n_blocks = func.blocks.len();
        let mut po_index: Vec<Option<u32>> = vec![None; n_blocks];
        for (i, b) in po.iter().enumerate() {
            po_index[b.index()] = Some(i as u32);
        }
        let entry = func.entry();

        // Predecessors restricted to reachable blocks.
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n_blocks];
        for &b in &po {
            for s in func.block(b).successors() {
                if po_index[s.index()].is_some() {
                    preds[s.index()].push(b);
                }
            }
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n_blocks];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>],
                         po_index: &[Option<u32>],
                         mut a: BlockId,
                         mut b: BlockId| {
            while a != b {
                let (pa, pb) = (po_index[a.index()].unwrap(), po_index[b.index()].unwrap());
                if pa < pb {
                    a = idom[a.index()].unwrap();
                } else {
                    b = idom[b.index()].unwrap();
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            // Reverse post-order, skipping the entry.
            for &b in po.iter().rev() {
                if b == entry {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &po_index, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        Self { idom, po_index, entry }
    }

    /// Immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom.get(b.index()).copied().flatten()
    }

    /// Returns `true` if `a` dominates `b` (reflexive: every block
    /// dominates itself). Unreachable blocks dominate nothing and are
    /// dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom.get(b.index()).copied().flatten().is_none() && b != self.entry {
            return false;
        }
        if self.po_index.get(a.index()).copied().flatten().is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Returns `true` if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        b == self.entry || self.idom.get(b.index()).copied().flatten().is_some()
    }

    /// The function entry this tree was computed for.
    pub fn entry(&self) -> BlockId {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{ModuleBuilder, Operand};

    fn diamond_fn() -> encore_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_else(p.into(), |_| {}, |_| {});
            f.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn diamond_dominators() {
        let m = diamond_fn();
        let f = &m.funcs[0];
        let dt = DomTree::compute(f);
        let (e, t, el, j) = (
            BlockId::new(0),
            BlockId::new(1),
            BlockId::new(2),
            BlockId::new(3),
        );
        assert_eq!(dt.idom(t), Some(e));
        assert_eq!(dt.idom(el), Some(e));
        assert_eq!(dt.idom(j), Some(e));
        assert!(dt.dominates(e, j));
        assert!(!dt.dominates(t, j));
        assert!(dt.dominates(j, j));
        assert_eq!(dt.idom(e), None);
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let i = f.mov(Operand::ImmI(0));
            f.while_loop(
                |f| Operand::Reg(f.bin(encore_ir::BinOp::Lt, i.into(), n.into())),
                |f| f.bin_to(i, encore_ir::BinOp::Add, i.into(), Operand::ImmI(1)),
            );
            f.ret(None);
        });
        let m = mb.finish();
        let f = &m.funcs[0];
        let dt = DomTree::compute(f);
        // Blocks: 0 entry, 1 header, 2 body, 3 exit.
        assert!(dt.dominates(BlockId::new(1), BlockId::new(2)));
        assert!(dt.dominates(BlockId::new(1), BlockId::new(3)));
        assert!(!dt.dominates(BlockId::new(2), BlockId::new(3)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            f.ret(None);
            let dead = f.add_block();
            f.switch_to(dead);
            f.ret(None);
        });
        let m = mb.finish();
        let dt = DomTree::compute(&m.funcs[0]);
        assert!(!dt.is_reachable(BlockId::new(1)));
        assert!(!dt.dominates(BlockId::new(0), BlockId::new(1)));
    }
}
