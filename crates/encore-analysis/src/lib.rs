//! # encore-analysis
//!
//! Classic compiler analyses that the Encore reproduction builds on
//! (Feng et al., MICRO 2011). The paper implements its passes inside
//! LLVM; this crate provides the equivalent foundations over
//! [`encore_ir`]:
//!
//! * [CFG traversal orders](order) — the post-order and reversed-graph
//!   post-order traversals of Eqs. 1–3;
//! * [dense bitsets](BitSet) and the [worklist solver](dataflow) — the
//!   engine the RS/GA/EA and liveness fixpoints run on;
//! * [dominator trees](DomTree) — SEME-ness and back-edge detection;
//! * [natural loops](LoopForest) — the hierarchical loop handling of
//!   §3.1.2, with irreducibility detection (footnote 3);
//! * [interval partitioning](IntervalHierarchy) — candidate region
//!   formation per §3.3, applied recursively;
//! * [register liveness](Liveness) — live-in checkpointing of §3.2;
//! * [alias oracles](AliasOracle) — the conservative
//!   [`StaticAlias`] and the optimistic Figure 7a bound
//!   [`OptimisticAlias`];
//! * [profiles](Profile) — block/edge counts for `Pmin` pruning and
//!   hot-path heuristics;
//! * [purity summaries](PuritySummary) — call-site treatment in region
//!   analysis.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alias;
mod bitset;
pub mod dataflow;
mod dom;
mod intervals;
mod liveness;
mod loops;
mod memprofile;
mod memsummary;
pub mod order;
mod profile;
mod purity;

pub use alias::{AliasMode, AliasOracle, AliasResult, OptimisticAlias, ProfiledAlias, StaticAlias};
pub use bitset::BitSet;
pub use dataflow::solve_worklist;
pub use memprofile::{MemProfile, SiteRef};
pub use memsummary::{AddrSet, FuncEffects, MemSummary, SummaryAddr};
pub use dom::DomTree;
pub use intervals::{Interval, IntervalHierarchy};
pub use liveness::Liveness;
pub use loops::{Loop, LoopForest};
pub use profile::{FuncProfile, Profile};
pub use purity::{Purity, PuritySummary};
