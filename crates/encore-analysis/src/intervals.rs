//! Cocke–Allen interval partitioning, applied recursively.
//!
//! Encore forms its candidate recovery regions from intervals (§3.3 of the
//! paper): an interval is a loop plus the acyclic "tails" dangling from it
//! (or just a SEME subgraph sharing a dominating header). Two properties
//! matter:
//!
//! 1. every interval is a SEME region — single entry (the header, which
//!    dominates all members), any number of exits;
//! 2. partitioning can be applied *recursively*: collapsing each interval
//!    to a node yields a derived graph whose intervals are coarser
//!    candidate regions.
//!
//! [`IntervalHierarchy`] materializes all levels until the derived graph
//! stops shrinking (a single node for reducible CFGs).

use encore_ir::{BlockId, Function};
use std::collections::{BTreeMap, BTreeSet};

/// One interval: a SEME set of blocks with a distinguished header.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Header block: the single entry, dominating all member blocks.
    pub header: BlockId,
    /// All member blocks, header included.
    pub blocks: BTreeSet<BlockId>,
}

impl Interval {
    /// Blocks with at least one successor outside the interval.
    pub fn exiting_blocks(&self, func: &Function) -> Vec<BlockId> {
        self.blocks
            .iter()
            .copied()
            .filter(|b| {
                func.block(*b)
                    .successors()
                    .iter()
                    .any(|s| !self.blocks.contains(s))
            })
            .collect()
    }
}

/// A small abstract directed graph used for derived-graph partitioning.
#[derive(Clone, Debug)]
struct AbsGraph {
    /// Successor lists per node.
    succs: Vec<Vec<usize>>,
    entry: usize,
}

impl AbsGraph {
    fn preds(&self) -> Vec<Vec<usize>> {
        let mut p = vec![Vec::new(); self.succs.len()];
        for (n, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                if !p[s].contains(&n) {
                    p[s].push(n);
                }
            }
        }
        p
    }

    /// First-order interval partition of this abstract graph.
    /// Returns (interval membership per node as interval index, headers).
    fn intervals(&self) -> Vec<Vec<usize>> {
        let preds = self.preds();
        let n = self.succs.len();
        let mut assigned = vec![false; n];
        let mut intervals: Vec<Vec<usize>> = Vec::new();
        let mut header_work: Vec<usize> = vec![self.entry];
        let mut queued = vec![false; n];
        queued[self.entry] = true;

        while let Some(h) = header_work.pop() {
            if assigned[h] {
                continue;
            }
            let mut members: Vec<usize> = vec![h];
            let mut member_set: BTreeSet<usize> = [h].into_iter().collect();
            assigned[h] = true;
            // Grow: add any node all of whose predecessors are inside.
            let mut changed = true;
            while changed {
                changed = false;
                let mut frontier: BTreeSet<usize> = BTreeSet::new();
                for &m in &members {
                    for &s in &self.succs[m] {
                        if !member_set.contains(&s) && !assigned[s] {
                            frontier.insert(s);
                        }
                    }
                }
                for cand in frontier {
                    let all_in = !preds[cand].is_empty()
                        && preds[cand].iter().all(|p| member_set.contains(p));
                    if all_in {
                        member_set.insert(cand);
                        members.push(cand);
                        assigned[cand] = true;
                        changed = true;
                    }
                }
            }
            // Any successor outside becomes a new header candidate.
            for &m in &members {
                for &s in &self.succs[m] {
                    if !member_set.contains(&s) && !queued[s] {
                        queued[s] = true;
                        header_work.push(s);
                    }
                }
            }
            // Keep header first.
            intervals.push(members);
        }
        intervals
    }

    /// Collapses each interval into a node; returns the derived graph and
    /// the member list per derived node.
    fn derive(&self) -> (AbsGraph, Vec<Vec<usize>>) {
        let intervals = self.intervals();
        let mut node_of = vec![usize::MAX; self.succs.len()];
        for (i, members) in intervals.iter().enumerate() {
            for &m in members {
                node_of[m] = i;
            }
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); intervals.len()];
        for (n, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                let (a, b) = (node_of[n], node_of[s]);
                if a != b && !succs[a].contains(&b) {
                    succs[a].push(b);
                }
            }
        }
        let entry = node_of[self.entry];
        (AbsGraph { succs, entry }, intervals)
    }
}

/// All levels of recursive interval partitioning of a function CFG.
///
/// Level 0 intervals partition the (reachable) basic blocks. Level *k*+1
/// intervals partition the level-*k* intervals. For reducible CFGs the
/// final level is a single interval covering the whole function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IntervalHierarchy {
    /// `levels[k]` is the interval partition at level `k`.
    pub levels: Vec<Vec<Interval>>,
    /// `parent[k][i]` is the index of the level-`k+1` interval containing
    /// level-`k` interval `i` (absent for the last level).
    pub parent: Vec<Vec<usize>>,
}

impl IntervalHierarchy {
    /// Computes the hierarchy for `func`, ignoring unreachable blocks.
    pub fn compute(func: &Function) -> Self {
        // Build the level-0 abstract graph over reachable blocks.
        let reach = crate::order::reachable_from(func, func.entry(), None);
        let blocks: Vec<BlockId> = reach.iter().copied().collect();
        let index_of: BTreeMap<BlockId, usize> =
            blocks.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let succs = blocks
            .iter()
            .map(|b| {
                func.block(*b)
                    .successors()
                    .into_iter()
                    .filter_map(|s| index_of.get(&s).copied())
                    .collect()
            })
            .collect();
        let mut graph = AbsGraph { succs, entry: index_of[&func.entry()] };

        // Node meaning at the current level: the set of blocks it covers
        // and its header block.
        let mut covers: Vec<BTreeSet<BlockId>> =
            blocks.iter().map(|b| [*b].into_iter().collect()).collect();
        let mut headers: Vec<BlockId> = blocks.clone();

        let mut levels: Vec<Vec<Interval>> = Vec::new();
        let mut parents: Vec<Vec<usize>> = Vec::new();

        loop {
            let (derived, members) = graph.derive();
            let level: Vec<Interval> = members
                .iter()
                .map(|ms| Interval {
                    header: headers[ms[0]],
                    blocks: ms
                        .iter()
                        .flat_map(|m| covers[*m].iter().copied())
                        .collect(),
                })
                .collect();

            // parent mapping from the previous level's intervals, if any.
            if let Some(prev) = levels.last() {
                let mut parent = vec![usize::MAX; prev.len()];
                for (di, ms) in members.iter().enumerate() {
                    for &m in ms {
                        parent[m] = di;
                    }
                }
                parents.push(parent);
            }

            let done = level.len() == levels.last().map(|l| l.len()).unwrap_or(usize::MAX)
                || level.len() == 1;
            let new_covers: Vec<BTreeSet<BlockId>> =
                level.iter().map(|iv| iv.blocks.clone()).collect();
            let new_headers: Vec<BlockId> = level.iter().map(|iv| iv.header).collect();
            levels.push(level);
            if done {
                break;
            }
            covers = new_covers;
            headers = new_headers;
            graph = derived;
        }

        Self { levels, parent: parents }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{BinOp, ModuleBuilder, Operand};

    fn hierarchy(m: &encore_ir::Module) -> IntervalHierarchy {
        IntervalHierarchy::compute(&m.funcs[0])
    }

    #[test]
    fn straight_line_is_single_interval() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let r = f.mov(Operand::ImmI(1));
            f.ret(Some(r.into()));
        });
        let h = hierarchy(&mb.finish());
        assert_eq!(h.levels[0].len(), 1);
        assert_eq!(h.levels[0][0].header, BlockId::new(0));
    }

    #[test]
    fn diamond_is_single_interval() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_else(p.into(), |_| {}, |_| {});
            f.ret(None);
        });
        let h = hierarchy(&mb.finish());
        // Acyclic graph: everything is absorbed into the entry interval.
        assert_eq!(h.levels[0].len(), 1);
        assert_eq!(h.levels[0][0].blocks.len(), 4);
    }

    #[test]
    fn loop_splits_into_intervals_then_merges() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let i = f.mov(Operand::ImmI(0));
            f.while_loop(
                |f| Operand::Reg(f.bin(BinOp::Lt, i.into(), n.into())),
                |f| f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1)),
            );
            f.ret(None);
        });
        let m = mb.finish();
        let h = hierarchy(&m);
        // Level 0: {entry} and {header, body, exit} (header has an outside
        // predecessor — the entry — plus the latch, so it starts a new
        // interval).
        assert!(h.levels[0].len() >= 2);
        // Final level covers the whole function in one interval.
        let last = h.levels.last().unwrap();
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].blocks.len(), m.funcs[0].blocks.len());
        assert_eq!(last[0].header, BlockId::new(0));
    }

    #[test]
    fn intervals_partition_blocks() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.if_then(i.into(), |f| {
                    f.for_range(Operand::ImmI(0), i.into(), |f, _j| {
                        f.bin_to(n, BinOp::Add, n.into(), Operand::ImmI(0));
                    });
                });
            });
            f.ret(None);
        });
        let m = mb.finish();
        let h = hierarchy(&m);
        for level in &h.levels {
            let mut seen: BTreeSet<BlockId> = BTreeSet::new();
            for iv in level {
                for b in &iv.blocks {
                    assert!(seen.insert(*b), "block {b} in two intervals");
                }
            }
            // Partition covers all reachable blocks (all blocks here).
            assert_eq!(seen.len(), m.funcs[0].blocks.len());
        }
    }

    #[test]
    fn headers_dominate_members() {
        use crate::dom::DomTree;
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.if_else(
                    i.into(),
                    |f| {
                        f.bin_to(n, BinOp::Add, n.into(), Operand::ImmI(1));
                    },
                    |f| {
                        f.bin_to(n, BinOp::Sub, n.into(), Operand::ImmI(1));
                    },
                );
            });
            f.ret(None);
        });
        let m = mb.finish();
        let f = &m.funcs[0];
        let dom = DomTree::compute(f);
        let h = IntervalHierarchy::compute(f);
        for level in &h.levels {
            for iv in level {
                for b in &iv.blocks {
                    assert!(
                        dom.dominates(iv.header, *b),
                        "header {} does not dominate member {}",
                        iv.header,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn parent_links_are_consistent() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let i = f.mov(Operand::ImmI(0));
            f.while_loop(
                |f| Operand::Reg(f.bin(BinOp::Lt, i.into(), n.into())),
                |f| f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1)),
            );
            f.ret(None);
        });
        let h = hierarchy(&mb.finish());
        for (k, parent) in h.parent.iter().enumerate() {
            assert_eq!(parent.len(), h.levels[k].len());
            for (i, &p) in parent.iter().enumerate() {
                let child = &h.levels[k][i];
                let par = &h.levels[k + 1][p];
                assert!(child.blocks.is_subset(&par.blocks));
            }
        }
    }
}
