//! Fine-grained tests of the recovery runtime semantics, using
//! hand-instrumented modules (explicit `SetRecovery` / `CheckpointMem` /
//! `CheckpointReg` / `Restore` placement) so each behavior is pinned
//! independently of the compiler pipeline:
//!
//! * checkpoints restore in reverse order;
//! * re-arming a region resets its log;
//! * recovery unwinds through pure callee frames;
//! * stale arming (detection after region exit) rolls back to the wrong
//!   region and is visible as state divergence;
//! * detection with no armed frame is unrecoverable.

use encore_core::{RegionInfo, RegionMap};
use encore_ir::{
    AddrExpr, BinOp, BlockId, FuncId, Inst, ModuleBuilder, Operand, RegionId,
};
use encore_sim::{run_function, FaultPlan, RunConfig, TrapKind, Value};

/// Builds a RegionMap with one entry per (func, header, recovery block).
fn map_of(entries: &[(FuncId, BlockId, BlockId)]) -> RegionMap {
    let mut map = RegionMap::default();
    for (i, (func, header, rb)) in entries.iter().enumerate() {
        map.regions.push(RegionInfo {
            id: RegionId::new(i as u32),
            func: *func,
            header: *header,
            blocks: vec![*header],
            recovery_block: Some(*rb),
            protected: true,
            idempotent: false,
            mem_ckpts: 0,
            reg_ckpts: 0,
            avg_activation_len: 0.0,
            exec_fraction: 0.0,
        });
    }
    map
}

#[test]
fn restore_applies_log_in_reverse_order() {
    // Region body: ckpt g[0]; g[0]=1; ckpt g[0]; g[0]=2; then jump to the
    // recovery block directly (simulating a detected fault): the restore
    // must bring g[0] back to its ORIGINAL value (0), not 1 — proving
    // reverse-order application.
    let mut mb = ModuleBuilder::new("m");
    let g = mb.global("g", 1);
    let fid = mb.function("f", 1, |f| {
        let rerun = f.param(0);
        let body = f.add_block();
        let recovery = f.add_block();
        let done = f.add_block();
        f.jump(body);
        f.switch_to(body);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        f.emit(Inst::CheckpointMem { addr: AddrExpr::global(g, 0) });
        f.store(AddrExpr::global(g, 0), Operand::ImmI(1));
        f.emit(Inst::CheckpointMem { addr: AddrExpr::global(g, 0) });
        f.store(AddrExpr::global(g, 0), Operand::ImmI(2));
        // First pass (rerun=1) jumps into the recovery block by hand.
        f.branch(rerun.into(), recovery, done);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        f.jump(done);
        f.switch_to(done);
        let v = f.load(AddrExpr::global(g, 0));
        f.ret(Some(v.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);
    // With the manual "rollback": g restored to 0.
    let r = run_function(&m, Some(&map), fid, &[Value::Int(1)], &RunConfig::default());
    assert_eq!(r.ret, Some(Value::Int(0)));
    // Without it: last store wins.
    let r2 = run_function(&m, Some(&map), fid, &[Value::Int(0)], &RunConfig::default());
    assert_eq!(r2.ret, Some(Value::Int(2)));
}

#[test]
fn rearming_resets_the_checkpoint_log() {
    // Two successive activations of a region whose body is the
    // accumulating WAR `g[0] += 10` (checkpointed). If re-arming failed
    // to reset the log, a rollback in the second activation would
    // restore all the way to the *first* activation's entry value (0)
    // and re-execution would finish at 10 instead of the golden 20.
    let mut mb = ModuleBuilder::new("m");
    let g = mb.global("g", 2);
    let fid = mb.function("f", 0, |f| {
        let hdr = f.add_block();
        let recovery = f.add_block();
        let exit = f.add_block();
        let i = f.mov(Operand::ImmI(0));
        f.jump(hdr);
        f.switch_to(hdr);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        f.emit(Inst::CheckpointReg { reg: i });
        f.emit(Inst::CheckpointMem { addr: AddrExpr::global(g, 0) });
        let cur = f.load(AddrExpr::global(g, 0));
        let next = f.bin(BinOp::Add, cur.into(), Operand::ImmI(10));
        f.store(AddrExpr::global(g, 0), next.into());
        f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1));
        let more = f.bin(BinOp::Lt, i.into(), Operand::ImmI(2));
        f.branch(more.into(), hdr, exit);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        f.jump(hdr);
        f.switch_to(exit);
        let out = f.load(AddrExpr::global(g, 0));
        f.ret(Some(out.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);

    let golden = run_function(&m, Some(&map), fid, &[], &RunConfig::default());
    assert_eq!(golden.ret, Some(Value::Int(20)));

    let mut rollbacks = 0;
    for inject_at in 0..golden.eligible_insts {
        let r = run_function(
            &m,
            Some(&map),
            fid,
            &[],
            &RunConfig {
                fault: Some(FaultPlan::bit_flip(inject_at, 1, 0)),
                ..Default::default()
            },
        );
        if !r.fault.rolled_back {
            continue;
        }
        rollbacks += 1;
        assert!(r.completed, "inject_at={inject_at}: {:?}", r.trap);
        assert!(
            r.observably_equal(&golden),
            "inject_at={inject_at}: stale checkpoint log (ret={:?}, golden 20)",
            r.ret
        );
    }
    assert!(rollbacks > 0, "no injection exercised the rollback path");
}

#[test]
fn recovery_unwinds_through_pure_callee_frames() {
    // A protected region calls a pure helper; the fault is injected and
    // detected inside the callee. Recovery must unwind to the caller's
    // armed frame and re-execute the call.
    let mut mb = ModuleBuilder::new("m");
    let g = mb.global("g", 1);
    let sq = mb.function("sq", 1, |f| {
        let p = f.param(0);
        let r = f.bin(BinOp::Mul, p.into(), p.into());
        f.ret(Some(r.into()));
    });
    let fid = mb.function("main", 0, |f| {
        let hdr = f.add_block();
        let recovery = f.add_block();
        let exit = f.add_block();
        f.jump(hdr);
        f.switch_to(hdr);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        let v = f.call(sq, &[Operand::ImmI(6)]);
        f.store(AddrExpr::global(g, 0), v.into());
        f.jump(exit);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        f.jump(hdr);
        f.switch_to(exit);
        let out = f.load(AddrExpr::global(g, 0));
        f.ret(Some(out.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);
    let golden = run_function(&m, Some(&map), fid, &[], &RunConfig::default());
    assert_eq!(golden.ret, Some(Value::Int(36)));

    let mut recovered_from_callee = false;
    for inject_at in 0..golden.eligible_insts {
        let r = run_function(
            &m,
            Some(&map),
            fid,
            &[],
            &RunConfig {
                fault: Some(FaultPlan::bit_flip(inject_at, 4, 0)),
                ..Default::default()
            },
        );
        if r.fault.rolled_back && r.completed {
            assert!(r.observably_equal(&golden), "inject_at={inject_at}");
            if r.fault.inject_site.map(|(f2, _)| f2) == Some(sq) {
                recovered_from_callee = true;
            }
        }
    }
    assert!(recovered_from_callee, "no fault was recovered from inside the callee");
}

#[test]
fn detection_without_armed_region_is_unrecoverable() {
    let mut mb = ModuleBuilder::new("m");
    let g = mb.global("g", 1);
    let fid = mb.function("f", 0, |f| {
        let v = f.bin(BinOp::Add, Operand::ImmI(1), Operand::ImmI(2));
        let w = f.bin(BinOp::Mul, v.into(), Operand::ImmI(3));
        f.store(AddrExpr::global(g, 0), w.into());
        f.ret(Some(w.into()));
    });
    let m = mb.finish();
    let r = run_function(
        &m,
        None,
        fid,
        &[],
        &RunConfig {
            fault: Some(FaultPlan::bit_flip(0, 0, 0)),
            ..Default::default()
        },
    );
    assert!(!r.completed);
    assert_eq!(r.trap.unwrap().kind, TrapKind::DetectedUnrecoverable);
    assert!(r.fault.detected);
    assert!(!r.fault.rolled_back);
}

#[test]
fn stale_arming_rolls_back_to_wrong_region() {
    // Region 0 (idempotent, armed) is followed by unprotected code with a
    // WAR; the fault strikes in the unprotected part. The runtime rolls
    // back to the stale region-0 recovery block — execution completes but
    // with corrupted state (the paper's "Not Recoverable" case, caught by
    // golden-state comparison).
    let mut mb = ModuleBuilder::new("m");
    let g = mb.global_init("g", 2, vec![5, 0]);
    let fid = mb.function("f", 0, |f| {
        let hdr = f.add_block();
        let recovery = f.add_block();
        let tail = f.add_block();
        f.jump(hdr);
        f.switch_to(hdr);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        let a = f.load(AddrExpr::global(g, 0));
        f.store(AddrExpr::global(g, 1), a.into());
        f.jump(tail);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        f.jump(hdr);
        f.switch_to(tail);
        // Unprotected WAR: g[0] = g[0] * 2, repeated twice. Re-executing
        // the tail after a stale rollback doubles g[0] more than twice.
        for _ in 0..2 {
            let v = f.load(AddrExpr::global(g, 0));
            let v2 = f.bin(BinOp::Mul, v.into(), Operand::ImmI(2));
            f.store(AddrExpr::global(g, 0), v2.into());
        }
        let out = f.load(AddrExpr::global(g, 0));
        f.ret(Some(out.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);
    let golden = run_function(&m, Some(&map), fid, &[], &RunConfig::default());
    assert_eq!(golden.ret, Some(Value::Int(20)));

    // Find a fault in the tail whose stale rollback corrupts state.
    let mut saw_corruption_after_rollback = false;
    for inject_at in 0..golden.eligible_insts {
        let r = run_function(
            &m,
            Some(&map),
            fid,
            &[],
            &RunConfig {
                fault: Some(FaultPlan::bit_flip(inject_at, 0, 0)),
                ..Default::default()
            },
        );
        if r.completed && r.fault.rolled_back && !r.observably_equal(&golden) {
            saw_corruption_after_rollback = true;
        }
    }
    assert!(
        saw_corruption_after_rollback,
        "stale-region rollback should corrupt at least one injection site"
    );
}

#[test]
fn checkpoint_reg_restores_live_in() {
    // Region overwrites a live-in register; the checkpoint must restore
    // it on rollback so re-execution sees the entry value.
    let mut mb = ModuleBuilder::new("m");
    let g = mb.global("g", 1);
    let fid = mb.function("f", 1, |f| {
        let p = f.param(0);
        let hdr = f.add_block();
        let recovery = f.add_block();
        let exit = f.add_block();
        f.jump(hdr);
        f.switch_to(hdr);
        f.emit(Inst::SetRecovery { region: RegionId::new(0) });
        f.emit(Inst::CheckpointReg { reg: p });
        // Clobber p, then store it.
        f.bin_to(p, BinOp::Add, p.into(), Operand::ImmI(100));
        f.store(AddrExpr::global(g, 0), p.into());
        f.jump(exit);
        f.switch_to(recovery);
        f.emit(Inst::Restore { region: RegionId::new(0) });
        f.jump(hdr);
        f.switch_to(exit);
        let out = f.load(AddrExpr::global(g, 0));
        f.ret(Some(out.into()));
    });
    let m = mb.finish();
    let map = map_of(&[(fid, BlockId::new(1), BlockId::new(2))]);
    let golden = run_function(&m, Some(&map), fid, &[Value::Int(7)], &RunConfig::default());
    assert_eq!(golden.ret, Some(Value::Int(107)));
    for inject_at in 0..golden.eligible_insts {
        let r = run_function(
            &m,
            Some(&map),
            fid,
            &[Value::Int(7)],
            &RunConfig {
                fault: Some(FaultPlan::bit_flip(inject_at, 3, 0)),
                ..Default::default()
            },
        );
        if r.fault.injected && r.fault.rolled_back {
            assert!(r.completed, "inject_at={inject_at}: {:?}", r.trap);
            assert!(
                r.observably_equal(&golden),
                "inject_at={inject_at}: live-in not restored (ret={:?})",
                r.ret
            );
        }
    }
}
