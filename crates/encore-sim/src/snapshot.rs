//! Periodic interpreter checkpoints for snapshot-and-resume SFI.
//!
//! A fault-injection run is bit-identical to the golden run up to its
//! injection point, so re-executing that prefix from dynamic instruction
//! 0 for every injection is pure waste — O(N·T) over a campaign. While
//! the golden run executes, the machine can capture a [`Snapshot`] of
//! its complete architectural state every `stride` dynamic instructions;
//! each injection then restores the nearest snapshot at-or-before its
//! injection point and pays only O(stride + suffix).
//!
//! ## What a snapshot must contain
//!
//! Restoring must be indistinguishable from having executed the prefix,
//! so a snapshot captures everything the remaining execution can
//! observe: the frame stack (registers, instruction pointers, armed
//! recovery states and their checkpoint logs), the full [`Memory`]
//! arena, the [`Externs`] environment (PRNG state, clock, output
//! channel), the allocation bookkeeping (`frame_seq`, `heap_seq`, the
//! per-site last-allocation table) and every counter the run reports or
//! keys behavior off — `dyn_insts` (fuel, detection deadlines),
//! `eligible_seen` (the injection ordinal), instrumentation and region
//! accounting, and the checkpoint-log high-water mark. All counters are
//! absolute, which is what makes resumption exact: a restored machine's
//! fuel check and detection deadline arithmetic see the same numbers a
//! from-scratch run would.
//!
//! Snapshots are immutable once captured and shared via [`Arc`], so a
//! campaign's worker threads restore from the same log without copying
//! it per worker.

use crate::externs::Externs;
use crate::interp::Frame;
use crate::memory::{Memory, PageHashes};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Per-interval memory access chunks: one `(object handle, cell index)`
/// list per inter-snapshot interval of the golden run.
pub(crate) type AccessChunks = Vec<Vec<(u32, u32)>>;

/// A sorted, deduplicated set of `(object handle, cell index)` pairs —
/// the representation of a golden suffix access summary. Lookup is a
/// binary search.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct CellSet {
    cells: Vec<(u32, u32)>,
}

impl CellSet {
    fn from_sorted(cells: Vec<(u32, u32)>) -> Self {
        debug_assert!(cells.windows(2).all(|w| w[0] < w[1]), "CellSet input must be sorted");
        Self { cells }
    }

    /// `true` when the set contains `(obj, idx)`.
    pub(crate) fn contains(&self, obj: u32, idx: u32) -> bool {
        self.cells.binary_search(&(obj, idx)).is_ok()
    }

    /// Number of cells in the set.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }
}

/// Folds per-interval access chunks into per-snapshot suffix summaries:
/// `chunks` has one entry per inter-snapshot interval (`n + 1` for `n`
/// snapshots — the final chunk covers capture to program end), and
/// `suffix[k] = ∪ chunks[k+1..]` — every cell the golden run touches
/// *after* snapshot `k`. Built backwards in one pass; snapshots whose
/// trailing chunk is empty share the next summary's allocation.
fn suffix_union(mut chunks: AccessChunks, snapshots: usize) -> Vec<Arc<CellSet>> {
    debug_assert_eq!(chunks.len(), snapshots + 1, "one chunk per interval");
    let mut acc: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut out: Vec<Arc<CellSet>> = Vec::with_capacity(snapshots);
    let mut prev: Option<Arc<CellSet>> = None;
    for k in (0..snapshots).rev() {
        let chunk = std::mem::take(&mut chunks[k + 1]);
        let summary = match (&prev, chunk.is_empty()) {
            (Some(p), true) => Arc::clone(p),
            _ => {
                acc.extend(chunk);
                Arc::new(CellSet::from_sorted(acc.iter().copied().collect()))
            }
        };
        prev = Some(Arc::clone(&summary));
        out.push(summary);
    }
    out.reverse();
    out
}

/// Complete interpreter state at one golden-run step boundary.
///
/// Captured by the campaign's golden run (see
/// [`SfiCampaign::prepare`](crate::SfiCampaign::prepare)); restored to
/// start an injection run mid-trace. Opaque outside the crate: the
/// public surface is the position accessors.
pub struct Snapshot {
    /// Position in the log's capture order (assigned by
    /// [`SnapshotLog::push`]) — the key the splice's incremental probe
    /// state uses to track which golden intervals it has absorbed.
    pub(crate) index: usize,
    /// Per-page FNV content hashes of `mem` (plus the NaN poison set),
    /// maintained incrementally by the golden run as it captures — the
    /// probe compares an injected run's dirty pages against these
    /// without reading a single golden cell.
    pub(crate) page_hashes: PageHashes,
    pub(crate) frames: Vec<Frame>,
    pub(crate) mem: Memory,
    pub(crate) externs: Externs,
    pub(crate) dyn_insts: u64,
    pub(crate) instr_dyn: u64,
    pub(crate) frame_seq: u32,
    pub(crate) heap_seq: u32,
    pub(crate) last_alloc_of_site: Vec<Option<usize>>,
    pub(crate) region_dyn: Vec<u64>,
    pub(crate) region_touched: Vec<bool>,
    pub(crate) eligible_seen: u64,
    pub(crate) ckpt_high_water: u64,
    /// Region activations (`SetRecovery` executions) retired before
    /// capture — resumed runs must keep numbering activations exactly
    /// where the golden prefix left off so the convergence splice can
    /// realign rolled-back runs against [`SnapshotLog::activation_dyn`].
    pub(crate) activations: u64,
}

impl Snapshot {
    /// Dynamic instruction count at capture.
    #[must_use]
    pub fn dyn_insts(&self) -> u64 {
        self.dyn_insts
    }

    /// Fault-eligible instructions retired before capture. A snapshot
    /// can seed any injection whose target ordinal is `>=` this.
    #[must_use]
    pub fn eligible_seen(&self) -> u64 {
        self.eligible_seen
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("dyn_insts", &self.dyn_insts)
            .field("eligible_seen", &self.eligible_seen)
            .field("frames", &self.frames.len())
            .finish_non_exhaustive()
    }
}

/// The ordered snapshot log of one golden run.
///
/// Snapshots appear in capture order, so both position counters are
/// non-decreasing and lookups are binary searches.
#[derive(Debug, Default)]
pub struct SnapshotLog {
    snaps: Vec<Arc<Snapshot>>,
    stride: u64,
    /// Dynamic instruction count at each golden `SetRecovery`
    /// execution, indexed by activation ordinal. The campaign's
    /// convergence splice uses it to realign a rolled-back run's
    /// dyn-count timeline with the golden run's.
    activation_dyn: Vec<u64>,
    /// Per snapshot `k`: every memory cell the golden run *reads* from
    /// capture `k` to program end. A divergence confined to cells
    /// outside this set can never influence the golden suffix's
    /// execution — the dead-diff and SDC splice rules' key input.
    suffix_reads: Vec<Arc<CellSet>>,
    /// Per snapshot `k`: every memory cell the golden run *writes* from
    /// capture `k` to program end. A dead (never-read) divergent cell
    /// in this set is overwritten by the replayed suffix and heals; one
    /// outside it persists to the final state.
    suffix_writes: Vec<Arc<CellSet>>,
    /// Per snapshot `k`: the sorted `(object, page)` pages the golden
    /// run wrote in the interval `(snapshot k-1, snapshot k]` (for
    /// `k = 0`, since the golden run began). The splice probe unions
    /// these to learn which golden pages changed between two probe
    /// targets — the golden half of the incremental-diff candidate set.
    interval_pages: Vec<Vec<(u32, u32)>>,
}

impl SnapshotLog {
    /// An empty log for a run captured at `stride` (0 = capture
    /// disabled).
    #[must_use]
    pub(crate) fn new(stride: u64) -> Self {
        Self {
            snaps: Vec::new(),
            stride,
            activation_dyn: Vec::new(),
            suffix_reads: Vec::new(),
            suffix_writes: Vec::new(),
            interval_pages: Vec::new(),
        }
    }

    /// Appends a capture together with the golden dirty pages drained
    /// since the previous capture (its interval page list).
    pub(crate) fn push(&mut self, mut snap: Snapshot, mut interval: Vec<(u32, u32)>) {
        debug_assert!(
            self.snaps.last().map(|s| s.eligible_seen <= snap.eligible_seen).unwrap_or(true),
            "snapshots must be captured in execution order"
        );
        snap.index = self.snaps.len();
        interval.sort_unstable();
        interval.dedup();
        self.interval_pages.push(interval);
        self.snaps.push(Arc::new(snap));
    }

    /// The capture stride this log was built with (0 = disabled).
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Number of snapshots captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// `true` when no snapshots were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// The latest snapshot whose eligible-instruction position is
    /// `<= ordinal` — the cheapest valid starting point for an
    /// injection at `ordinal`. `None` means start from scratch.
    #[must_use]
    pub fn nearest_at_or_before(&self, ordinal: u64) -> Option<&Arc<Snapshot>> {
        let n = self.snaps.partition_point(|s| s.eligible_seen <= ordinal);
        n.checked_sub(1).map(|i| &self.snaps[i])
    }

    pub(crate) fn set_activation_dyn(&mut self, log: Vec<u64>) {
        self.activation_dyn = log;
    }

    /// Golden dyn count at each `SetRecovery` execution, by activation
    /// ordinal.
    pub(crate) fn activation_dyn(&self) -> &[u64] {
        &self.activation_dyn
    }

    /// The `i`-th snapshot in capture order.
    pub(crate) fn get(&self, i: usize) -> Option<&Snapshot> {
        self.snaps.get(i).map(Arc::as_ref)
    }

    /// Index of the first snapshot captured at `dyn_insts >= d`.
    pub(crate) fn first_at_or_after_dyn(&self, d: u64) -> usize {
        self.snaps.partition_point(|s| s.dyn_insts < d)
    }

    /// Sorted golden-written pages in the interval ending at snapshot
    /// `i` (empty when `i` is out of range or lists were not built).
    pub(crate) fn interval_pages(&self, i: usize) -> &[(u32, u32)] {
        self.interval_pages.get(i).map_or(&[][..], Vec::as_slice)
    }

    /// Installs the golden suffix access summaries from per-interval
    /// chunks (one per inter-snapshot interval, plus the final
    /// capture-to-end chunk).
    pub(crate) fn set_suffix_summaries(
        &mut self,
        read_chunks: AccessChunks,
        write_chunks: AccessChunks,
    ) {
        self.suffix_reads = suffix_union(read_chunks, self.snaps.len());
        self.suffix_writes = suffix_union(write_chunks, self.snaps.len());
    }

    /// Cells the golden run reads after snapshot `i` (`None` when
    /// summaries were not built).
    pub(crate) fn suffix_reads(&self, i: usize) -> Option<&CellSet> {
        self.suffix_reads.get(i).map(Arc::as_ref)
    }

    /// Cells the golden run writes after snapshot `i` (`None` when
    /// summaries were not built).
    pub(crate) fn suffix_writes(&self, i: usize) -> Option<&CellSet> {
        self.suffix_writes.get(i).map(Arc::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function_with_snapshots, RunConfig};
    use crate::predecode::DecodedModule;
    use crate::value::Value;
    use encore_ir::{BinOp, ModuleBuilder, Operand};

    fn log_for(stride: u64) -> SnapshotLog {
        let mut mb = ModuleBuilder::new("m");
        mb.function("sum", 1, |f| {
            let n = f.param(0);
            let acc = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.bin_to(acc, BinOp::Add, acc.into(), i.into());
            });
            f.ret(Some(acc.into()));
        });
        let m = mb.finish();
        let fid = m.func_by_name("sum").unwrap();
        let code = DecodedModule::new(&m, None);
        let (r, log) = run_function_with_snapshots(
            &m,
            None,
            &code,
            fid,
            &[Value::Int(200)],
            &RunConfig::default(),
            stride,
        );
        assert!(r.completed);
        log
    }

    #[test]
    fn stride_zero_captures_nothing() {
        let log = log_for(0);
        assert!(log.is_empty());
        assert!(log.nearest_at_or_before(u64::MAX).is_none());
    }

    #[test]
    fn lookup_is_at_or_before() {
        let log = log_for(64);
        assert!(!log.is_empty());
        for probe in [0, 1, 100, 500, u64::MAX] {
            match log.nearest_at_or_before(probe) {
                Some(s) => assert!(s.eligible_seen() <= probe),
                None => assert!(log.snaps[0].eligible_seen() > probe),
            }
        }
        // The lookup returns the *latest* admissible snapshot.
        let last = log.snaps.last().unwrap();
        let hit = log.nearest_at_or_before(last.eligible_seen()).unwrap();
        assert_eq!(hit.eligible_seen(), last.eligible_seen());
    }

    #[test]
    fn suffix_union_accumulates_backwards() {
        // 2 snapshots → 3 interval chunks: [before s0], (s0, s1], (s1, end].
        let chunks = vec![vec![(0, 0)], vec![(0, 1), (1, 0)], vec![(0, 1), (2, 5)]];
        let sufs = suffix_union(chunks, 2);
        assert_eq!(sufs.len(), 2);
        // suffix[1] = last chunk only; the pre-s0 chunk never appears.
        assert!(sufs[1].contains(0, 1) && sufs[1].contains(2, 5));
        assert!(!sufs[1].contains(1, 0) && !sufs[1].contains(0, 0));
        // suffix[0] ⊇ suffix[1], plus the (s0, s1] chunk.
        assert!(sufs[0].contains(0, 1) && sufs[0].contains(2, 5) && sufs[0].contains(1, 0));
        assert!(!sufs[0].contains(0, 0));
        assert_eq!(sufs[0].len(), 3);
        // Empty trailing chunks share the downstream summary.
        let shared = suffix_union(vec![vec![], vec![], vec![(3, 3)]], 2);
        assert!(Arc::ptr_eq(&shared[0], &shared[1]));
    }

    #[test]
    fn snapshots_are_ordered() {
        let log = log_for(32);
        for pair in log.snaps.windows(2) {
            assert!(pair[0].dyn_insts() < pair[1].dyn_insts());
            assert!(pair[0].eligible_seen() <= pair[1].eligible_seen());
        }
    }
}
