//! Hardware masking model.
//!
//! The paper quantified hardware masking with Monte-Carlo SFI on a
//! Verilog model of an ARM926 (≈91 % of raw transient faults never
//! become architecturally visible). We cannot re-run gate-level
//! injection, so the masking rate is a model parameter (defaulting to
//! the paper's measurement) composed with the software-level SFI
//! statistics from [`crate::sfi`].

use crate::sfi::SfiStats;

/// A Bernoulli hardware-masking model.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MaskingModel {
    /// Probability that a raw fault is masked before becoming
    /// architecturally visible.
    pub rate: f64,
}

impl MaskingModel {
    /// The paper's ARM926 measurement.
    pub fn arm926() -> Self {
        Self { rate: 0.91 }
    }

    /// Creates a model with an explicit rate in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "masking rate must be in [0,1]");
        Self { rate }
    }

    /// Composes hardware masking with software SFI statistics into the
    /// Figure 8 stack (fractions of *all* raw faults).
    pub fn compose(&self, stats: &SfiStats) -> ComposedCoverage {
        let visible = 1.0 - self.rate;
        let n = stats.injections.max(1) as f64;
        ComposedCoverage {
            masked: self.rate + visible * stats.benign as f64 / n,
            recovered: visible * stats.recovered as f64 / n,
            not_recoverable: visible
                * (stats.silent_corruption
                    + stats.detected_unrecoverable
                    + stats.crashed
                    + stats.hung) as f64
                / n,
        }
    }
}

impl Default for MaskingModel {
    fn default() -> Self {
        Self::arm926()
    }
}

/// Full-system composition of masking and SFI results.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ComposedCoverage {
    /// Faults with no architectural consequence (hardware masking plus
    /// software-benign outcomes).
    pub masked: f64,
    /// Faults recovered by Encore rollback.
    pub recovered: f64,
    /// Faults leading to failure.
    pub not_recoverable: f64,
}

impl ComposedCoverage {
    /// Total coverage (the paper's "97 % of transient faults").
    pub fn total(&self) -> f64 {
        self.masked + self.recovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(benign: usize, recovered: usize, bad: usize) -> SfiStats {
        SfiStats {
            injections: benign + recovered + bad,
            benign,
            recovered,
            silent_corruption: bad,
            ..Default::default()
        }
    }

    #[test]
    fn composition_sums_to_one() {
        let m = MaskingModel::arm926();
        let c = m.compose(&stats(20, 70, 10));
        let sum = c.masked + c.recovered + c.not_recoverable;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_masking_leaves_nothing_visible() {
        let m = MaskingModel::new(1.0);
        let c = m.compose(&stats(0, 0, 100));
        assert!((c.total() - 1.0).abs() < 1e-12);
        assert_eq!(c.not_recoverable, 0.0);
    }

    #[test]
    fn paper_shape() {
        // 91% masking and strong software recovery yields >96% total.
        let m = MaskingModel::arm926();
        let c = m.compose(&stats(10, 75, 15));
        assert!(c.total() > 0.96, "total = {}", c.total());
    }

    #[test]
    #[should_panic(expected = "masking rate")]
    fn invalid_rate_panics() {
        let _ = MaskingModel::new(1.5);
    }
}
