//! Monte-Carlo statistical fault injection (SFI).
//!
//! The paper's full-system evaluation (§4, §5.4) composes an SFI-derived
//! hardware masking rate with the Encore recoverability model. This
//! module provides the software half end-to-end: it injects real
//! transient faults — sampled by a pluggable [`FaultModel`] (bit flips,
//! multi-bit bursts, address corruption, wrong-edge control flow, power
//! failure; see [`FaultModelKind`]) — into the interpreted program,
//! models detection latency, lets the Encore runtime roll back, and
//! classifies each run against the golden (fault-free) execution.
//!
//! # Parallel, reproducible campaigns
//!
//! Each injection's [`FaultPlan`] is a pure function of the campaign
//! seed and the injection index ([`SfiConfig::plan_for`], which hands a
//! [`SplitMix64::for_index`] stream to the configured model's
//! [`FaultModel::sample`]), never of a shared generator's mutable
//! state. [`SfiCampaign::run`] therefore shards the index space across
//! `std::thread::scope` workers and still produces **bit-identical**
//! [`SfiStats`] for any worker count — and any single injection can be
//! replayed in isolation from its `(seed, index)` pair alone:
//!
//! ```text
//! let plan = campaign.plan_for_index(&config, index);
//! let outcome = campaign.run_one(plan);
//! ```

use crate::fault::{FaultModel, FaultModelKind, FaultPlan};
use crate::memory::ProbeCost;
use crate::interp::{
    run_function_with_snapshots, Machine, RunConfig, RunResult, SpliceRule, SpliceRun, Trap,
    TrapKind,
};
use crate::predecode::DecodedModule;
use crate::rng::SplitMix64;
use crate::snapshot::SnapshotLog;
use crate::value::Value;
use encore_core::RegionMap;
use encore_ir::{FuncId, Module};

/// Classification of one fault-injection run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultOutcome {
    /// The run completed with golden-equal observable state and no
    /// rollback: the flipped value was architecturally dead or
    /// overwritten (software-level masking).
    Benign,
    /// A rollback happened and the final state matches the golden run:
    /// Encore recovered the fault.
    Recovered,
    /// The run completed but observable state differs from golden:
    /// silent data corruption (the fault escaped detection, or rollback
    /// targeted the wrong region).
    SilentCorruption,
    /// The fault was detected but no recovery region was armed.
    DetectedUnrecoverable,
    /// The run died on a trap after recovery had already been consumed
    /// (or with no fault live).
    Crashed,
    /// The run exceeded its fuel budget (fault-induced livelock).
    Hung,
}

impl FaultOutcome {
    /// Every outcome, in reporting order.
    pub const ALL: [FaultOutcome; 6] = [
        FaultOutcome::Benign,
        FaultOutcome::Recovered,
        FaultOutcome::SilentCorruption,
        FaultOutcome::DetectedUnrecoverable,
        FaultOutcome::Crashed,
        FaultOutcome::Hung,
    ];

    /// Dense index of this outcome in [`FaultOutcome::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultOutcome::Benign => 0,
            FaultOutcome::Recovered => 1,
            FaultOutcome::SilentCorruption => 2,
            FaultOutcome::DetectedUnrecoverable => 3,
            FaultOutcome::Crashed => 4,
            FaultOutcome::Hung => 5,
        }
    }

    /// Stable snake_case label (used as JSON keys in campaign reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultOutcome::Benign => "benign",
            FaultOutcome::Recovered => "recovered",
            FaultOutcome::SilentCorruption => "silent_corruption",
            FaultOutcome::DetectedUnrecoverable => "detected_unrecoverable",
            FaultOutcome::Crashed => "crashed",
            FaultOutcome::Hung => "hung",
        }
    }
}

/// SFI campaign parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SfiConfig {
    /// Number of fault injections.
    pub injections: usize,
    /// Maximum detection latency (`Dmax`); latency is sampled uniformly
    /// from `[0, Dmax]`.
    pub dmax: u64,
    /// RNG seed. Campaigns are reproducible: the same seed yields
    /// bit-identical [`SfiStats`] for **any** worker count, and
    /// injection `i` can be replayed alone from `(seed, i)`.
    pub seed: u64,
    /// Fuel multiplier over the golden run's dynamic instruction count
    /// (faulted runs may loop longer before detection).
    pub fuel_factor: u64,
    /// Worker threads for [`SfiCampaign::run`]; `0` (the default) uses
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Capture a golden-run checkpoint every `snapshot_stride` dynamic
    /// instructions during [`SfiCampaign::prepare`]; each injection then
    /// resumes from the nearest checkpoint at-or-before its injection
    /// point instead of re-executing the fault-free prefix from scratch.
    /// `0` disables snapshots (every injection runs from scratch).
    /// Outcomes are bit-identical at every stride. The default (256) is
    /// tuned for the workload suite's golden runs (~10⁴–10⁵ dynamic
    /// instructions): dense enough that the replayed prefix is noise,
    /// sparse enough that capture stays a small fraction of the golden
    /// run.
    pub snapshot_stride: u64,
    /// Enable the divergence splice: classify rolled-back runs early
    /// via the [`SpliceRule`] early-exit rules instead of executing
    /// their full suffix. On by default; outcomes and latency
    /// histograms are bit-identical either way (the rules only certify
    /// outcomes full execution would reach), so `false` exists as an
    /// escape hatch and differential-testing reference.
    ///
    /// Plans whose [`FaultAction`](crate::FaultAction) is not
    /// splice-certifiable run their full suffix regardless of this
    /// flag, so enabling it is always sound.
    pub splice: bool,
    /// Use the O(dirty) incremental state compare for splice probes:
    /// diff only the pages the injected run (or the golden timeline
    /// between probe points) has touched, pruning clean pages by
    /// precomputed per-page golden hashes. On by default; reports are
    /// bit-identical either way (both paths compare the same state by
    /// the same `PartialEq` semantics), so `false` exists as an escape
    /// hatch and differential-testing reference, mirroring
    /// [`SfiConfig::splice`].
    pub incremental_diff: bool,
    /// The fault model plans are sampled from. Defaults to the classic
    /// single-bit flip ([`FaultModelKind::BitFlip`]), which reproduces
    /// pre-taxonomy campaigns bit-for-bit.
    pub model: FaultModelKind,
}

impl Default for SfiConfig {
    fn default() -> Self {
        Self {
            injections: 200,
            dmax: 100,
            seed: 0xE7_C04E,
            fuel_factor: 4,
            workers: 0,
            snapshot_stride: 256,
            splice: true,
            incremental_diff: true,
            model: FaultModelKind::BitFlip,
        }
    }
}

impl SfiConfig {
    /// The worker count [`SfiCampaign::run`] will actually use.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        let n = if self.workers == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            self.workers
        };
        // More workers than injections just spawns idle threads.
        n.clamp(1, self.injections.max(1))
    }

    /// The fault plan of injection `index`, given the golden run's
    /// eligible-instruction count: a fresh [`SplitMix64::for_index`]
    /// stream handed to the configured model's [`FaultModel::sample`].
    ///
    /// A pure function of `(self.seed, self.model, index)` — thread-
    /// and order-independent by construction.
    ///
    /// # Panics
    ///
    /// Panics when `eligible_insts` is zero: an empty golden run has no
    /// injection sites to sample. [`SfiCampaign::prepare`] rejects such
    /// workloads with [`GoldenRunError::NoEligibleInstructions`] before
    /// any plan is drawn, so campaign paths never hit this.
    #[must_use]
    pub fn plan_for(&self, index: u64, eligible_insts: u64) -> FaultPlan {
        let mut rng = SplitMix64::for_index(self.seed, index);
        let model: &'static dyn FaultModel = self.model.model();
        model.sample(&mut rng, eligible_insts, self.dmax)
    }
}

/// Aggregate campaign results.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SfiStats {
    /// Total injections performed.
    pub injections: usize,
    /// Benign (software-masked) outcomes.
    pub benign: usize,
    /// Successful Encore recoveries.
    pub recovered: usize,
    /// Silent data corruptions.
    pub silent_corruption: usize,
    /// Detected-but-unrecoverable outcomes.
    pub detected_unrecoverable: usize,
    /// Crashes.
    pub crashed: usize,
    /// Hangs.
    pub hung: usize,
}

impl SfiStats {
    fn record(&mut self, outcome: FaultOutcome) {
        self.injections += 1;
        match outcome {
            FaultOutcome::Benign => self.benign += 1,
            FaultOutcome::Recovered => self.recovered += 1,
            FaultOutcome::SilentCorruption => self.silent_corruption += 1,
            FaultOutcome::DetectedUnrecoverable => self.detected_unrecoverable += 1,
            FaultOutcome::Crashed => self.crashed += 1,
            FaultOutcome::Hung => self.hung += 1,
        }
    }

    /// The count recorded for `outcome`.
    #[must_use]
    pub fn count(&self, outcome: FaultOutcome) -> usize {
        match outcome {
            FaultOutcome::Benign => self.benign,
            FaultOutcome::Recovered => self.recovered,
            FaultOutcome::SilentCorruption => self.silent_corruption,
            FaultOutcome::DetectedUnrecoverable => self.detected_unrecoverable,
            FaultOutcome::Crashed => self.crashed,
            FaultOutcome::Hung => self.hung,
        }
    }

    /// Adds another shard's counts into this one.
    pub fn merge(&mut self, other: &SfiStats) {
        self.injections += other.injections;
        self.benign += other.benign;
        self.recovered += other.recovered;
        self.silent_corruption += other.silent_corruption;
        self.detected_unrecoverable += other.detected_unrecoverable;
        self.crashed += other.crashed;
        self.hung += other.hung;
    }

    /// Fraction of injections that ended with correct architectural
    /// state (benign or recovered).
    pub fn safe_fraction(&self) -> f64 {
        if self.injections == 0 {
            return 0.0;
        }
        (self.benign + self.recovered) as f64 / self.injections as f64
    }

    /// Fraction of injections Encore actively recovered.
    pub fn recovered_fraction(&self) -> f64 {
        if self.injections == 0 {
            return 0.0;
        }
        self.recovered as f64 / self.injections as f64
    }

    /// Fraction ending in any failure (SDC, unrecoverable, crash, hang).
    pub fn failure_fraction(&self) -> f64 {
        1.0 - self.safe_fraction()
    }
}

/// Number of bins in a [`LatencyHistogram`].
pub const LATENCY_BINS: usize = 16;

/// Histogram of sampled detection latencies over `[0, Dmax]`, in
/// [`LATENCY_BINS`] equal-width bins.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyHistogram {
    /// Upper latency bound the bins span (the campaign's `Dmax`).
    pub dmax: u64,
    /// Injection counts per bin.
    pub bins: [u64; LATENCY_BINS],
}

impl LatencyHistogram {
    /// An empty histogram over `[0, dmax]`.
    #[must_use]
    pub fn new(dmax: u64) -> Self {
        Self { dmax, bins: [0; LATENCY_BINS] }
    }

    /// The bin index a latency falls into.
    #[must_use]
    pub fn bin_of(&self, latency: u64) -> usize {
        if self.dmax == 0 {
            return 0;
        }
        // Spread [0, dmax] over the bins; clamp covers latency == dmax.
        ((latency as u128 * LATENCY_BINS as u128 / (self.dmax as u128 + 1)) as usize)
            .min(LATENCY_BINS - 1)
    }

    /// Records one sampled latency.
    pub fn record(&mut self, latency: u64) {
        self.bins[self.bin_of(latency)] += 1;
    }

    /// Inclusive-exclusive latency range `[lo, hi)` covered by `bin`
    /// (the last bin's `hi` is `dmax + 1`).
    #[must_use]
    pub fn bin_range(&self, bin: usize) -> (u64, u64) {
        let width = self.dmax as u128 + 1;
        let lo = (bin as u128 * width / LATENCY_BINS as u128) as u64;
        let hi = ((bin as u128 + 1) * width / LATENCY_BINS as u128) as u64;
        (lo, hi.max(lo + 1))
    }

    /// Total count across all bins.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Adds another shard's bins into this one.
    ///
    /// # Panics
    ///
    /// Panics (in release builds too) when the histograms span
    /// different `dmax` ranges — their bins cover different latency
    /// intervals, so summing them would silently produce a histogram
    /// that is correct for neither. Campaign shards all inherit the
    /// campaign's `dmax` (the single call site,
    /// [`CampaignReport::merge`], guarantees this); merging reports
    /// from differently-configured campaigns is a caller bug this
    /// assert turns into a loud failure instead of corrupt data.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.dmax, other.dmax, "merging histograms over different Dmax");
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
    }
}

/// How one spliced run was certified: the rule that fired and the
/// golden-suffix work it avoided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpliceEngagement {
    /// The early-exit rule that certified the outcome.
    pub rule: SpliceRule,
    /// Golden-suffix dynamic instructions the run did not execute.
    pub dyn_insts_saved: u64,
}

/// Per-rule splice engagement counts over a campaign — the observable
/// breakdown of where the divergence splice's speedup comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpliceStats {
    /// Rule (a) hits: the diff emptied (bit-exact reconvergence).
    pub converged: usize,
    /// Rule (b) hits: dead residual diff, outcome `Recovered`.
    pub dead_diff: usize,
    /// Rule (c) hits: dead residual diff with diverged observables,
    /// outcome `SilentCorruption`.
    pub sdc: usize,
    /// Total golden-suffix dynamic instructions not executed across all
    /// spliced runs.
    pub dyn_insts_saved: u64,
    /// Aggregate probe work: how much state-compare effort the splice
    /// spent earning the savings above. Diagnostic only — its
    /// `PartialEq` always holds, so reports stay bit-identical between
    /// the incremental and full-scan compare paths even though their
    /// compare footprints differ.
    pub cost: ProbeCost,
}

impl SpliceStats {
    /// Records one engagement.
    pub fn record(&mut self, e: SpliceEngagement) {
        match e.rule {
            SpliceRule::Converged => self.converged += 1,
            SpliceRule::DeadDiff => self.dead_diff += 1,
            SpliceRule::Sdc => self.sdc += 1,
        }
        self.dyn_insts_saved += e.dyn_insts_saved;
    }

    /// The count recorded for `rule`.
    #[must_use]
    pub fn count(&self, rule: SpliceRule) -> usize {
        match rule {
            SpliceRule::Converged => self.converged,
            SpliceRule::DeadDiff => self.dead_diff,
            SpliceRule::Sdc => self.sdc,
        }
    }

    /// Runs spliced by any rule.
    #[must_use]
    pub fn total(&self) -> usize {
        self.converged + self.dead_diff + self.sdc
    }

    /// Adds another shard's counts into this one.
    pub fn merge(&mut self, other: &SpliceStats) {
        self.converged += other.converged;
        self.dead_diff += other.dead_diff;
        self.sdc += other.sdc;
        self.dyn_insts_saved += other.dyn_insts_saved;
        self.cost.merge(&other.cost);
    }
}

/// Full campaign result: aggregate stats plus, per outcome class, the
/// histogram of the detection latencies that produced it — the raw
/// material for cross-validating Eq. 6's latency model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CampaignReport {
    /// The configuration the campaign ran with.
    pub config: SfiConfig,
    /// Aggregate outcome counts.
    pub stats: SfiStats,
    /// Detection-latency histogram per outcome, indexed by
    /// [`FaultOutcome::index`].
    pub latency: [LatencyHistogram; FaultOutcome::ALL.len()],
    /// Divergence-splice engagement breakdown. The only report field
    /// splicing is allowed to change: `stats` and `latency` are
    /// bit-identical with splicing on or off.
    pub splice: SpliceStats,
}

impl CampaignReport {
    /// An empty report for `config`.
    #[must_use]
    pub fn new(config: SfiConfig) -> Self {
        Self {
            config,
            stats: SfiStats::default(),
            latency: [LatencyHistogram::new(config.dmax); FaultOutcome::ALL.len()],
            splice: SpliceStats::default(),
        }
    }

    /// Records one classified injection.
    pub fn record(&mut self, plan: FaultPlan, outcome: FaultOutcome) {
        self.stats.record(outcome);
        self.latency[outcome.index()].record(plan.detect_latency);
    }

    /// The latency histogram for one outcome class.
    #[must_use]
    pub fn latency_of(&self, outcome: FaultOutcome) -> &LatencyHistogram {
        &self.latency[outcome.index()]
    }

    /// The fault model this report's plans were sampled from — the row
    /// key when reports from [`SfiCampaign::run_models`] are laid out
    /// as a per-model outcome table.
    #[must_use]
    pub fn model(&self) -> FaultModelKind {
        self.config.model
    }

    /// Adds another shard's counts into this one.
    pub fn merge(&mut self, other: &CampaignReport) {
        self.stats.merge(&other.stats);
        for (a, b) in self.latency.iter_mut().zip(other.latency.iter()) {
            a.merge(b);
        }
        self.splice.merge(&other.splice);
    }
}

/// The golden (fault-free) run cannot serve as a reference execution
/// to inject faults against.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GoldenRunError {
    /// The golden run trapped — the workload must be fault-free before
    /// injecting faults into it.
    Trapped(Trap),
    /// The golden run completed without executing a single
    /// fault-eligible instruction, so there is no injection site to
    /// sample. (Previously this was silently coerced to a one-site
    /// space, injecting every plan at a nonexistent ordinal 0.)
    NoEligibleInstructions,
}

impl std::fmt::Display for GoldenRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GoldenRunError::Trapped(trap) => {
                write!(f, "golden run trapped before any fault was injected: {trap}")
            }
            GoldenRunError::NoEligibleInstructions => {
                write!(f, "golden run executed no fault-eligible instructions")
            }
        }
    }
}

impl std::error::Error for GoldenRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GoldenRunError::Trapped(trap) => Some(trap),
            GoldenRunError::NoEligibleInstructions => None,
        }
    }
}

/// A reusable fault-injection campaign over one entry point.
///
/// [`SfiCampaign::prepare`] pre-decodes the module, runs the golden
/// execution once and captures periodic [`Snapshot`](crate::Snapshot)s
/// of it; every injection then resumes mid-trace instead of replaying
/// the fault-free prefix, making a campaign of `N` injections over a
/// trace of length `T` cost `O(N·(stride + suffix))` instead of
/// `O(N·T)`.
#[derive(Debug)]
pub struct SfiCampaign<'a> {
    module: &'a Module,
    map: Option<&'a RegionMap>,
    entry: FuncId,
    args: Vec<Value>,
    code: DecodedModule<'a>,
    golden: RunResult,
    snapshots: SnapshotLog,
    fuel: u64,
}

impl<'a> SfiCampaign<'a> {
    /// Prepares a campaign: pre-decodes the module, runs the golden
    /// execution and captures checkpoints every
    /// [`SfiConfig::snapshot_stride`] dynamic instructions.
    ///
    /// # Errors
    ///
    /// Returns [`GoldenRunError::Trapped`] if the golden run itself
    /// traps — the workload must be fault-free before injecting faults
    /// into it — and [`GoldenRunError::NoEligibleInstructions`] if it
    /// completes without a single injection site (the sample space
    /// [`FaultModel::sample`] draws from would be empty).
    pub fn prepare(
        module: &'a Module,
        map: Option<&'a RegionMap>,
        entry: FuncId,
        args: &[Value],
        config: &SfiConfig,
    ) -> Result<Self, GoldenRunError> {
        let code = DecodedModule::new(module, map);
        let (golden, snapshots) = run_function_with_snapshots(
            module,
            map,
            &code,
            entry,
            args,
            &RunConfig::default(),
            config.snapshot_stride,
        );
        if let Some(trap) = golden.trap.clone() {
            return Err(GoldenRunError::Trapped(trap));
        }
        if golden.eligible_insts == 0 {
            return Err(GoldenRunError::NoEligibleInstructions);
        }
        let fuel = golden.dyn_insts.saturating_mul(config.fuel_factor).max(100_000);
        Ok(Self { module, map, entry, args: args.to_vec(), code, golden, snapshots, fuel })
    }

    /// The golden run.
    pub fn golden(&self) -> &RunResult {
        &self.golden
    }

    /// The checkpoint log captured during the golden run.
    pub fn snapshots(&self) -> &SnapshotLog {
        &self.snapshots
    }

    /// The plan injection `index` of a campaign under `config` would
    /// run — use with [`SfiCampaign::run_one`] to replay a single
    /// injection from its `(seed, index)` pair.
    #[must_use]
    pub fn plan_for_index(&self, config: &SfiConfig, index: u64) -> FaultPlan {
        config.plan_for(index, self.golden.eligible_insts)
    }

    /// Runs one injection described by `plan` and classifies it,
    /// resuming from the nearest golden checkpoint at-or-before the
    /// injection point. A fault-free prefix is bit-identical to the
    /// golden run, so restoring a snapshot with
    /// `eligible_seen <= plan.inject_at` reproduces exactly the state a
    /// from-scratch run would reach there; every counter a snapshot
    /// carries is absolute, so fuel and detection-latency arithmetic
    /// carry over unchanged.
    pub fn run_one(&self, plan: FaultPlan) -> FaultOutcome {
        self.run_one_detailed(plan, true).0
    }

    /// [`SfiCampaign::run_one`] plus the splice engagement, when a
    /// [`SpliceRule`] certified the outcome instead of the run
    /// executing its full suffix. Pass `splice: false` to force full
    /// execution (the differential reference — the outcome must be
    /// identical either way).
    pub fn run_one_detailed(
        &self,
        plan: FaultPlan,
        splice: bool,
    ) -> (FaultOutcome, Option<SpliceEngagement>) {
        let (outcome, engagement, _) = self.run_one_impl(plan, splice, true);
        (outcome, engagement)
    }

    /// [`SfiCampaign::run_one_detailed`] plus the probe-cost counters,
    /// with the compare path selectable: `incremental: false` forces
    /// every probe through the full-scan `diff_cells` reference.
    fn run_one_impl(
        &self,
        plan: FaultPlan,
        splice: bool,
        incremental: bool,
    ) -> (FaultOutcome, Option<SpliceEngagement>, ProbeCost) {
        let config = self.injection_config(plan);
        let mut m = match self.snapshots.nearest_at_or_before(plan.inject_at) {
            Some(snap) => {
                Machine::from_snapshot(self.module, &self.code, self.map, snap, &config)
            }
            None => self.fresh_machine(&config),
        };
        // The splice gate is per-action, not per-campaign: a plan whose
        // action the splice argument does not cover runs its full
        // suffix even when the campaign enables splicing, so model
        // soundness claims (`FaultModel::splice_sound`) are enforced
        // here rather than trusted. See `FaultAction::splice_certifiable`.
        if !splice || !plan.action.splice_certifiable() || self.snapshots.is_empty() {
            let trap = m.run_to_end();
            return (self.classify_machine(&m, trap), None, m.probe_cost());
        }
        // With golden snapshots on hand, a rolled-back run whose diff
        // against the aligned golden timeline becomes provably inert
        // can stop early: rule (a)/(b) hits are the `Recovered` arm of
        // `classify_machine` (golden-equal final state after a
        // rollback) and rule (c) hits are its `SilentCorruption` arm —
        // each certified without simulating the suffix.
        match m.run_to_end_or_splice(&self.snapshots, self.golden.dyn_insts, incremental) {
            SpliceRun::Done(trap) => (self.classify_machine(&m, trap), None, m.probe_cost()),
            SpliceRun::Spliced(rule, dyn_insts_saved) => {
                let outcome = match rule {
                    SpliceRule::Converged | SpliceRule::DeadDiff => FaultOutcome::Recovered,
                    SpliceRule::Sdc => FaultOutcome::SilentCorruption,
                };
                (outcome, Some(SpliceEngagement { rule, dyn_insts_saved }), m.probe_cost())
            }
        }
    }

    /// Runs one injection from dynamic instruction 0, ignoring the
    /// snapshot log. Retained as the differential reference for
    /// [`SfiCampaign::run_one`]: both paths must classify every plan
    /// identically.
    pub fn run_one_from_scratch(&self, plan: FaultPlan) -> FaultOutcome {
        let config = self.injection_config(plan);
        let mut m = self.fresh_machine(&config);
        let trap = m.run_to_end();
        self.classify_machine(&m, trap)
    }

    fn injection_config(&self, plan: FaultPlan) -> RunConfig {
        RunConfig { fuel: self.fuel, fault: Some(plan), ..Default::default() }
    }

    fn fresh_machine(&self, config: &RunConfig) -> Machine<'a, '_> {
        Machine::start(self.module, &self.code, self.map, self.entry, &self.args, config)
    }

    /// Classifies a finished machine against the golden run without
    /// materializing a [`RunResult`]: return value, output channel and
    /// global memory are compared by borrow, so the per-injection
    /// classification path allocates nothing.
    fn classify_machine(&self, m: &Machine<'_, '_>, trap: Option<Trap>) -> FaultOutcome {
        if let Some(trap) = trap {
            return match trap.kind {
                TrapKind::DetectedUnrecoverable => FaultOutcome::DetectedUnrecoverable,
                TrapKind::FuelExhausted => FaultOutcome::Hung,
                _ => FaultOutcome::Crashed,
            };
        }
        let matches = m.final_ret() == self.golden.ret
            && m.output() == &self.golden.output[..]
            && m.mem().globals_equal(&self.golden.globals);
        match (matches, m.telemetry().rolled_back) {
            (true, true) => FaultOutcome::Recovered,
            (true, false) => FaultOutcome::Benign,
            (false, _) => FaultOutcome::SilentCorruption,
        }
    }

    /// Runs the injections in `[lo, hi)` sequentially into a report.
    fn run_shard(&self, config: &SfiConfig, space: u64, lo: u64, hi: u64) -> CampaignReport {
        let mut report = CampaignReport::new(*config);
        for index in lo..hi {
            let plan = config.plan_for(index, space);
            let (outcome, engagement, cost) =
                self.run_one_impl(plan, config.splice, config.incremental_diff);
            report.record(plan, outcome);
            report.splice.cost.merge(&cost);
            if let Some(e) = engagement {
                report.splice.record(e);
            }
        }
        report
    }

    /// Runs a full campaign: `config.injections` faults sampled by
    /// `config.model` over the golden run's eligible instructions, with
    /// uniform latency in `[0, Dmax]`, sharded across
    /// [`SfiConfig::effective_workers`] threads. Results are
    /// bit-identical for any worker count.
    pub fn run(&self, config: &SfiConfig) -> SfiStats {
        self.run_report(config).stats
    }

    /// Runs one campaign per fault model in `models` (overriding
    /// `config.model`) and returns the per-model reports in order — the
    /// outcome rows backing per-model coverage tables. Each row is an
    /// independent campaign with the same seed, so rows are
    /// individually reproducible and worker-count invariant.
    pub fn run_models(
        &self,
        config: &SfiConfig,
        models: &[FaultModelKind],
    ) -> Vec<CampaignReport> {
        models
            .iter()
            .map(|&model| self.run_report(&SfiConfig { model, ..*config }))
            .collect()
    }

    /// Like [`SfiCampaign::run`], but returns the full report with
    /// per-outcome detection-latency histograms.
    pub fn run_report(&self, config: &SfiConfig) -> CampaignReport {
        // `prepare` rejected empty sample spaces, so the count is a
        // valid `gen_below` bound.
        let space = self.golden.eligible_insts;
        let n = config.injections as u64;
        let workers = self.effective_workers(config) as u64;
        if workers <= 1 {
            return self.run_shard(config, space, 0, n);
        }
        // Contiguous index ranges per worker; plans depend only on the
        // index, so the partition is a pure load-balancing choice.
        let per = n.div_ceil(workers);
        let partials: Vec<CampaignReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (lo, hi) = (w * per, ((w + 1) * per).min(n));
                    scope.spawn(move || self.run_shard(config, space, lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("SFI worker panicked"))
                .collect()
        });
        let mut report = CampaignReport::new(*config);
        for part in &partials {
            report.merge(part);
        }
        report
    }

    fn effective_workers(&self, config: &SfiConfig) -> usize {
        config.effective_workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_function;
    use crate::rng::Rng;
    use encore_analysis::Profile;
    use encore_core::{Encore, EncoreConfig};
    use encore_ir::{AddrExpr, BinOp, MemBase, ModuleBuilder, Operand};

    /// A small kernel with a WAR-carrying accumulation loop and a
    /// streaming loop; protected by Encore.
    fn protected_kernel() -> (Module, RegionMap, FuncId) {
        let mut mb = ModuleBuilder::new("m");
        let src = mb.global_init("src", 32, (0..32).map(|i| i * 3 % 17).collect());
        let dst = mb.global("dst", 32);
        let acc = mb.global("acc", 1);
        let fid = mb.function("kernel", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.load(AddrExpr::indexed(MemBase::Global(src), i, 1, 0));
                let v2 = f.bin(BinOp::Mul, v.into(), Operand::ImmI(2));
                f.store(AddrExpr::indexed(MemBase::Global(dst), i, 1, 0), v2.into());
                let a = f.load(AddrExpr::global(acc, 0));
                let a2 = f.bin(BinOp::Add, a.into(), v2.into());
                f.store(AddrExpr::global(acc, 0), a2.into());
            });
            f.ret(None);
        });
        let m = mb.finish();

        // Profile, then instrument with a generous budget.
        let golden = run_function(
            &m,
            None,
            fid,
            &[Value::Int(32)],
            &RunConfig { collect_profile: true, ..Default::default() },
        );
        let profile: Profile = golden.profile.expect("profile");
        let outcome = Encore::new(
            EncoreConfig::default().with_overhead_budget(1.0).with_eta(0.0),
        )
        .run(&m, &profile);
        let map = outcome.instrumented.map.clone();
        let module = outcome.instrumented.module.clone();
        (module, map, fid)
    }

    #[test]
    fn golden_run_is_reference() {
        let (m, map, fid) = protected_kernel();
        let campaign =
            SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &SfiConfig::default())
                .expect("golden run completes");
        assert!(campaign.golden().completed);
        assert!(campaign.golden().eligible_insts > 0);
        assert!(
            !campaign.snapshots().is_empty()
                || campaign.golden().dyn_insts < SfiConfig::default().snapshot_stride
        );
    }

    #[test]
    fn campaign_recovers_most_faults_at_short_latency() {
        // The kernel's regions re-arm per loop iteration (~20 dynamic
        // instructions), so recovery rates track Eq. 7's α: near-certain
        // at latency ≈ 0, ~50% when the latency matches the region
        // length.
        let (m, map, fid) = protected_kernel();
        let short = SfiConfig { injections: 120, dmax: 2, ..Default::default() };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &short)
            .expect("golden run completes");
        let stats = campaign.run(&short);
        assert_eq!(stats.injections, 120);
        assert!(stats.recovered > 0, "no recoveries at all: {stats:?}");
        assert!(
            stats.safe_fraction() > 0.8,
            "safe fraction too low at Dmax=2: {stats:?}"
        );

        let medium = SfiConfig { injections: 120, dmax: 20, ..Default::default() };
        let med_stats = campaign.run(&medium);
        assert!(
            med_stats.safe_fraction() > 0.3,
            "safe fraction too low at Dmax=20: {med_stats:?}"
        );
        // Shorter detection latency must not hurt coverage.
        assert!(stats.safe_fraction() >= med_stats.safe_fraction());
    }

    #[test]
    fn unprotected_module_cannot_rollback() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        let fid = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.store(AddrExpr::indexed(MemBase::Global(g), i, 1, 0), i.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let config = SfiConfig { injections: 60, dmax: 10, ..Default::default() };
        let campaign = SfiCampaign::prepare(&m, None, fid, &[Value::Int(8)], &config)
            .expect("golden run completes");
        let stats = campaign.run(&config);
        assert_eq!(stats.recovered, 0, "nothing to roll back to: {stats:?}");
        // Faults either vanish (benign), corrupt state, or get detected
        // without recovery.
        assert_eq!(
            stats.benign
                + stats.silent_corruption
                + stats.detected_unrecoverable
                + stats.crashed
                + stats.hung,
            60
        );
    }

    #[test]
    fn campaigns_are_reproducible() {
        let (m, map, fid) = protected_kernel();
        let config = SfiConfig { injections: 40, seed: 42, ..Default::default() };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &config)
            .expect("golden run completes");
        let a = campaign.run(&config);
        let b = campaign.run(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (m, map, fid) = protected_kernel();
        let base = SfiConfig { injections: 50, seed: 7, workers: 1, ..Default::default() };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &base)
            .expect("golden run completes");
        let sequential = campaign.run_report(&base);
        for workers in [2, 3, 8, 64] {
            let parallel =
                campaign.run_report(&SfiConfig { workers, ..base });
            assert_eq!(sequential.stats, parallel.stats, "stats diverged at {workers} workers");
            assert_eq!(
                sequential.latency, parallel.latency,
                "histograms diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn convergence_splice_engages_and_preserves_outcomes() {
        let (m, map, fid) = protected_kernel();
        // A short stride gives the splice dense golden boundaries to
        // probe; short latency makes most faults recover, the splice's
        // target population.
        let config = SfiConfig {
            injections: 80,
            dmax: 5,
            snapshot_stride: 32,
            ..Default::default()
        };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &config)
            .expect("golden run completes");
        assert!(!campaign.snapshots().is_empty());
        let space = campaign.golden().eligible_insts.max(1);
        let mut spliced = 0;
        for index in 0..config.injections as u64 {
            let plan = config.plan_for(index, space);
            let (fast, engagement) = campaign.run_one_detailed(plan, true);
            assert_eq!(
                fast,
                campaign.run_one_from_scratch(plan),
                "splice path diverged from scratch on {plan:?}"
            );
            if let Some(e) = engagement {
                match e.rule {
                    SpliceRule::Converged | SpliceRule::DeadDiff => {
                        assert_eq!(fast, FaultOutcome::Recovered);
                    }
                    SpliceRule::Sdc => assert_eq!(fast, FaultOutcome::SilentCorruption),
                }
                assert!(e.dyn_insts_saved > 0, "a splice must skip suffix work");
                spliced += 1;
            }
        }
        assert!(spliced > 0, "divergence splice never engaged");
    }

    #[test]
    fn plans_are_index_addressable() {
        let config = SfiConfig { seed: 99, dmax: 50, ..Default::default() };
        // Same (seed, index, space) → same plan; different index →
        // (almost surely) different plan.
        let a = config.plan_for(17, 1000);
        let b = config.plan_for(17, 1000);
        assert_eq!(a, b);
        let c = config.plan_for(18, 1000);
        assert_ne!(a, c);
        assert!(a.inject_at < 1000 && a.detect_latency <= 50);
        assert!(
            matches!(a.action, crate::FaultAction::FlipBits { mask } if mask.count_ones() == 1),
            "default model must sample single-bit flips: {a:?}"
        );
    }

    #[test]
    fn bit_flip_model_reproduces_the_legacy_stream() {
        // The default model must draw in the exact order the
        // pre-taxonomy `plan_for` did, so historical campaign results
        // stay bit-identical.
        let config = SfiConfig { seed: 0xBEEF, dmax: 77, ..Default::default() };
        for index in [0u64, 1, 17, 1_000_003] {
            let plan = config.plan_for(index, 4096);
            let mut rng = SplitMix64::for_index(config.seed, index);
            let inject_at = rng.gen_below(4096);
            let bit = rng.gen_below(64);
            let detect_latency = rng.gen_range_inclusive(0, config.dmax);
            assert_eq!(plan, FaultPlan::bit_flip(inject_at, bit as u8, detect_latency));
        }
    }

    #[test]
    fn report_histograms_account_for_every_injection() {
        let (m, map, fid) = protected_kernel();
        let config = SfiConfig { injections: 30, dmax: 9, ..Default::default() };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &config)
            .expect("golden run completes");
        let report = campaign.run_report(&config);
        assert_eq!(report.stats.injections, 30);
        let hist_total: u64 =
            FaultOutcome::ALL.iter().map(|o| report.latency_of(*o).total()).sum();
        assert_eq!(hist_total, 30);
        for outcome in FaultOutcome::ALL {
            assert_eq!(
                report.latency_of(outcome).total() as usize,
                report.stats.count(outcome),
                "{outcome:?} histogram disagrees with stats"
            );
        }
    }

    #[test]
    fn latency_histogram_bins_partition_the_range() {
        let hist = LatencyHistogram::new(100);
        let mut h = hist;
        for l in 0..=100 {
            h.record(l);
        }
        assert_eq!(h.total(), 101);
        // Bin ranges tile [0, dmax] without gaps or overlap.
        let mut expect_lo = 0;
        for bin in 0..LATENCY_BINS {
            let (lo, hi) = h.bin_range(bin);
            assert_eq!(lo, expect_lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, 101);
    }

    #[test]
    fn deterministic_single_injection() {
        let (m, map, fid) = protected_kernel();
        let campaign =
            SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &SfiConfig::default())
                .expect("golden run completes");
        let plan = FaultPlan::bit_flip(10, 5, 3);
        let a = campaign.run_one(plan);
        let b = campaign.run_one(plan);
        assert_eq!(a, b);
        assert_eq!(a, campaign.run_one_from_scratch(plan));
    }

    #[test]
    fn replay_matches_campaign_member() {
        // An injection replayed from its (seed, index) pair reproduces
        // the plan the full campaign used.
        let (m, map, fid) = protected_kernel();
        let config = SfiConfig { injections: 10, seed: 0xD00D, ..Default::default() };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &config)
            .expect("golden run completes");
        for index in 0..10 {
            let plan = campaign.plan_for_index(&config, index);
            assert_eq!(plan, config.plan_for(index, campaign.golden().eligible_insts));
            let _ = campaign.run_one(plan);
        }
    }

    #[test]
    fn prepare_rejects_trapping_golden_run() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let fid = mb.function("f", 0, |f| {
            f.store(AddrExpr::global(g, 9), Operand::ImmI(1)); // out of bounds
            f.ret(None);
        });
        let m = mb.finish();
        let err = SfiCampaign::prepare(&m, None, fid, &[], &SfiConfig::default())
            .expect_err("trapping golden run must be reported");
        assert!(
            matches!(&err, GoldenRunError::Trapped(trap) if matches!(trap.kind, TrapKind::Memory(_)))
        );
        assert!(err.to_string().contains("golden run trapped"));
    }

    #[test]
    fn prepare_rejects_empty_sample_space() {
        // A function that only returns executes zero fault-eligible
        // instructions: there is no site to inject at, and `prepare`
        // must say so instead of silently pretending the space has one
        // slot (the old `eligible_insts.max(1)` behavior).
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.function("f", 0, |f| {
            f.ret(None);
        });
        let m = mb.finish();
        let err = SfiCampaign::prepare(&m, None, fid, &[], &SfiConfig::default())
            .expect_err("empty sample space must be reported");
        assert_eq!(err, GoldenRunError::NoEligibleInstructions);
        assert!(err.to_string().contains("no fault-eligible instructions"));
    }

    #[test]
    fn snapshot_resume_matches_from_scratch_per_plan() {
        let (m, map, fid) = protected_kernel();
        let config = SfiConfig { injections: 60, snapshot_stride: 16, ..Default::default() };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &config)
            .expect("golden run completes");
        assert!(!campaign.snapshots().is_empty(), "stride 16 must capture snapshots");
        for index in 0..config.injections as u64 {
            let plan = campaign.plan_for_index(&config, index);
            assert_eq!(
                campaign.run_one(plan),
                campaign.run_one_from_scratch(plan),
                "snapshot resume diverged from scratch for {plan:?}"
            );
        }
    }

    #[test]
    fn every_model_is_worker_and_splice_invariant() {
        // The acceptance matrix of the taxonomy refactor: for each
        // model, outcomes and latency histograms are bit-identical
        // across worker counts and with splicing on or off. The splice
        // half of the matrix is the test-encoded form of each model's
        // splice-soundness decision.
        let (m, map, fid) = protected_kernel();
        let base = SfiConfig {
            injections: 40,
            dmax: 12,
            snapshot_stride: 32,
            workers: 1,
            ..Default::default()
        };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &base)
            .expect("golden run completes");
        for model in FaultModelKind::ALL {
            let config = SfiConfig { model, ..base };
            let reference = campaign.run_report(&config);
            assert_eq!(reference.stats.injections, 40, "{model}: injections lost");
            assert_eq!(reference.model(), model);
            let parallel = campaign.run_report(&SfiConfig { workers: 8, ..config });
            assert_eq!(reference.stats, parallel.stats, "{model}: stats diverged at 8 workers");
            assert_eq!(reference.latency, parallel.latency, "{model}: histograms diverged");
            let unspliced = campaign.run_report(&SfiConfig { splice: false, ..config });
            assert_eq!(reference.stats, unspliced.stats, "{model}: splice changed outcomes");
            assert_eq!(reference.latency, unspliced.latency, "{model}: splice changed latency");
        }
    }

    #[test]
    fn run_models_produces_one_row_per_model_in_order() {
        let (m, map, fid) = protected_kernel();
        let config = SfiConfig { injections: 15, dmax: 6, workers: 1, ..Default::default() };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &config)
            .expect("golden run completes");
        let rows = campaign.run_models(&config, &FaultModelKind::ALL);
        assert_eq!(rows.len(), FaultModelKind::ALL.len());
        for (row, model) in rows.iter().zip(FaultModelKind::ALL) {
            assert_eq!(row.model(), model);
            assert_eq!(row.stats.injections, 15);
            // Each row is reproducible in isolation.
            assert_eq!(row, &campaign.run_report(&SfiConfig { model, ..config }));
        }
    }

    #[test]
    fn power_failure_faults_recover_via_rollback() {
        // A power failure detects instantly and restarts the armed
        // region's recovery block with zeroed registers; Encore's
        // checkpointed live-ins must carry the re-execution, so a
        // protected kernel recovers (and never silently corrupts).
        let (m, map, fid) = protected_kernel();
        let config = SfiConfig {
            injections: 60,
            model: FaultModelKind::PowerFailure,
            ..Default::default()
        };
        let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &config)
            .expect("golden run completes");
        let stats = campaign.run(&config);
        assert_eq!(stats.injections, 60);
        assert!(stats.recovered > 0, "power failures never recovered: {stats:?}");
        assert_eq!(
            stats.silent_corruption, 0,
            "a detected-on-injection fault cannot corrupt silently: {stats:?}"
        );
    }

    #[test]
    fn wrong_edge_and_address_models_defer_until_their_event() {
        // Deferred models arm at the sampled ordinal and fire at the
        // next matching event; a run may therefore end with the fault
        // armed but never fired, which must classify as Benign (and
        // must never certify through the splice, whose probes require
        // the fault slot to be empty).
        let (m, map, fid) = protected_kernel();
        for model in [FaultModelKind::ControlFlow, FaultModelKind::Address] {
            let config =
                SfiConfig { injections: 60, dmax: 8, model, ..Default::default() };
            let campaign = SfiCampaign::prepare(&m, Some(&map), fid, &[Value::Int(32)], &config)
                .expect("golden run completes");
            let stats = campaign.run(&config);
            assert_eq!(stats.injections, 60, "{model}: injections lost");
            // The kernel branches and accesses memory every iteration,
            // so some plans must actually fire and perturb the run.
            assert!(
                stats.benign < 60,
                "{model}: every injection was a no-op, the model never fired: {stats:?}"
            );
        }
    }
}
