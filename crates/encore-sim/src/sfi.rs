//! Monte-Carlo statistical fault injection (SFI).
//!
//! The paper's full-system evaluation (§4, §5.4) composes an SFI-derived
//! hardware masking rate with the Encore recoverability model. This
//! module provides the software half end-to-end: it injects real bit
//! flips into architecturally visible values of the interpreted program,
//! models detection latency, lets the Encore runtime roll back, and
//! classifies each run against the golden (fault-free) execution.

use crate::interp::{run_function, FaultPlan, RunConfig, RunResult, TrapKind};
use crate::value::Value;
use encore_core::RegionMap;
use encore_ir::{FuncId, Module};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Classification of one fault-injection run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultOutcome {
    /// The run completed with golden-equal observable state and no
    /// rollback: the flipped value was architecturally dead or
    /// overwritten (software-level masking).
    Benign,
    /// A rollback happened and the final state matches the golden run:
    /// Encore recovered the fault.
    Recovered,
    /// The run completed but observable state differs from golden:
    /// silent data corruption (the fault escaped detection, or rollback
    /// targeted the wrong region).
    SilentCorruption,
    /// The fault was detected but no recovery region was armed.
    DetectedUnrecoverable,
    /// The run died on a trap after recovery had already been consumed
    /// (or with no fault live).
    Crashed,
    /// The run exceeded its fuel budget (fault-induced livelock).
    Hung,
}

/// SFI campaign parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SfiConfig {
    /// Number of fault injections.
    pub injections: usize,
    /// Maximum detection latency (`Dmax`); latency is sampled uniformly
    /// from `[0, Dmax]`.
    pub dmax: u64,
    /// RNG seed (campaigns are reproducible).
    pub seed: u64,
    /// Fuel multiplier over the golden run's dynamic instruction count
    /// (faulted runs may loop longer before detection).
    pub fuel_factor: u64,
}

impl Default for SfiConfig {
    fn default() -> Self {
        Self { injections: 200, dmax: 100, seed: 0xE7_C04E, fuel_factor: 4 }
    }
}

/// Aggregate campaign results.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SfiStats {
    /// Total injections performed.
    pub injections: usize,
    /// Benign (software-masked) outcomes.
    pub benign: usize,
    /// Successful Encore recoveries.
    pub recovered: usize,
    /// Silent data corruptions.
    pub silent_corruption: usize,
    /// Detected-but-unrecoverable outcomes.
    pub detected_unrecoverable: usize,
    /// Crashes.
    pub crashed: usize,
    /// Hangs.
    pub hung: usize,
}

impl SfiStats {
    fn record(&mut self, outcome: FaultOutcome) {
        self.injections += 1;
        match outcome {
            FaultOutcome::Benign => self.benign += 1,
            FaultOutcome::Recovered => self.recovered += 1,
            FaultOutcome::SilentCorruption => self.silent_corruption += 1,
            FaultOutcome::DetectedUnrecoverable => self.detected_unrecoverable += 1,
            FaultOutcome::Crashed => self.crashed += 1,
            FaultOutcome::Hung => self.hung += 1,
        }
    }

    /// Fraction of injections that ended with correct architectural
    /// state (benign or recovered).
    pub fn safe_fraction(&self) -> f64 {
        if self.injections == 0 {
            return 0.0;
        }
        (self.benign + self.recovered) as f64 / self.injections as f64
    }

    /// Fraction of injections Encore actively recovered.
    pub fn recovered_fraction(&self) -> f64 {
        if self.injections == 0 {
            return 0.0;
        }
        self.recovered as f64 / self.injections as f64
    }

    /// Fraction ending in any failure (SDC, unrecoverable, crash, hang).
    pub fn failure_fraction(&self) -> f64 {
        1.0 - self.safe_fraction()
    }
}

/// A reusable fault-injection campaign over one entry point.
#[derive(Debug)]
pub struct SfiCampaign<'a> {
    module: &'a Module,
    map: Option<&'a RegionMap>,
    entry: FuncId,
    args: Vec<Value>,
    golden: RunResult,
    fuel: u64,
}

impl<'a> SfiCampaign<'a> {
    /// Prepares a campaign by running the golden execution.
    ///
    /// # Panics
    ///
    /// Panics if the golden run itself traps — the workload must be
    /// fault-free before injecting faults into it.
    pub fn new(
        module: &'a Module,
        map: Option<&'a RegionMap>,
        entry: FuncId,
        args: &[Value],
        config: &SfiConfig,
    ) -> Self {
        let golden = run_function(module, map, entry, args, &RunConfig::default());
        assert!(
            golden.completed,
            "golden run trapped: {:?}",
            golden.trap
        );
        let fuel = golden.dyn_insts.saturating_mul(config.fuel_factor).max(100_000);
        Self { module, map, entry, args: args.to_vec(), golden, fuel }
    }

    /// The golden run.
    pub fn golden(&self) -> &RunResult {
        &self.golden
    }

    /// Runs one injection described by `plan` and classifies it.
    pub fn run_one(&self, plan: FaultPlan) -> FaultOutcome {
        let config = RunConfig {
            fuel: self.fuel,
            fault: Some(plan),
            ..Default::default()
        };
        let r = run_function(self.module, self.map, self.entry, &self.args, &config);
        self.classify(&r)
    }

    fn classify(&self, r: &RunResult) -> FaultOutcome {
        if let Some(trap) = &r.trap {
            return match trap.kind {
                TrapKind::DetectedUnrecoverable => FaultOutcome::DetectedUnrecoverable,
                TrapKind::FuelExhausted => FaultOutcome::Hung,
                _ => FaultOutcome::Crashed,
            };
        }
        let matches = r.observably_equal(&self.golden);
        match (matches, r.fault.rolled_back) {
            (true, true) => FaultOutcome::Recovered,
            (true, false) => FaultOutcome::Benign,
            (false, _) => FaultOutcome::SilentCorruption,
        }
    }

    /// Runs a full campaign: `config.injections` faults at uniformly
    /// random eligible instructions, random bit, uniform latency in
    /// `[0, Dmax]`.
    pub fn run(&self, config: &SfiConfig) -> SfiStats {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut stats = SfiStats::default();
        let space = self.golden.eligible_insts.max(1);
        for _ in 0..config.injections {
            let plan = FaultPlan {
                inject_at: rng.gen_range(0..space),
                bit: rng.gen_range(0..64),
                detect_latency: rng.gen_range(0..=config.dmax),
            };
            stats.record(self.run_one(plan));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_analysis::Profile;
    use encore_core::{Encore, EncoreConfig};
    use encore_ir::{AddrExpr, BinOp, MemBase, ModuleBuilder, Operand};

    /// A small kernel with a WAR-carrying accumulation loop and a
    /// streaming loop; protected by Encore.
    fn protected_kernel() -> (Module, RegionMap, FuncId) {
        let mut mb = ModuleBuilder::new("m");
        let src = mb.global_init("src", 32, (0..32).map(|i| i * 3 % 17).collect());
        let dst = mb.global("dst", 32);
        let acc = mb.global("acc", 1);
        let fid = mb.function("kernel", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.load(AddrExpr::indexed(MemBase::Global(src), i, 1, 0));
                let v2 = f.bin(BinOp::Mul, v.into(), Operand::ImmI(2));
                f.store(AddrExpr::indexed(MemBase::Global(dst), i, 1, 0), v2.into());
                let a = f.load(AddrExpr::global(acc, 0));
                let a2 = f.bin(BinOp::Add, a.into(), v2.into());
                f.store(AddrExpr::global(acc, 0), a2.into());
            });
            f.ret(None);
        });
        let m = mb.finish();

        // Profile, then instrument with a generous budget.
        let golden = run_function(
            &m,
            None,
            fid,
            &[Value::Int(32)],
            &RunConfig { collect_profile: true, ..Default::default() },
        );
        let profile: Profile = golden.profile.expect("profile");
        let outcome = Encore::new(
            EncoreConfig::default().with_overhead_budget(1.0).with_eta(0.0),
        )
        .run(&m, &profile);
        let map = outcome.instrumented.map.clone();
        let module = outcome.instrumented.module.clone();
        (module, map, fid)
    }

    #[test]
    fn golden_run_is_reference() {
        let (m, map, fid) = protected_kernel();
        let campaign =
            SfiCampaign::new(&m, Some(&map), fid, &[Value::Int(32)], &SfiConfig::default());
        assert!(campaign.golden().completed);
        assert!(campaign.golden().eligible_insts > 0);
    }

    #[test]
    fn campaign_recovers_most_faults_at_short_latency() {
        // The kernel's regions re-arm per loop iteration (~20 dynamic
        // instructions), so recovery rates track Eq. 7's α: near-certain
        // at latency ≈ 0, ~50% when the latency matches the region
        // length.
        let (m, map, fid) = protected_kernel();
        let short = SfiConfig { injections: 120, dmax: 2, ..Default::default() };
        let campaign = SfiCampaign::new(&m, Some(&map), fid, &[Value::Int(32)], &short);
        let stats = campaign.run(&short);
        assert_eq!(stats.injections, 120);
        assert!(stats.recovered > 0, "no recoveries at all: {stats:?}");
        assert!(
            stats.safe_fraction() > 0.8,
            "safe fraction too low at Dmax=2: {stats:?}"
        );

        let medium = SfiConfig { injections: 120, dmax: 20, ..Default::default() };
        let med_stats = campaign.run(&medium);
        assert!(
            med_stats.safe_fraction() > 0.3,
            "safe fraction too low at Dmax=20: {med_stats:?}"
        );
        // Shorter detection latency must not hurt coverage.
        assert!(stats.safe_fraction() >= med_stats.safe_fraction());
    }

    #[test]
    fn unprotected_module_cannot_rollback() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        let fid = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.store(AddrExpr::indexed(MemBase::Global(g), i, 1, 0), i.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let config = SfiConfig { injections: 60, dmax: 10, ..Default::default() };
        let campaign = SfiCampaign::new(&m, None, fid, &[Value::Int(8)], &config);
        let stats = campaign.run(&config);
        assert_eq!(stats.recovered, 0, "nothing to roll back to: {stats:?}");
        // Faults either vanish (benign), corrupt state, or get detected
        // without recovery.
        assert_eq!(
            stats.benign
                + stats.silent_corruption
                + stats.detected_unrecoverable
                + stats.crashed
                + stats.hung,
            60
        );
    }

    #[test]
    fn campaigns_are_reproducible() {
        let (m, map, fid) = protected_kernel();
        let config = SfiConfig { injections: 40, seed: 42, ..Default::default() };
        let campaign = SfiCampaign::new(&m, Some(&map), fid, &[Value::Int(32)], &config);
        let a = campaign.run(&config);
        let b = campaign.run(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_single_injection() {
        let (m, map, fid) = protected_kernel();
        let campaign =
            SfiCampaign::new(&m, Some(&map), fid, &[Value::Int(32)], &SfiConfig::default());
        let plan = FaultPlan { inject_at: 10, bit: 5, detect_latency: 3 };
        let a = campaign.run_one(plan);
        let b = campaign.run_one(plan);
        assert_eq!(a, b);
    }
}
