//! # encore-sim
//!
//! The executable substrate of the Encore reproduction (Feng et al.,
//! MICRO 2011): a deterministic interpreter for [`encore_ir`] modules
//! with the Encore rollback-recovery runtime built in, plus the
//! measurement machinery the paper's evaluation needs:
//!
//! * [`run_function`] — execute a module; optional profiling (training
//!   runs for `Pmin`/hot-path heuristics), dynamic memory-event tracing
//!   (Figure 1), per-region accounting (Figure 6) and single-fault
//!   injection;
//! * [`SfiCampaign`] — Monte-Carlo statistical fault injection with
//!   uniform fault sites and uniform detection latency (§4.2.1),
//!   classifying runs against a golden execution under a pluggable
//!   [`FaultModel`] taxonomy (bit flips, multi-bit bursts, address
//!   corruption, wrong-edge control flow, power failure);
//! * [`MaskingModel`] — the ARM926 hardware-masking rate composition
//!   (Figure 8).
//!
//! # Examples
//!
//! ```
//! use encore_ir::{ModuleBuilder, Operand, BinOp};
//! use encore_sim::{run_function, RunConfig, Value};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! mb.function("double", 1, |f| {
//!     let p = f.param(0);
//!     let r = f.bin(BinOp::Mul, p.into(), Operand::ImmI(2));
//!     f.ret(Some(r.into()));
//! });
//! let m = mb.finish();
//! let entry = m.func_by_name("double").unwrap();
//! let result = run_function(&m, None, entry, &[Value::Int(21)], &RunConfig::default());
//! assert_eq!(result.ret, Some(Value::Int(42)));
//! ```

#![warn(missing_docs)]

mod externs;
mod fault;
mod interp;
mod masking;
mod memory;
mod predecode;
pub mod rng;
mod sfi;
mod snapshot;
mod value;

pub use externs::Externs;
pub use fault::{
    AddressCorruption, BitFlip, ControlFlowError, FaultAction, FaultModel, FaultModelKind,
    FaultPlan, MultiBitFlip, PowerFailure,
};
pub use interp::{
    resume_function, run_function, run_function_with_snapshots, FaultTelemetry, RunConfig,
    RunResult, SpliceRule, Trap, TrapKind, DIFF_CAP,
};
pub use masking::{ComposedCoverage, MaskingModel};
pub use memory::{page_hash, MemError, MemObject, Memory, PageHashes, ProbeCost, PAGE_CELLS};
pub use predecode::DecodedModule;
pub use sfi::{
    CampaignReport, FaultOutcome, GoldenRunError, LatencyHistogram, SfiCampaign, SfiConfig,
    SfiStats, SpliceEngagement, SpliceStats, LATENCY_BINS,
};
pub use snapshot::{Snapshot, SnapshotLog};
pub use value::{eval_bin, eval_un, fold_mask16, EvalError, Value};
