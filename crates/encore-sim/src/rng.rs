//! In-repo deterministic pseudo-random number generation.
//!
//! The fault-injection campaign (and every other stochastic corner of
//! the workspace) used to pull in the `rand` crate; that made offline
//! builds impossible and tied campaign reproducibility to an external
//! crate's stream stability. This module replaces it with SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014) — 64 bits of state, full period,
//! passes BigCrush when used as here — plus a tiny [`Rng`] trait so call
//! sites stay generic over the generator.
//!
//! Two properties matter for the SFI engine:
//!
//! 1. **Stream stability.** The sequence for a given seed is defined by
//!    this file alone and will never change under a dependency upgrade.
//! 2. **Index addressability.** [`SplitMix64::for_index`] derives an
//!    independent stream from a `(seed, index)` pair, so the plan of
//!    injection `i` of a campaign is a pure function of the campaign
//!    seed and `i` — identical regardless of which worker thread, in
//!    which order, executes it.

/// The odd constant γ of SplitMix64 (2⁶⁴/φ, forced odd).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalization mix of SplitMix64 (also the `mix64` of MurmurHash3's
/// avalanche stage with David Stafford's "Mix13" constants).
///
/// Bijective on `u64`; every input bit affects every output bit.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal random-source trait: everything is derived from
/// [`Rng::next_u64`], so implementors only supply the raw stream.
pub trait Rng {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform `u64` in `[0, bound)` by modulo reduction.
    ///
    /// The modulo bias is at most `bound / 2⁶⁴` — immaterial for the
    /// campaign-sized bounds used here — and in exchange the mapping is
    /// trivially stable, which is what reproducibility depends on.
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0`.
    fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0) is an empty range");
        self.next_u64() % bound
    }

    /// Uniform `u64` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(span + 1)
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(self.gen_below(span) as i64)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0`.
    fn gen_usize(&mut self, bound: usize) -> usize {
        self.gen_below(bound as u64) as usize
    }

    /// A fair coin.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// SplitMix64: `state += γ; output = mix64(state)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded directly with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The stream for element `index` of the family keyed by `seed`.
    ///
    /// The state is `mix64(seed ⊕ mix64(index·γ + γ))`: the inner mix
    /// decorrelates consecutive indices, the outer mix decorrelates
    /// nearby seeds, and the whole derivation is order-free — injection
    /// `i` draws the same plan whether it runs first on one thread or
    /// last on sixteen.
    #[must_use]
    pub fn for_index(seed: u64, index: u64) -> Self {
        let salted = mix64(index.wrapping_mul(GOLDEN_GAMMA).wrapping_add(GOLDEN_GAMMA));
        Self { state: mix64(seed ^ salted) }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // SplitMix64 reference output for seed 1234567 (from the
        // canonical C implementation by Sebastiano Vigna).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = (0..64).map({
            let mut r = SplitMix64::new(42);
            move |_| r.next_u64()
        }).collect();
        let b: Vec<u64> = (0..64).map({
            let mut r = SplitMix64::new(42);
            move |_| r.next_u64()
        }).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn index_streams_are_order_free_and_distinct() {
        let direct: Vec<u64> = (0..16)
            .map(|i| SplitMix64::for_index(7, i).next_u64())
            .collect();
        let reversed: Vec<u64> = (0..16)
            .rev()
            .map(|i| SplitMix64::for_index(7, i).next_u64())
            .collect();
        let mut expected = direct.clone();
        expected.reverse();
        assert_eq!(reversed, expected);
        let mut uniq = direct.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), direct.len(), "index streams collided");
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(rng.gen_below(10) < 10);
            let v = rng.gen_range_inclusive(5, 9);
            assert!((5..=9).contains(&v));
            let s = rng.gen_i64(-4, 16);
            assert!((-4..16).contains(&s));
        }
        assert_eq!(rng.gen_range_inclusive(3, 3), 3);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SplitMix64::new(0xFEED);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_usize(8)] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "bucket count {b} far from 1000");
        }
    }
}
