//! Pre-decoded instruction streams for the interpreter hot loop.
//!
//! The [`Module`] representation optimizes for construction and
//! transformation: blocks own `Vec<Inst>`, terminators live in an
//! `Option`, and region membership requires a two-level map lookup.
//! None of that suits an interpreter that retires hundreds of millions
//! of dynamic instructions per campaign. [`DecodedModule`] flattens each
//! function once, up front, into an index-addressable stream:
//!
//! * every instruction is stored as a **borrow** (`&Inst`) next to its
//!   precomputed charge cost, instrumentation flag and [`InstRef`], so
//!   the `step` loop never clones an instruction or a terminator;
//! * every block is reduced to a `(start, len, terminator, region)`
//!   record, with the region id **baked in** so per-instruction region
//!   accounting is an array write instead of two `BTreeMap` probes;
//! * the heap-site and region counts are recorded so the machine can
//!   use dense `Vec`s (keyed by raw id) for its hot-loop counters.
//!
//! Decoding is cheap (one pass over the static code) and a
//! `DecodedModule` is immutable and shareable, so a fault-injection
//! campaign decodes once and reuses the stream across every injection.

use encore_core::RegionMap;
use encore_ir::{
    AddrExpr, BinOp, BlockId, FuncId, HeapId, Inst, InstRef, MemBase, Module, Offset, Operand,
    Reg, RegionId, SlotId, Terminator, UnOp,
};

/// The base of a pre-resolved address: like [`MemBase`] but with global
/// objects already turned into their object-table handle (globals are
/// the first `module.globals.len()` objects, in id order — the layout
/// [`crate::Memory::for_module`] guarantees).
#[derive(Clone, Copy, Debug)]
pub(crate) enum BaseMode {
    /// A global, pre-resolved to its object handle.
    Global(usize),
    /// A stack slot of the current activation.
    Slot(SlotId),
    /// The most recent allocation of a heap site.
    Heap(HeapId),
    /// A pointer held in a register.
    RegPtr(Reg),
}

/// A pre-decoded address expression.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DecodedAddr {
    /// The base object.
    pub(crate) base: BaseMode,
    /// The cell offset (unchanged from the IR; already `Copy`).
    pub(crate) off: Offset,
}

impl DecodedAddr {
    fn lower(addr: &AddrExpr) -> Self {
        let base = match addr.base {
            MemBase::Global(g) => BaseMode::Global(g.index()),
            MemBase::Slot(s) => BaseMode::Slot(s),
            MemBase::Heap(h) => BaseMode::Heap(h),
            MemBase::Reg(r) => BaseMode::RegPtr(r),
        };
        Self { base, off: addr.offset }
    }
}

/// A pre-decoded instruction body: the handful of opcodes that dominate
/// dynamic execution are lowered into flat, match-ready variants; every
/// other opcode falls back to the original [`Inst`] and the general
/// executor.
#[derive(Debug)]
pub(crate) enum MicroOp<'m> {
    /// Binary operation into a register.
    Bin { op: BinOp, dst: Reg, lhs: Operand, rhs: Operand },
    /// Unary operation into a register.
    Un { op: UnOp, dst: Reg, src: Operand },
    /// Register/immediate move.
    Mov { dst: Reg, src: Operand },
    /// Memory read.
    Load { dst: Reg, addr: DecodedAddr },
    /// Memory write.
    Store { addr: DecodedAddr, src: Operand },
    /// Address materialization (not fault-eligible, like the original).
    Lea { dst: Reg, addr: DecodedAddr },
    /// Arms the frame's recovery, with the region's recovery block
    /// pre-resolved from the region map at decode time. `SetRecovery`
    /// against an unknown region (or one with no recovery block) stays
    /// `Slow` so the general path raises its exact trap.
    SetRecovery { region: RegionId, recovery_block: BlockId },
    /// Appends a memory undo entry to the armed recovery log.
    CkptMem { addr: DecodedAddr },
    /// Appends a register undo entry to the armed recovery log.
    CkptReg { reg: Reg },
    /// Infrequent opcode (calls, allocation, rollback): executed
    /// through the general interpreter path.
    Slow(&'m Inst),
}

impl<'m> MicroOp<'m> {
    fn lower(inst: &'m Inst, map: Option<&RegionMap>) -> Self {
        match inst {
            Inst::Bin { op, dst, lhs, rhs } => {
                MicroOp::Bin { op: *op, dst: *dst, lhs: *lhs, rhs: *rhs }
            }
            Inst::Un { op, dst, src } => MicroOp::Un { op: *op, dst: *dst, src: *src },
            Inst::Mov { dst, src } => MicroOp::Mov { dst: *dst, src: *src },
            Inst::Load { dst, addr } => {
                MicroOp::Load { dst: *dst, addr: DecodedAddr::lower(addr) }
            }
            Inst::Store { addr, src } => {
                MicroOp::Store { addr: DecodedAddr::lower(addr), src: *src }
            }
            Inst::Lea { dst, addr } => {
                MicroOp::Lea { dst: *dst, addr: DecodedAddr::lower(addr) }
            }
            Inst::SetRecovery { region } => {
                match map
                    .and_then(|m| m.regions.get(region.index()))
                    .and_then(|info| info.recovery_block)
                {
                    Some(rb) => MicroOp::SetRecovery { region: *region, recovery_block: rb },
                    None => MicroOp::Slow(inst),
                }
            }
            Inst::CheckpointMem { addr } => MicroOp::CkptMem { addr: DecodedAddr::lower(addr) },
            Inst::CheckpointReg { reg } => MicroOp::CkptReg { reg: *reg },
            _ => MicroOp::Slow(inst),
        }
    }
}

/// One pre-decoded instruction: the lowered body plus everything `step`
/// would otherwise recompute per retirement.
pub(crate) struct DecodedInst<'m> {
    /// The instruction itself, borrowed from the module (the general
    /// executor path — profiling and tracing runs — interprets this).
    pub(crate) inst: &'m Inst,
    /// The lowered body the hot loop dispatches on.
    pub(crate) op: MicroOp<'m>,
    /// Location of the instruction (for profiling footprints).
    pub(crate) at: InstRef,
    /// Precomputed [`Inst::cost`].
    pub(crate) cost: u64,
    /// Precomputed [`Inst::is_instrumentation`].
    pub(crate) instrumentation: bool,
}

/// One pre-decoded block: a window into the function's flat stream.
pub(crate) struct DecodedBlock<'m> {
    /// Index of the block's first instruction in [`DecodedFunc::steps`].
    pub(crate) start: u32,
    /// Number of straight-line instructions.
    pub(crate) len: u32,
    /// The terminator, borrowed (`None` only for malformed modules).
    pub(crate) term: Option<&'m Terminator>,
    /// The region this block belongs to, resolved at decode time.
    pub(crate) region: Option<RegionId>,
}

/// One pre-decoded function.
pub(crate) struct DecodedFunc<'m> {
    /// All instructions of all blocks, flattened in block order.
    pub(crate) steps: Vec<DecodedInst<'m>>,
    /// Per-block metadata, indexed by [`BlockId`].
    pub(crate) blocks: Vec<DecodedBlock<'m>>,
}

impl<'m> DecodedFunc<'m> {
    /// The decoded block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub(crate) fn block(&self, b: BlockId) -> &DecodedBlock<'m> {
        &self.blocks[b.index()]
    }
}

/// A module pre-decoded for interpretation. Borrows the [`Module`] it
/// was built from; build once, share across runs.
pub struct DecodedModule<'m> {
    pub(crate) funcs: Vec<DecodedFunc<'m>>,
    /// Heap allocation sites the module can name (sizes the machine's
    /// dense allocation table).
    pub(crate) heap_site_count: usize,
    /// Regions the map names (sizes the dense accounting counters).
    pub(crate) region_count: usize,
}

impl<'m> DecodedModule<'m> {
    /// Pre-decodes `module`, resolving region membership through `map`
    /// when one is supplied.
    #[must_use]
    pub fn new(module: &'m Module, map: Option<&RegionMap>) -> Self {
        let mut heap_site_count = module.heap_sites as usize;
        let funcs = module
            .iter_funcs()
            .map(|(fid, func)| {
                let mut steps = Vec::with_capacity(func.static_inst_count());
                let blocks = func
                    .iter_blocks()
                    .map(|(bid, block)| {
                        let start = steps.len() as u32;
                        for (i, inst) in block.insts.iter().enumerate() {
                            if let Inst::Alloc { site, .. } = inst {
                                heap_site_count = heap_site_count.max(site.index() + 1);
                            }
                            steps.push(DecodedInst {
                                inst,
                                op: MicroOp::lower(inst, map),
                                at: InstRef::new(bid, i),
                                cost: inst.cost(),
                                instrumentation: inst.is_instrumentation(),
                            });
                        }
                        DecodedBlock {
                            start,
                            len: block.insts.len() as u32,
                            term: block.term.as_ref(),
                            region: map.and_then(|m| m.region_of(fid, bid)),
                        }
                    })
                    .collect();
                DecodedFunc { steps, blocks }
            })
            .collect();
        let region_count = map.map(|m| m.len()).unwrap_or(0);
        Self { funcs, heap_site_count, region_count }
    }

    /// The decoded function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[inline]
    pub(crate) fn func(&self, f: FuncId) -> &DecodedFunc<'m> {
        &self.funcs[f.index()]
    }
}

impl std::fmt::Debug for DecodedModule<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodedModule")
            .field("funcs", &self.funcs.len())
            .field("heap_site_count", &self.heap_site_count)
            .field("region_count", &self.region_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{BinOp, ModuleBuilder, Operand};

    #[test]
    fn flat_stream_mirrors_blocks() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let acc = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.bin_to(acc, BinOp::Add, acc.into(), i.into());
            });
            f.ret(Some(acc.into()));
        });
        let m = mb.finish();
        let code = DecodedModule::new(&m, None);
        let fid = m.func_by_name("f").unwrap();
        let func = m.func(fid);
        let dfunc = code.func(fid);
        assert_eq!(dfunc.blocks.len(), func.blocks.len());
        for (bid, block) in func.iter_blocks() {
            let db = dfunc.block(bid);
            assert_eq!(db.len as usize, block.insts.len());
            assert_eq!(db.term, block.term.as_ref());
            for (i, inst) in block.insts.iter().enumerate() {
                let di = &dfunc.steps[db.start as usize + i];
                assert!(std::ptr::eq(di.inst, inst));
                assert_eq!(di.cost, inst.cost());
                assert_eq!(di.at, InstRef::new(bid, i));
            }
        }
    }

    #[test]
    fn heap_sites_counted() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let p = f.alloc(Operand::ImmI(4));
            f.ret(Some(p.into()));
        });
        let m = mb.finish();
        let code = DecodedModule::new(&m, None);
        assert!(code.heap_site_count >= 1);
    }
}
