//! Runtime values and operator evaluation.

use encore_ir::{BinOp, UnOp};
use std::fmt;

/// A runtime value held in a register or memory cell.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Pointer: object handle + cell index.
    Ptr {
        /// Index into the machine's object table.
        obj: usize,
        /// Cell index within the object (may be temporarily out of
        /// bounds; bounds are checked on dereference).
        idx: i64,
    },
}

impl Value {
    /// Integer zero — the initial value of registers and memory cells.
    pub const ZERO: Value = Value::Int(0);

    /// Is this value "truthy" for branches? (nonzero / non-null).
    #[inline]
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Ptr { .. } => true,
        }
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if any.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Flips bit `bit` (0–63) of the value's 64-bit representation —
    /// the transient-fault model. Integers and floats flip their payload
    /// bits; pointers flip a bit of the cell index (corrupting an address
    /// computation).
    pub fn flip_bit(self, bit: u8) -> Value {
        let bit = bit % 64;
        match self {
            Value::Int(v) => Value::Int(v ^ (1i64 << bit)),
            Value::Float(v) => Value::Float(f64::from_bits(v.to_bits() ^ (1u64 << bit))),
            Value::Ptr { obj, idx } => Value::Ptr { obj, idx: idx ^ (1i64 << (bit % 16)) },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ptr { obj, idx } => write!(f, "&obj{obj}[{idx}]"),
        }
    }
}

/// An evaluation error (type confusion, division misuse of pointers, …).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvalError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalError {}

fn type_err(op: &str, a: &Value, b: Option<&Value>) -> EvalError {
    let msg = match b {
        Some(b) => format!("type error: {op} on {a} and {b}"),
        None => format!("type error: {op} on {a}"),
    };
    EvalError { message: msg }
}

/// Evaluates a binary operation.
///
/// Integer ops wrap; division/remainder by zero yield 0 (embedded-style
/// silent semantics keep fault-injection runs alive); pointers support
/// `Add`/`Sub` with integers and comparisons against pointers of the same
/// object.
///
/// # Errors
///
/// Returns [`EvalError`] on operand-type mismatches the machine cannot
/// interpret (e.g. float `Add`, pointer `Mul`).
#[inline]
pub fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    use Value::*;
    Ok(match (op, a, b) {
        (Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (Div, Int(x), Int(y)) => Int(if y == 0 { 0 } else { x.wrapping_div(y) }),
        (Rem, Int(x), Int(y)) => Int(if y == 0 { 0 } else { x.wrapping_rem(y) }),
        (And, Int(x), Int(y)) => Int(x & y),
        (Or, Int(x), Int(y)) => Int(x | y),
        (Xor, Int(x), Int(y)) => Int(x ^ y),
        (Shl, Int(x), Int(y)) => Int(x.wrapping_shl(y as u32 & 63)),
        (Shr, Int(x), Int(y)) => Int(x.wrapping_shr(y as u32 & 63)),
        (Min, Int(x), Int(y)) => Int(x.min(y)),
        (Max, Int(x), Int(y)) => Int(x.max(y)),
        (FAdd, Float(x), Float(y)) => Float(x + y),
        (FSub, Float(x), Float(y)) => Float(x - y),
        (FMul, Float(x), Float(y)) => Float(x * y),
        (FDiv, Float(x), Float(y)) => Float(if y == 0.0 { 0.0 } else { x / y }),
        (Eq, Int(x), Int(y)) => Int((x == y) as i64),
        (Ne, Int(x), Int(y)) => Int((x != y) as i64),
        (Lt, Int(x), Int(y)) => Int((x < y) as i64),
        (Le, Int(x), Int(y)) => Int((x <= y) as i64),
        (FLt, Float(x), Float(y)) => Int((x < y) as i64),
        (FLe, Float(x), Float(y)) => Int((x <= y) as i64),
        // Pointer arithmetic.
        (Add, Ptr { obj, idx }, Int(y)) => Ptr { obj, idx: idx.wrapping_add(y) },
        (Add, Int(x), Ptr { obj, idx }) => Ptr { obj, idx: idx.wrapping_add(x) },
        (Sub, Ptr { obj, idx }, Int(y)) => Ptr { obj, idx: idx.wrapping_sub(y) },
        (Sub, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) if o1 == o2 => {
            Int(i1.wrapping_sub(i2))
        }
        (Eq, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) => {
            Int((o1 == o2 && i1 == i2) as i64)
        }
        (Ne, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) => {
            Int((o1 != o2 || i1 != i2) as i64)
        }
        (Lt, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) if o1 == o2 => {
            Int((i1 < i2) as i64)
        }
        (Le, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) if o1 == o2 => {
            Int((i1 <= i2) as i64)
        }
        (_, a, b) => return Err(type_err(op.mnemonic(), &a, Some(&b))),
    })
}

/// Evaluates a unary operation.
///
/// # Errors
///
/// Returns [`EvalError`] on operand-type mismatches.
#[inline]
pub fn eval_un(op: UnOp, a: Value) -> Result<Value, EvalError> {
    use UnOp::*;
    use Value::*;
    Ok(match (op, a) {
        (Neg, Int(x)) => Int(x.wrapping_neg()),
        (Not, Int(x)) => Int(!x),
        (Abs, Int(x)) => Int(x.wrapping_abs()),
        (FNeg, Float(x)) => Float(-x),
        (FSqrt, Float(x)) => Float(x.abs().sqrt()),
        (IToF, Int(x)) => Float(x as f64),
        (FToI, Float(x)) => Int(if x.is_nan() {
            0
        } else {
            x.clamp(i64::MIN as f64, i64::MAX as f64) as i64
        }),
        (_, a) => return Err(type_err(op.mnemonic(), &a, None)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic() {
        assert_eq!(eval_bin(BinOp::Add, Value::Int(2), Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(eval_bin(BinOp::Div, Value::Int(7), Value::Int(0)).unwrap(), Value::Int(0));
        assert_eq!(
            eval_bin(BinOp::Mul, Value::Int(i64::MAX), Value::Int(2)).unwrap(),
            Value::Int(i64::MAX.wrapping_mul(2))
        );
        assert_eq!(eval_bin(BinOp::Min, Value::Int(3), Value::Int(-1)).unwrap(), Value::Int(-1));
    }

    #[test]
    fn comparisons_yield_bool_ints() {
        assert_eq!(eval_bin(BinOp::Lt, Value::Int(1), Value::Int(2)).unwrap(), Value::Int(1));
        assert_eq!(eval_bin(BinOp::Lt, Value::Int(2), Value::Int(2)).unwrap(), Value::Int(0));
        assert_eq!(
            eval_bin(BinOp::FLe, Value::Float(1.5), Value::Float(1.5)).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn pointer_arithmetic() {
        let p = Value::Ptr { obj: 3, idx: 4 };
        assert_eq!(
            eval_bin(BinOp::Add, p, Value::Int(2)).unwrap(),
            Value::Ptr { obj: 3, idx: 6 }
        );
        let q = Value::Ptr { obj: 3, idx: 10 };
        assert_eq!(eval_bin(BinOp::Sub, q, p).unwrap(), Value::Int(6));
        assert_eq!(eval_bin(BinOp::Lt, p, q).unwrap(), Value::Int(1));
    }

    #[test]
    fn cross_object_pointer_compare_is_error() {
        let p = Value::Ptr { obj: 1, idx: 0 };
        let q = Value::Ptr { obj: 2, idx: 0 };
        assert!(eval_bin(BinOp::Lt, p, q).is_err());
        // Eq/Ne are fine across objects.
        assert_eq!(eval_bin(BinOp::Eq, p, q).unwrap(), Value::Int(0));
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(eval_bin(BinOp::Add, Value::Float(1.0), Value::Int(1)).is_err());
        assert!(eval_bin(BinOp::FAdd, Value::Int(1), Value::Int(1)).is_err());
        assert!(eval_un(UnOp::FSqrt, Value::Int(4)).is_err());
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval_un(UnOp::Neg, Value::Int(5)).unwrap(), Value::Int(-5));
        assert_eq!(eval_un(UnOp::IToF, Value::Int(2)).unwrap(), Value::Float(2.0));
        assert_eq!(eval_un(UnOp::FToI, Value::Float(3.9)).unwrap(), Value::Int(3));
        assert_eq!(eval_un(UnOp::FToI, Value::Float(f64::NAN)).unwrap(), Value::Int(0));
        assert_eq!(eval_un(UnOp::Abs, Value::Int(-3)).unwrap(), Value::Int(3));
    }

    #[test]
    fn bit_flip_changes_and_restores() {
        let v = Value::Int(42);
        let f = v.flip_bit(3);
        assert_ne!(v, f);
        assert_eq!(f.flip_bit(3), v);
        let fl = Value::Float(1.5).flip_bit(52);
        assert_ne!(fl, Value::Float(1.5));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(Value::Ptr { obj: 0, idx: 0 }.truthy());
    }
}
