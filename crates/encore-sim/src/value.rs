//! Runtime values and operator evaluation.

use encore_ir::{BinOp, UnOp};
use std::fmt;

/// A runtime value held in a register or memory cell.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Pointer: object handle + cell index.
    Ptr {
        /// Index into the machine's object table.
        obj: usize,
        /// Cell index within the object (may be temporarily out of
        /// bounds; bounds are checked on dereference).
        idx: i64,
    },
}

impl Value {
    /// Integer zero — the initial value of registers and memory cells.
    pub const ZERO: Value = Value::Int(0);

    /// Is this value "truthy" for branches? (nonzero / non-null).
    #[inline]
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Ptr { .. } => true,
        }
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if any.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Flips bit `bit` (0–63) of the value's 64-bit representation —
    /// the classic single-event-upset fault. Equivalent to
    /// [`Value::flip_bits`] with a one-bit mask.
    pub fn flip_bit(self, bit: u8) -> Value {
        self.flip_bits(1u64 << (bit % 64))
    }

    /// XORs `mask` into the value's 64-bit representation — the general
    /// value-corruption fault (single- and multi-bit). Integers and
    /// floats flip their payload bits; pointers fold the mask into
    /// 16 bits ([`fold_mask16`]) and flip those bits of the cell index
    /// (corrupting an address computation; the corrupted index may land
    /// past the object bound — bounds are checked on dereference, so a
    /// stray becomes a symptom trap). An involution: applying the same
    /// mask twice restores the value, and composing two masks equals
    /// applying their XOR.
    pub fn flip_bits(self, mask: u64) -> Value {
        match self {
            Value::Int(v) => Value::Int(v ^ mask as i64),
            Value::Float(v) => Value::Float(f64::from_bits(v.to_bits() ^ mask)),
            Value::Ptr { obj, idx } => Value::Ptr { obj, idx: idx ^ fold_mask16(mask) as i64 },
        }
    }
}

/// XOR-folds a 64-bit corruption mask into 16 bits, preserving the
/// single-bit case exactly (`1 << b` folds to `1 << (b % 16)`, the
/// historical pointer-corruption behavior) and keeping the fold an
/// involution-compatible linear map: `fold(a ^ b) == fold(a) ^ fold(b)`.
/// Pointer cell indices are small, so corrupting within 16 bits keeps
/// strays near the object instead of teleporting them 2⁶³ cells away.
#[must_use]
pub fn fold_mask16(mask: u64) -> u64 {
    (mask ^ (mask >> 16) ^ (mask >> 32) ^ (mask >> 48)) & 0xFFFF
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ptr { obj, idx } => write!(f, "&obj{obj}[{idx}]"),
        }
    }
}

/// An evaluation error (type confusion, division misuse of pointers, …).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvalError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalError {}

fn type_err(op: &str, a: &Value, b: Option<&Value>) -> EvalError {
    let msg = match b {
        Some(b) => format!("type error: {op} on {a} and {b}"),
        None => format!("type error: {op} on {a}"),
    };
    EvalError { message: msg }
}

/// Evaluates a binary operation.
///
/// Integer ops wrap; division/remainder by zero yield 0 (embedded-style
/// silent semantics keep fault-injection runs alive); pointers support
/// `Add`/`Sub` with integers and comparisons against pointers of the same
/// object.
///
/// # Errors
///
/// Returns [`EvalError`] on operand-type mismatches the machine cannot
/// interpret (e.g. float `Add`, pointer `Mul`).
#[inline]
pub fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    use Value::*;
    Ok(match (op, a, b) {
        (Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (Div, Int(x), Int(y)) => Int(if y == 0 { 0 } else { x.wrapping_div(y) }),
        (Rem, Int(x), Int(y)) => Int(if y == 0 { 0 } else { x.wrapping_rem(y) }),
        (And, Int(x), Int(y)) => Int(x & y),
        (Or, Int(x), Int(y)) => Int(x | y),
        (Xor, Int(x), Int(y)) => Int(x ^ y),
        (Shl, Int(x), Int(y)) => Int(x.wrapping_shl(y as u32 & 63)),
        (Shr, Int(x), Int(y)) => Int(x.wrapping_shr(y as u32 & 63)),
        (Min, Int(x), Int(y)) => Int(x.min(y)),
        (Max, Int(x), Int(y)) => Int(x.max(y)),
        (FAdd, Float(x), Float(y)) => Float(x + y),
        (FSub, Float(x), Float(y)) => Float(x - y),
        (FMul, Float(x), Float(y)) => Float(x * y),
        (FDiv, Float(x), Float(y)) => Float(if y == 0.0 { 0.0 } else { x / y }),
        (Eq, Int(x), Int(y)) => Int((x == y) as i64),
        (Ne, Int(x), Int(y)) => Int((x != y) as i64),
        (Lt, Int(x), Int(y)) => Int((x < y) as i64),
        (Le, Int(x), Int(y)) => Int((x <= y) as i64),
        (FLt, Float(x), Float(y)) => Int((x < y) as i64),
        (FLe, Float(x), Float(y)) => Int((x <= y) as i64),
        // Pointer arithmetic.
        (Add, Ptr { obj, idx }, Int(y)) => Ptr { obj, idx: idx.wrapping_add(y) },
        (Add, Int(x), Ptr { obj, idx }) => Ptr { obj, idx: idx.wrapping_add(x) },
        (Sub, Ptr { obj, idx }, Int(y)) => Ptr { obj, idx: idx.wrapping_sub(y) },
        (Sub, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) if o1 == o2 => {
            Int(i1.wrapping_sub(i2))
        }
        (Eq, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) => {
            Int((o1 == o2 && i1 == i2) as i64)
        }
        (Ne, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) => {
            Int((o1 != o2 || i1 != i2) as i64)
        }
        (Lt, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) if o1 == o2 => {
            Int((i1 < i2) as i64)
        }
        (Le, Ptr { obj: o1, idx: i1 }, Ptr { obj: o2, idx: i2 }) if o1 == o2 => {
            Int((i1 <= i2) as i64)
        }
        (_, a, b) => return Err(type_err(op.mnemonic(), &a, Some(&b))),
    })
}

/// Evaluates a unary operation.
///
/// # Errors
///
/// Returns [`EvalError`] on operand-type mismatches.
#[inline]
pub fn eval_un(op: UnOp, a: Value) -> Result<Value, EvalError> {
    use UnOp::*;
    use Value::*;
    Ok(match (op, a) {
        (Neg, Int(x)) => Int(x.wrapping_neg()),
        (Not, Int(x)) => Int(!x),
        (Abs, Int(x)) => Int(x.wrapping_abs()),
        (FNeg, Float(x)) => Float(-x),
        (FSqrt, Float(x)) => Float(x.abs().sqrt()),
        (IToF, Int(x)) => Float(x as f64),
        (FToI, Float(x)) => Int(if x.is_nan() {
            0
        } else {
            x.clamp(i64::MIN as f64, i64::MAX as f64) as i64
        }),
        (_, a) => return Err(type_err(op.mnemonic(), &a, None)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic() {
        assert_eq!(eval_bin(BinOp::Add, Value::Int(2), Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(eval_bin(BinOp::Div, Value::Int(7), Value::Int(0)).unwrap(), Value::Int(0));
        assert_eq!(
            eval_bin(BinOp::Mul, Value::Int(i64::MAX), Value::Int(2)).unwrap(),
            Value::Int(i64::MAX.wrapping_mul(2))
        );
        assert_eq!(eval_bin(BinOp::Min, Value::Int(3), Value::Int(-1)).unwrap(), Value::Int(-1));
    }

    #[test]
    fn comparisons_yield_bool_ints() {
        assert_eq!(eval_bin(BinOp::Lt, Value::Int(1), Value::Int(2)).unwrap(), Value::Int(1));
        assert_eq!(eval_bin(BinOp::Lt, Value::Int(2), Value::Int(2)).unwrap(), Value::Int(0));
        assert_eq!(
            eval_bin(BinOp::FLe, Value::Float(1.5), Value::Float(1.5)).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn pointer_arithmetic() {
        let p = Value::Ptr { obj: 3, idx: 4 };
        assert_eq!(
            eval_bin(BinOp::Add, p, Value::Int(2)).unwrap(),
            Value::Ptr { obj: 3, idx: 6 }
        );
        let q = Value::Ptr { obj: 3, idx: 10 };
        assert_eq!(eval_bin(BinOp::Sub, q, p).unwrap(), Value::Int(6));
        assert_eq!(eval_bin(BinOp::Lt, p, q).unwrap(), Value::Int(1));
    }

    #[test]
    fn cross_object_pointer_compare_is_error() {
        let p = Value::Ptr { obj: 1, idx: 0 };
        let q = Value::Ptr { obj: 2, idx: 0 };
        assert!(eval_bin(BinOp::Lt, p, q).is_err());
        // Eq/Ne are fine across objects.
        assert_eq!(eval_bin(BinOp::Eq, p, q).unwrap(), Value::Int(0));
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(eval_bin(BinOp::Add, Value::Float(1.0), Value::Int(1)).is_err());
        assert!(eval_bin(BinOp::FAdd, Value::Int(1), Value::Int(1)).is_err());
        assert!(eval_un(UnOp::FSqrt, Value::Int(4)).is_err());
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval_un(UnOp::Neg, Value::Int(5)).unwrap(), Value::Int(-5));
        assert_eq!(eval_un(UnOp::IToF, Value::Int(2)).unwrap(), Value::Float(2.0));
        assert_eq!(eval_un(UnOp::FToI, Value::Float(3.9)).unwrap(), Value::Int(3));
        assert_eq!(eval_un(UnOp::FToI, Value::Float(f64::NAN)).unwrap(), Value::Int(0));
        assert_eq!(eval_un(UnOp::Abs, Value::Int(-3)).unwrap(), Value::Int(3));
    }

    #[test]
    fn bit_flip_changes_and_restores() {
        let v = Value::Int(42);
        let f = v.flip_bit(3);
        assert_ne!(v, f);
        assert_eq!(f.flip_bit(3), v);
        let fl = Value::Float(1.5).flip_bit(52);
        assert_ne!(fl, Value::Float(1.5));
    }

    #[test]
    fn bit_63_flips_the_sign_bit() {
        // The top bit is in range for every representation: integers
        // flip sign, floats flip their sign bit, and bit indices ≥ 64
        // wrap rather than shifting into UB.
        assert_eq!(Value::Int(1).flip_bit(63), Value::Int(1 ^ i64::MIN));
        assert_eq!(Value::Float(1.5).flip_bit(63), Value::Float(-1.5));
        assert_eq!(Value::Int(5).flip_bit(64), Value::Int(4)); // 64 % 64 == 0
        assert_eq!(
            Value::Int(i64::MIN).flip_bit(63),
            Value::Int(0),
            "flipping the sign bit of MIN yields zero"
        );
    }

    #[test]
    fn pointer_corruption_can_wrap_past_the_object_bound() {
        // A pointer's corrupted index is *not* clamped to the object:
        // bounds are checked on dereference, so a stray past the end is
        // exactly how address faults become symptom traps. Bits ≥ 16
        // fold back into the 16-bit index window.
        let p = Value::Ptr { obj: 3, idx: 4 };
        assert_eq!(p.flip_bit(15), Value::Ptr { obj: 3, idx: 4 ^ (1 << 15) });
        assert_eq!(p.flip_bit(16), Value::Ptr { obj: 3, idx: 5 }); // 16 folds to bit 0
        assert_eq!(p.flip_bit(63), Value::Ptr { obj: 3, idx: 4 ^ (1 << 15) });
        // The object handle is never corrupted (the fault is an address
        // *computation* fault, not a type-system escape).
        for bit in 0..64 {
            match p.flip_bit(bit) {
                Value::Ptr { obj, .. } => assert_eq!(obj, 3),
                other => panic!("flip changed representation: {other:?}"),
            }
        }
    }

    #[test]
    fn multi_bit_masks_compose_and_round_trip() {
        // flip_bits is an involution and composes by XOR — the property
        // the multi-bit model's determinism (and snapshot-resume
        // equivalence) leans on.
        let cases = [Value::Int(-77), Value::Float(3.25), Value::Ptr { obj: 1, idx: 9 }];
        let masks = [0x3u64, 0xF0F0, 1 << 63, 0xDEAD_BEEF_CAFE_F00D];
        for v in cases {
            for a in masks {
                assert_eq!(v.flip_bits(a).flip_bits(a), v, "involution failed: {v:?} {a:#x}");
                for b in masks {
                    assert_eq!(
                        v.flip_bits(a).flip_bits(b),
                        v.flip_bits(a ^ b),
                        "composition failed: {v:?} {a:#x} {b:#x}"
                    );
                }
            }
        }
        // A wrapped adjacent burst (rotate_left past bit 63) still
        // round-trips.
        let burst = 0b111u64.rotate_left(62);
        assert_eq!(Value::Int(12345).flip_bits(burst).flip_bits(burst), Value::Int(12345));
    }

    #[test]
    fn single_bit_flip_matches_folded_mask_flip() {
        // flip_bit(b) must stay exactly flip_bits(1 << b), including the
        // pointer fold — the bit-for-bit compatibility contract the
        // default campaign stream depends on.
        let p = Value::Ptr { obj: 2, idx: 100 };
        for bit in 0..64u8 {
            assert_eq!(p.flip_bit(bit), p.flip_bits(1u64 << bit));
            assert_eq!(fold_mask16(1u64 << bit), 1u64 << (bit % 16));
        }
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(Value::Ptr { obj: 0, idx: 0 }.truthy());
    }
}
