//! The pluggable transient-fault taxonomy.
//!
//! Everything the injector knows about *what a fault does* lives here.
//! A [`FaultModel`] owns plan sampling — each [`FaultPlan`] is a pure
//! function of the campaign seed and the injection index (the caller
//! derives the stream with [`SplitMix64::for_index`]), so campaigns
//! stay bit-reproducible at any worker count no matter which model is
//! selected. Each plan carries a [`FaultAction`] the interpreter
//! dispatches on at its injection sites; the action, not the model,
//! is what the machine executes, so replaying a single plan needs no
//! model object at all.
//!
//! The built-in models, selected by [`FaultModelKind`]:
//!
//! | model | action | provenance |
//! |---|---|---|
//! | `bit-flip` | flip one bit of a produced value | the paper's §4.2.1 SEU model |
//! | `multi-bit` | flip a 2–4 bit adjacent burst of a produced value | spatially-correlated upsets |
//! | `address` | corrupt the resolved cell index of a load/store | address-path faults |
//! | `control-flow` | take the wrong edge of a conditional branch | Khoshavi et al.'s control-flow errors |
//! | `power-failure` | execution dies mid-region; volatile registers are lost and the run restarts from the armed recovery block | Choi et al.'s intermittent computation |
//!
//! # Splice soundness per model
//!
//! The divergence splice's certification argument (DESIGN.md §12) is
//! *state-based*: a rule only fires at a probe where the run's complete
//! control state equals a golden snapshot's and no fault is pending, and
//! equal state implies an identical future under the deterministic
//! interpreter regardless of how the state was reached. That argument is
//! independent of the fault model — it holds for deferred corruptions
//! (an armed-but-never-fired wrong-edge or address fault keeps
//! `fault.is_some()` true forever, so no probe can certify, which is the
//! conservative direction) and for power failures (whose zeroed
//! volatile registers either get rewritten, restoring state equality, or
//! keep every probe failing). [`FaultModel::splice_sound`] encodes the
//! audit decision per model and [`FaultAction::splice_certifiable`]
//! gates the splice at run time; the differential tests
//! (`tests/fuzz_differential.rs`, `tests/sfi_campaign.rs`) enforce the
//! claim per model rather than trusting this comment.

use crate::rng::Rng;

/// What the injected fault does when it fires.
///
/// Sampled into a [`FaultPlan`] by a [`FaultModel`]; dispatched by the
/// interpreter at its injection sites.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultAction {
    /// XOR `mask` into the 64-bit representation of the value produced
    /// by the `inject_at`-th eligible instruction (single- or
    /// multi-bit value corruption; pointers fold the mask into their
    /// cell index — see [`Value::flip_bits`](crate::Value::flip_bits)).
    FlipBits {
        /// Bits to flip.
        mask: u64,
    },
    /// Arm at the `inject_at`-th eligible instruction; the next
    /// conditional branch then transfers along the *wrong* edge
    /// (then↔else). A run that executes no further branch never
    /// injects (the fault lands in branch-free straight-line code).
    WrongEdge,
    /// Arm at the `inject_at`-th eligible instruction; the next program
    /// load or store then XORs the (16-bit-folded) `mask` into its
    /// resolved cell index. Instrumentation accesses (checkpoint reads,
    /// restore writes) are exempt — the recovery log is assumed
    /// ECC-protected, as the paper assumes for its own metadata.
    CorruptAddress {
        /// Bits to flip in the resolved cell index (folded to 16 bits).
        mask: u64,
    },
    /// Power is cut immediately after the `inject_at`-th eligible
    /// instruction retires: detection is instantaneous, the volatile
    /// register file of the frame the recovery unwinds into is cleared
    /// (memory persists — an NVRAM machine), and execution restarts
    /// from the armed recovery block, whose `Restore` re-applies the
    /// checkpoint log. With no armed region the device simply dies:
    /// `DetectedUnrecoverable`.
    PowerFailure,
}

impl FaultAction {
    /// Whether the divergence splice may certify runs injected with
    /// this action. `true` for every built-in action (see the module
    /// docs for the argument); a future action that breaks the
    /// state-equality argument returns `false` here and
    /// [`SfiCampaign`](crate::SfiCampaign) falls back to full
    /// execution for its runs.
    #[must_use]
    pub fn splice_certifiable(self) -> bool {
        match self {
            FaultAction::FlipBits { .. }
            | FaultAction::WrongEdge
            | FaultAction::CorruptAddress { .. }
            | FaultAction::PowerFailure => true,
        }
    }
}

/// A planned transient fault: at the `inject_at`-th *eligible* dynamic
/// instruction (value-producing or store), perform `action`, detected
/// `detect_latency` dynamic instructions after the action fires (`l` of
/// Eq. 6). Deferred actions ([`FaultAction::WrongEdge`],
/// [`FaultAction::CorruptAddress`]) arm at the ordinal and fire at the
/// next matching event; their latency counts from the firing point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FaultPlan {
    /// Eligible-instruction ordinal to inject at.
    pub inject_at: u64,
    /// What the fault does.
    pub action: FaultAction,
    /// Detection latency in dynamic instructions (`l` of Eq. 6).
    pub detect_latency: u64,
}

impl FaultPlan {
    /// The legacy single-bit-flip plan: flip `bit` (0–63) of the value
    /// produced by the `inject_at`-th eligible instruction.
    #[must_use]
    pub fn bit_flip(inject_at: u64, bit: u8, detect_latency: u64) -> Self {
        Self {
            inject_at,
            action: FaultAction::FlipBits { mask: 1u64 << (bit % 64) },
            detect_latency,
        }
    }
}

/// A fault model: owns the sampling of [`FaultPlan`]s and the per-model
/// splice-soundness decision.
///
/// Implementations must keep [`FaultModel::sample`] a pure function of
/// the `rng` stream (and its `eligible_insts`/`dmax` arguments): the
/// campaign derives one independent stream per `(seed, index)` pair, so
/// purity here is what makes campaigns bit-reproducible at any worker
/// count and lets any single injection be replayed in isolation.
pub trait FaultModel: Sync {
    /// The selector this model implements.
    fn kind(&self) -> FaultModelKind;

    /// Samples one plan from `rng`.
    ///
    /// # Panics
    ///
    /// Panics when `eligible_insts == 0`: an empty golden run has no
    /// sample space. [`SfiCampaign::prepare`](crate::SfiCampaign)
    /// surfaces that case as
    /// [`GoldenRunError::NoEligibleInstructions`](crate::GoldenRunError)
    /// before any plan is drawn.
    fn sample(&self, rng: &mut dyn Rng, eligible_insts: u64, dmax: u64) -> FaultPlan;

    /// Whether every action this model samples is splice-certifiable
    /// (must agree with [`FaultAction::splice_certifiable`] on every
    /// plan the model can produce — enforced by test, not by trust).
    fn splice_sound(&self) -> bool;
}

/// The classic single-event-upset model: one uniformly chosen bit of
/// the value produced by a uniformly chosen eligible instruction,
/// detection latency uniform on `[0, dmax]`. The default model; its
/// draw order reproduces the pre-taxonomy injector bit for bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitFlip;

impl FaultModel for BitFlip {
    fn kind(&self) -> FaultModelKind {
        FaultModelKind::BitFlip
    }

    fn sample(&self, rng: &mut dyn Rng, eligible_insts: u64, dmax: u64) -> FaultPlan {
        FaultPlan {
            inject_at: rng.gen_below(eligible_insts),
            action: FaultAction::FlipBits { mask: 1u64 << rng.gen_below(64) },
            detect_latency: rng.gen_range_inclusive(0, dmax),
        }
    }

    fn splice_sound(&self) -> bool {
        true
    }
}

/// Spatially-correlated multi-bit upset: a burst of 2–4 adjacent bits
/// (wrapping at bit 63) of one produced value.
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiBitFlip;

impl FaultModel for MultiBitFlip {
    fn kind(&self) -> FaultModelKind {
        FaultModelKind::MultiBit
    }

    fn sample(&self, rng: &mut dyn Rng, eligible_insts: u64, dmax: u64) -> FaultPlan {
        let inject_at = rng.gen_below(eligible_insts);
        let width = 2 + rng.gen_below(3); // 2..=4 adjacent bits
        let pos = rng.gen_below(64) as u32;
        let mask = ((1u64 << width) - 1).rotate_left(pos);
        FaultPlan {
            inject_at,
            action: FaultAction::FlipBits { mask },
            detect_latency: rng.gen_range_inclusive(0, dmax),
        }
    }

    fn splice_sound(&self) -> bool {
        true
    }
}

/// Address-path fault: one bit of the resolved cell index of the first
/// program load/store after the arming point. Strays either land in
/// bounds (corrupting a neighbour cell) or trap — a symptom the
/// detection path converts into a rollback.
#[derive(Clone, Copy, Debug, Default)]
pub struct AddressCorruption;

impl FaultModel for AddressCorruption {
    fn kind(&self) -> FaultModelKind {
        FaultModelKind::Address
    }

    fn sample(&self, rng: &mut dyn Rng, eligible_insts: u64, dmax: u64) -> FaultPlan {
        FaultPlan {
            inject_at: rng.gen_below(eligible_insts),
            action: FaultAction::CorruptAddress { mask: 1u64 << rng.gen_below(16) },
            detect_latency: rng.gen_range_inclusive(0, dmax),
        }
    }

    fn splice_sound(&self) -> bool {
        true
    }
}

/// Control-flow error (Khoshavi et al.): the first conditional branch
/// after the arming point transfers along the wrong edge.
#[derive(Clone, Copy, Debug, Default)]
pub struct ControlFlowError;

impl FaultModel for ControlFlowError {
    fn kind(&self) -> FaultModelKind {
        FaultModelKind::ControlFlow
    }

    fn sample(&self, rng: &mut dyn Rng, eligible_insts: u64, dmax: u64) -> FaultPlan {
        FaultPlan {
            inject_at: rng.gen_below(eligible_insts),
            action: FaultAction::WrongEdge,
            detect_latency: rng.gen_range_inclusive(0, dmax),
        }
    }

    fn splice_sound(&self) -> bool {
        true
    }
}

/// Power failure (Choi et al.'s intermittent computation): the device
/// loses power at a uniformly chosen point, volatile registers are
/// lost, and the run restarts from the armed recovery block — Encore's
/// recovery blocks acting as a just-in-time checkpoint/rollback
/// mechanism. Detection is the event itself, so `detect_latency` is
/// always 0 (the latency histogram degenerates to bin 0).
#[derive(Clone, Copy, Debug, Default)]
pub struct PowerFailure;

impl FaultModel for PowerFailure {
    fn kind(&self) -> FaultModelKind {
        FaultModelKind::PowerFailure
    }

    fn sample(&self, rng: &mut dyn Rng, eligible_insts: u64, dmax: u64) -> FaultPlan {
        let _ = dmax; // a power failure has no detection latency
        FaultPlan {
            inject_at: rng.gen_below(eligible_insts),
            action: FaultAction::PowerFailure,
            detect_latency: 0,
        }
    }

    fn splice_sound(&self) -> bool {
        true
    }
}

/// Selector for the built-in [`FaultModel`]s — the `Copy + Eq` handle
/// that travels inside [`SfiConfig`](crate::SfiConfig), the CLI and
/// campaign reports, while the trait objects behind
/// [`FaultModelKind::model`] carry the behavior.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FaultModelKind {
    /// Single-bit value corruption (the default, the paper's §4.2.1).
    #[default]
    BitFlip,
    /// 2–4 adjacent-bit burst of one value.
    MultiBit,
    /// Load/store cell-index corruption.
    Address,
    /// Wrong-edge branch transfer.
    ControlFlow,
    /// Mid-region power loss with restart from the recovery block.
    PowerFailure,
}

impl FaultModelKind {
    /// Every model, in reporting order.
    pub const ALL: [FaultModelKind; 5] = [
        FaultModelKind::BitFlip,
        FaultModelKind::MultiBit,
        FaultModelKind::Address,
        FaultModelKind::ControlFlow,
        FaultModelKind::PowerFailure,
    ];

    /// The model implementation behind this selector.
    #[must_use]
    pub fn model(self) -> &'static dyn FaultModel {
        match self {
            FaultModelKind::BitFlip => &BitFlip,
            FaultModelKind::MultiBit => &MultiBitFlip,
            FaultModelKind::Address => &AddressCorruption,
            FaultModelKind::ControlFlow => &ControlFlowError,
            FaultModelKind::PowerFailure => &PowerFailure,
        }
    }

    /// Kebab-case name — the CLI value of `--fault-model`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultModelKind::BitFlip => "bit-flip",
            FaultModelKind::MultiBit => "multi-bit",
            FaultModelKind::Address => "address",
            FaultModelKind::ControlFlow => "control-flow",
            FaultModelKind::PowerFailure => "power-failure",
        }
    }

    /// Stable snake_case label (used as JSON keys in campaign reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultModelKind::BitFlip => "bit_flip",
            FaultModelKind::MultiBit => "multi_bit",
            FaultModelKind::Address => "address",
            FaultModelKind::ControlFlow => "control_flow",
            FaultModelKind::PowerFailure => "power_failure",
        }
    }

    /// Parses a model name as the CLI spells it (either the kebab-case
    /// [`FaultModelKind::name`] or the snake_case
    /// [`FaultModelKind::label`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultModelKind> {
        FaultModelKind::ALL
            .into_iter()
            .find(|k| s == k.name() || s == k.label())
    }
}

impl std::fmt::Display for FaultModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn names_and_labels_round_trip_through_parse() {
        for kind in FaultModelKind::ALL {
            assert_eq!(FaultModelKind::parse(kind.name()), Some(kind));
            assert_eq!(FaultModelKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.model().kind(), kind);
        }
        assert_eq!(FaultModelKind::parse("cosmic-ray"), None);
    }

    #[test]
    fn every_model_samples_within_bounds() {
        for kind in FaultModelKind::ALL {
            let model = kind.model();
            for index in 0..200u64 {
                let mut rng = SplitMix64::for_index(0xFA_017, index);
                let plan = model.sample(&mut rng, 1000, 50);
                assert!(plan.inject_at < 1000, "{kind}: {plan:?}");
                assert!(plan.detect_latency <= 50, "{kind}: {plan:?}");
                match (kind, plan.action) {
                    (FaultModelKind::BitFlip, FaultAction::FlipBits { mask }) => {
                        assert_eq!(mask.count_ones(), 1);
                    }
                    (FaultModelKind::MultiBit, FaultAction::FlipBits { mask }) => {
                        let w = mask.count_ones();
                        assert!((2..=4).contains(&w), "burst width {w}");
                        // Adjacent (modulo rotation): rotating the mask
                        // so its lowest set bit is at 0 leaves a
                        // contiguous low block.
                        let r = mask.rotate_right(mask.trailing_zeros() % 64);
                        assert!(
                            r == (1u64 << w) - 1 || mask.leading_zeros() == 0,
                            "non-contiguous burst {mask:#x}"
                        );
                    }
                    (FaultModelKind::Address, FaultAction::CorruptAddress { mask }) => {
                        assert_eq!(mask.count_ones(), 1);
                        assert!(mask < (1 << 16));
                    }
                    (FaultModelKind::ControlFlow, FaultAction::WrongEdge) => {}
                    (FaultModelKind::PowerFailure, FaultAction::PowerFailure) => {
                        assert_eq!(plan.detect_latency, 0);
                    }
                    (k, a) => panic!("{k} sampled unexpected action {a:?}"),
                }
            }
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_index() {
        for kind in FaultModelKind::ALL {
            let model = kind.model();
            for index in [0u64, 1, 17, 9999] {
                let a = model.sample(&mut SplitMix64::for_index(7, index), 500, 20);
                let b = model.sample(&mut SplitMix64::for_index(7, index), 500, 20);
                assert_eq!(a, b, "{kind} resampled differently at index {index}");
            }
        }
    }

    #[test]
    fn splice_soundness_claims_match_sampled_actions() {
        // The model-level audit decision must agree with the per-action
        // gate on every plan the model can produce — this is the "not
        // comments" half of the per-model splice audit.
        for kind in FaultModelKind::ALL {
            let model = kind.model();
            for index in 0..200u64 {
                let mut rng = SplitMix64::for_index(0x51_1CE, index);
                let plan = model.sample(&mut rng, 1000, 50);
                assert_eq!(
                    plan.action.splice_certifiable(),
                    model.splice_sound(),
                    "{kind}: action {:?} disagrees with the model-level claim",
                    plan.action
                );
            }
        }
    }

    #[test]
    fn bit_flip_helper_matches_action() {
        let p = FaultPlan::bit_flip(10, 5, 3);
        assert_eq!(p.inject_at, 10);
        assert_eq!(p.detect_latency, 3);
        assert_eq!(p.action, FaultAction::FlipBits { mask: 1 << 5 });
        // Bit indices fold modulo 64 like the legacy injector did.
        assert_eq!(FaultPlan::bit_flip(0, 64, 0).action, FaultAction::FlipBits { mask: 1 });
    }
}
