//! The IR interpreter with Encore's rollback-recovery runtime.
//!
//! One machine executes one entry-point call to completion, optionally:
//!
//! * collecting an execution [`Profile`] (training runs),
//! * collecting a dynamic memory-event trace (Figure 1),
//! * attributing dynamic instructions to regions (Figure 6),
//! * injecting a single transient fault and modelling its detection
//!   (Figure 8's SFI).
//!
//! ## Recovery semantics
//!
//! `SetRecovery` arms the current frame with the region's recovery block
//! and an empty checkpoint log; `CheckpointMem`/`CheckpointReg` append
//! undo entries; when a fault is *detected* (latency expiring, or a
//! symptom trap while a fault is live) the machine unwinds to the nearest
//! frame with an armed recovery, redirects control to the recovery block,
//! whose `Restore` applies the log in reverse and jumps back to the
//! region header. If no frame is armed, the detection is unrecoverable —
//! exactly the paper's "no hardware support, no Encore region" case.

use crate::externs::Externs;
use crate::memory::Memory;
use crate::value::{eval_bin, eval_un, Value};
use encore_core::RegionMap;
use encore_analysis::Profile;
use encore_ir::{
    AddrExpr, BlockId, FuncId, Inst, MemBase, MemEvent, Module, ObjKind, Offset, Operand, Reg,
    RegionId, Terminator,
};
use std::collections::BTreeMap;

/// Why a run stopped abnormally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TrapKind {
    /// Memory access violation (out of bounds / dangling handle).
    Memory(String),
    /// Operator/type error.
    Eval(String),
    /// The fuel budget was exhausted (livelock or runaway loop).
    FuelExhausted,
    /// A fault was detected but no recovery region was armed.
    DetectedUnrecoverable,
}

/// An abnormal termination.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trap {
    /// Category.
    pub kind: TrapKind,
    /// Dynamic instruction count at the trap.
    pub at: u64,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trap at dynamic instruction {}: {:?}", self.at, self.kind)
    }
}

impl std::error::Error for Trap {}

/// A planned transient fault: flip `bit` of the value produced by the
/// `inject_at`-th *eligible* dynamic instruction (value-producing or
/// store), detected `detect_latency` dynamic instructions later.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Eligible-instruction ordinal to corrupt.
    pub inject_at: u64,
    /// Bit to flip (0–63).
    pub bit: u8,
    /// Detection latency in dynamic instructions (`l` of Eq. 6).
    pub detect_latency: u64,
}

/// What happened to the planned fault during the run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultTelemetry {
    /// The fault was injected.
    pub injected: bool,
    /// Detection fired (latency expiry or symptom trap).
    pub detected: bool,
    /// A rollback to a recovery block happened.
    pub rolled_back: bool,
    /// The region rolled back to, if any.
    pub rollback_region: Option<RegionId>,
    /// Function and block executing when the fault was injected.
    pub inject_site: Option<(FuncId, BlockId)>,
}

/// Execution options.
#[derive(Clone, PartialEq, Debug)]
pub struct RunConfig {
    /// Maximum dynamic instructions before a
    /// [`TrapKind::FuelExhausted`] trap.
    pub fuel: u64,
    /// Collect a block/edge [`Profile`].
    pub collect_profile: bool,
    /// Collect a [`MemEvent`] trace.
    pub collect_trace: bool,
    /// Attribute dynamic instructions to regions (needs a region map).
    pub region_accounting: bool,
    /// Seed for the deterministic extern environment.
    pub extern_seed: u64,
    /// Fault to inject, if any.
    pub fault: Option<FaultPlan>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            fuel: 200_000_000,
            collect_profile: false,
            collect_trace: false,
            region_accounting: false,
            extern_seed: 0x5EED,
            fault: None,
        }
    }
}

/// The outcome of a run.
#[derive(Clone, PartialEq, Debug)]
pub struct RunResult {
    /// Return value of the entry call (if the run completed).
    pub ret: Option<Value>,
    /// `true` if the program ran to completion (no trap).
    pub completed: bool,
    /// The trap, when `completed` is false.
    pub trap: Option<Trap>,
    /// Total dynamic instructions retired.
    pub dyn_insts: u64,
    /// Dynamic instructions attributable to Encore instrumentation.
    pub instr_dyn_insts: u64,
    /// Observable output channel.
    pub output: Vec<i64>,
    /// Final global memory (observable state).
    pub globals: Vec<Vec<Value>>,
    /// Training profile (when requested).
    pub profile: Option<Profile>,
    /// Memory-event trace (when requested).
    pub trace: Option<Vec<MemEvent>>,
    /// Dynamic instructions per region (when requested).
    pub region_dyn: BTreeMap<RegionId, u64>,
    /// Number of fault-eligible (value-producing) dynamic instructions —
    /// the sample space for uniform fault injection.
    pub eligible_insts: u64,
    /// Largest checkpoint-log footprint observed for any single region
    /// activation, in bytes (memory entries 16 B, register entries 8 B) —
    /// the *measured* runtime analogue of Figure 7b / Table 1 storage.
    pub ckpt_high_water_bytes: u64,
    /// Fault telemetry.
    pub fault: FaultTelemetry,
}

impl RunResult {
    /// Architecturally observable state equality: return value, output
    /// channel and final global memory.
    pub fn observably_equal(&self, other: &RunResult) -> bool {
        self.ret == other.ret && self.output == other.output && self.globals == other.globals
    }
}

struct RecoveryState {
    region: RegionId,
    recovery_block: BlockId,
    log: Vec<CkptEntry>,
}

enum CkptEntry {
    Mem { obj: usize, idx: i64, val: Value },
    Reg { reg: Reg, val: Value },
}

struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    regs: Vec<Value>,
    slots: Vec<usize>,
    recovery: Option<RecoveryState>,
    ret_dst: Option<Reg>,
}

struct FaultState {
    plan: FaultPlan,
    injected: bool,
    detect_at: Option<u64>,
    detected: bool,
}

/// The interpreter.
pub struct Machine<'a> {
    module: &'a Module,
    map: Option<&'a RegionMap>,
    mem: Memory,
    frames: Vec<Frame>,
    externs: Externs,
    dyn_insts: u64,
    instr_dyn: u64,
    frame_seq: u32,
    heap_seq: u32,
    last_alloc_of_site: BTreeMap<u32, usize>,
    profile: Option<Profile>,
    trace: Option<Vec<MemEvent>>,
    region_dyn: BTreeMap<RegionId, u64>,
    region_accounting: bool,
    fault: Option<FaultState>,
    telemetry: FaultTelemetry,
    eligible_seen: u64,
    ckpt_high_water: u64,
    fuel: u64,
    final_ret: Option<Value>,
}

impl std::fmt::Debug for Machine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("module", &self.module.name)
            .field("dyn_insts", &self.dyn_insts)
            .field("frames", &self.frames.len())
            .finish_non_exhaustive()
    }
}

/// Runs `entry(args)` on `module` under `config`. `map` supplies the
/// recovery metadata for instrumented modules (pass `None` for plain
/// ones).
pub fn run_function(
    module: &Module,
    map: Option<&RegionMap>,
    entry: FuncId,
    args: &[Value],
    config: &RunConfig,
) -> RunResult {
    let mut m = Machine::new(module, map, config);
    m.call(entry, args, None);
    m.run(config)
}

impl<'a> Machine<'a> {
    fn new(module: &'a Module, map: Option<&'a RegionMap>, config: &RunConfig) -> Self {
        Self {
            module,
            map,
            mem: Memory::for_module(module),
            frames: Vec::new(),
            externs: Externs::new(config.extern_seed),
            dyn_insts: 0,
            instr_dyn: 0,
            frame_seq: 0,
            heap_seq: 0,
            last_alloc_of_site: BTreeMap::new(),
            profile: config.collect_profile.then(|| Profile::empty_for(module)),
            trace: config.collect_trace.then(Vec::new),
            region_dyn: BTreeMap::new(),
            region_accounting: config.region_accounting,
            fault: config.fault.map(|plan| FaultState {
                plan,
                injected: false,
                detect_at: None,
                detected: false,
            }),
            telemetry: FaultTelemetry::default(),
            eligible_seen: 0,
            ckpt_high_water: 0,
            fuel: config.fuel,
            final_ret: None,
        }
    }

    fn call(&mut self, func: FuncId, args: &[Value], ret_dst: Option<Reg>) {
        let f = self.module.func(func);
        let mut regs = vec![Value::ZERO; f.reg_count as usize];
        for (i, a) in args.iter().enumerate().take(f.param_count as usize) {
            regs[i] = *a;
        }
        let frame_no = self.frame_seq;
        self.frame_seq += 1;
        let slots = f
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                self.mem.alloc(
                    ObjKind::Slot { frame: frame_no, slot: i as u32 },
                    s.cells as usize,
                )
            })
            .collect();
        self.note_block_entry(func, f.entry());
        self.frames.push(Frame {
            func,
            block: f.entry(),
            ip: 0,
            regs,
            slots,
            recovery: None,
            ret_dst,
        });
    }

    fn note_block_entry(&mut self, func: FuncId, block: BlockId) {
        if let Some(p) = &mut self.profile {
            *p.func_mut(func).block_counts.entry(block).or_insert(0) += 1;
        }
    }

    fn note_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        if let Some(p) = &mut self.profile {
            *p.func_mut(func).edge_counts.entry((from, to)).or_insert(0) += 1;
        }
    }

    fn charge(&mut self, func: FuncId, block: BlockId, cost: u64, instrumentation: bool) {
        self.dyn_insts += cost;
        if instrumentation {
            self.instr_dyn += cost;
        }
        if let Some(p) = &mut self.profile {
            p.func_mut(func).dyn_insts += cost;
            p.total_dyn_insts += cost;
        }
        if self.region_accounting {
            if let Some(map) = self.map {
                if let Some(rid) = map.region_of(func, block) {
                    *self.region_dyn.entry(rid).or_insert(0) += cost;
                }
            }
        }
    }

    fn operand(&self, op: &Operand) -> Value {
        let frame = self.frames.last().expect("no frame");
        match op {
            Operand::Reg(r) => frame.regs[r.index()],
            Operand::ImmI(v) => Value::Int(*v),
            Operand::ImmF(v) => Value::Float(*v),
        }
    }

    fn set_reg(&mut self, r: Reg, v: Value) {
        let frame = self.frames.last_mut().expect("no frame");
        frame.regs[r.index()] = v;
    }

    /// Resolves an address expression to `(object handle, cell index)`.
    fn resolve(&self, addr: &AddrExpr) -> Result<(usize, i64), Trap> {
        let frame = self.frames.last().expect("no frame");
        let (obj, base_idx) = match addr.base {
            MemBase::Global(g) => (self.mem.global_handle(g.raw()), 0i64),
            MemBase::Slot(s) => {
                let h = *frame.slots.get(s.index()).ok_or_else(|| Trap {
                    kind: TrapKind::Memory(format!("undeclared slot {s}")),
                    at: self.dyn_insts,
                })?;
                (h, 0)
            }
            MemBase::Heap(h) => {
                let handle =
                    self.last_alloc_of_site.get(&h.raw()).copied().ok_or_else(|| Trap {
                        kind: TrapKind::Memory(format!("heap site {h} has no allocation")),
                        at: self.dyn_insts,
                    })?;
                (handle, 0)
            }
            MemBase::Reg(r) => match frame.regs[r.index()] {
                Value::Ptr { obj, idx } => (obj, idx),
                other => {
                    return Err(Trap {
                        kind: TrapKind::Memory(format!(
                            "register {r} does not hold a pointer (holds {other})"
                        )),
                        at: self.dyn_insts,
                    })
                }
            },
        };
        let off = match addr.offset {
            Offset::Const(c) => c,
            Offset::Scaled { index, scale, disp } => match frame.regs[index.index()] {
                Value::Int(i) => i.wrapping_mul(scale).wrapping_add(disp),
                other => {
                    return Err(Trap {
                        kind: TrapKind::Memory(format!(
                            "index register {index} is not an integer (holds {other})"
                        )),
                        at: self.dyn_insts,
                    })
                }
            },
        };
        Ok((obj, base_idx.wrapping_add(off)))
    }

    /// Applies the fault plan to a candidate value if this is the chosen
    /// eligible instruction. Eligible instructions are counted even
    /// without a fault plan so golden runs report the sample space.
    fn maybe_inject(&mut self, v: Value) -> Value {
        let ordinal = self.eligible_seen;
        self.eligible_seen += 1;
        let site = self.frames.last().map(|fr| (fr.func, fr.block));
        let Some(f) = &mut self.fault else { return v };
        if !f.injected && ordinal == f.plan.inject_at {
            f.injected = true;
            f.detect_at = Some(self.dyn_insts + f.plan.detect_latency);
            self.telemetry.injected = true;
            self.telemetry.inject_site = site;
            return v.flip_bit(f.plan.bit);
        }
        v
    }

    /// True when a live (injected, undetected) fault should now be
    /// detected.
    fn detection_due(&self) -> bool {
        match &self.fault {
            Some(f) if f.injected && !f.detected => {
                f.detect_at.map(|d| self.dyn_insts >= d).unwrap_or(false)
            }
            _ => false,
        }
    }

    /// Fault detection fired: unwind to the nearest armed frame and
    /// redirect to its recovery block.
    ///
    /// Returns `Err` when no frame is armed (unrecoverable).
    fn trigger_recovery(&mut self) -> Result<(), Trap> {
        if let Some(f) = &mut self.fault {
            f.detected = true;
        }
        self.telemetry.detected = true;
        // Find the deepest armed frame.
        while let Some(frame) = self.frames.last() {
            if let Some(rec) = &frame.recovery {
                let (region, block) = (rec.region, rec.recovery_block);
                let frame = self.frames.last_mut().expect("frame");
                frame.block = block;
                frame.ip = 0;
                self.telemetry.rolled_back = true;
                self.telemetry.rollback_region = Some(region);
                // The fault is consumed: re-execution is fault-free.
                self.fault = None;
                return Ok(());
            }
            self.frames.pop();
        }
        Err(Trap { kind: TrapKind::DetectedUnrecoverable, at: self.dyn_insts })
    }

    /// Records a memory-site footprint into the profile (for the
    /// profile-guided alias oracle).
    fn note_footprint(&mut self, func: FuncId, at: encore_ir::InstRef, obj: usize, idx: i64) {
        if self.profile.is_some() {
            let cell = self.mem.cell_of(obj, idx);
            if let Some(p) = &mut self.profile {
                p.mem.record(encore_analysis::SiteRef { func, at }, cell);
            }
        }
    }

    fn trace_mem(&mut self, kind: encore_ir::AccessKind, obj: usize, idx: i64) {
        if let Some(t) = &mut self.trace {
            let cell = self.mem.cell_of(obj, idx);
            let at = self.dyn_insts;
            t.push(MemEvent { kind, cell, at });
        }
    }

    /// Executes one instruction or terminator.
    ///
    /// Returns `Ok(true)` while the program is still running.
    fn step(&mut self) -> Result<bool, Trap> {
        if self.dyn_insts >= self.fuel {
            return Err(Trap { kind: TrapKind::FuelExhausted, at: self.dyn_insts });
        }
        if self.detection_due() {
            self.trigger_recovery()?;
        }
        let Some(frame) = self.frames.last() else {
            return Ok(false);
        };
        let (func_id, block_id, ip) = (frame.func, frame.block, frame.ip);
        let func = self.module.func(func_id);
        let block = func.block(block_id);

        if ip < block.insts.len() {
            // Clone the instruction handle cheaply via pointer; Inst is
            // small except Call args — clone is acceptable here.
            let inst = block.insts[ip].clone();
            self.charge(func_id, block_id, inst.cost(), inst.is_instrumentation());
            self.frames.last_mut().expect("frame").ip += 1;
            // A symptom trap here propagates to `run`, which treats it
            // as detection (ReStore/Shoestring-style anomalous behavior)
            // while a fault is live.
            self.exec_inst(func_id, encore_ir::InstRef::new(block_id, ip), &inst)?;
            Ok(true)
        } else {
            let term = block.term.clone().ok_or_else(|| Trap {
                kind: TrapKind::Eval(format!("unterminated block {block_id}")),
                at: self.dyn_insts,
            })?;
            self.charge(func_id, block_id, 1, false);
            self.exec_term(func_id, block_id, &term)?;
            Ok(!self.frames.is_empty())
        }
    }

    fn exec_inst(
        &mut self,
        func_id: FuncId,
        at: encore_ir::InstRef,
        inst: &Inst,
    ) -> Result<(), Trap> {
        match inst {
            Inst::Bin { op, dst, lhs, rhs } => {
                let a = self.operand(lhs);
                let b = self.operand(rhs);
                let v = eval_bin(*op, a, b).map_err(|e| Trap {
                    kind: TrapKind::Eval(e.message),
                    at: self.dyn_insts,
                })?;
                let v = self.maybe_inject(v);
                self.set_reg(*dst, v);
            }
            Inst::Un { op, dst, src } => {
                let a = self.operand(src);
                let v = eval_un(*op, a).map_err(|e| Trap {
                    kind: TrapKind::Eval(e.message),
                    at: self.dyn_insts,
                })?;
                let v = self.maybe_inject(v);
                self.set_reg(*dst, v);
            }
            Inst::Mov { dst, src } => {
                let v = self.operand(src);
                let v = self.maybe_inject(v);
                self.set_reg(*dst, v);
            }
            Inst::Load { dst, addr } => {
                let (obj, idx) = self.resolve(addr)?;
                let v = self.mem.read(obj, idx).map_err(|e| Trap {
                    kind: TrapKind::Memory(e.message),
                    at: self.dyn_insts,
                })?;
                self.trace_mem(encore_ir::AccessKind::Load, obj, idx);
                self.note_footprint(func_id, at, obj, idx);
                let v = self.maybe_inject(v);
                self.set_reg(*dst, v);
            }
            Inst::Store { addr, src } => {
                let (obj, idx) = self.resolve(addr)?;
                let v = self.operand(src);
                let v = self.maybe_inject(v);
                self.mem.write(obj, idx, v).map_err(|e| Trap {
                    kind: TrapKind::Memory(e.message),
                    at: self.dyn_insts,
                })?;
                self.trace_mem(encore_ir::AccessKind::Store, obj, idx);
                self.note_footprint(func_id, at, obj, idx);
            }
            Inst::Lea { dst, addr } => {
                let (obj, idx) = self.resolve(addr)?;
                self.set_reg(*dst, Value::Ptr { obj, idx });
            }
            Inst::Alloc { dst, site, size } => {
                let n = self
                    .operand(size)
                    .as_int()
                    .filter(|n| *n >= 0)
                    .ok_or_else(|| Trap {
                        kind: TrapKind::Memory("alloc size must be a non-negative int".into()),
                        at: self.dyn_insts,
                    })?;
                let handle = self.mem.alloc(ObjKind::Heap(self.heap_seq), n as usize);
                self.heap_seq += 1;
                self.last_alloc_of_site.insert(site.raw(), handle);
                self.set_reg(*dst, Value::Ptr { obj: handle, idx: 0 });
            }
            Inst::Call { callee, dst, args } => {
                let vals: Vec<Value> = args.iter().map(|a| self.operand(a)).collect();
                self.call(*callee, &vals, *dst);
            }
            Inst::CallExt { name, dst, args, .. } => {
                let vals: Vec<Value> = args.iter().map(|a| self.operand(a)).collect();
                let r = self.externs.call(name, &vals).map_err(|e| Trap {
                    kind: TrapKind::Eval(e.message),
                    at: self.dyn_insts,
                })?;
                if let Some(d) = dst {
                    let r = self.maybe_inject(r);
                    self.set_reg(*d, r);
                }
            }
            Inst::SetRecovery { region } => {
                let info = self
                    .map
                    .and_then(|m| m.regions.get(region.index()))
                    .ok_or_else(|| Trap {
                        kind: TrapKind::Eval(format!("SetRecovery for unknown {region}")),
                        at: self.dyn_insts,
                    })?;
                let rb = info.recovery_block.ok_or_else(|| Trap {
                    kind: TrapKind::Eval(format!("{region} has no recovery block")),
                    at: self.dyn_insts,
                })?;
                let frame = self.frames.last_mut().expect("frame");
                frame.recovery = Some(RecoveryState {
                    region: *region,
                    recovery_block: rb,
                    log: Vec::new(),
                });
            }
            Inst::CheckpointMem { addr } => {
                let (obj, idx) = self.resolve(addr)?;
                let val = self.mem.read(obj, idx).map_err(|e| Trap {
                    kind: TrapKind::Memory(e.message),
                    at: self.dyn_insts,
                })?;
                let frame = self.frames.last_mut().expect("frame");
                if let Some(rec) = &mut frame.recovery {
                    rec.log.push(CkptEntry::Mem { obj, idx, val });
                    let bytes = rec
                        .log
                        .iter()
                        .map(|e| match e {
                            CkptEntry::Mem { .. } => 16,
                            CkptEntry::Reg { .. } => 8,
                        })
                        .sum();
                    self.ckpt_high_water = self.ckpt_high_water.max(bytes);
                }
            }
            Inst::CheckpointReg { reg } => {
                let frame = self.frames.last_mut().expect("frame");
                let val = frame.regs[reg.index()];
                if let Some(rec) = &mut frame.recovery {
                    rec.log.push(CkptEntry::Reg { reg: *reg, val });
                    let bytes = rec
                        .log
                        .iter()
                        .map(|e| match e {
                            CkptEntry::Mem { .. } => 16,
                            CkptEntry::Reg { .. } => 8,
                        })
                        .sum();
                    self.ckpt_high_water = self.ckpt_high_water.max(bytes);
                }
            }
            Inst::Restore { region } => {
                let frame = self.frames.last_mut().expect("frame");
                let Some(rec) = &mut frame.recovery else {
                    return Err(Trap {
                        kind: TrapKind::Eval(format!("Restore {region} with no armed recovery")),
                        at: self.dyn_insts,
                    });
                };
                let log = std::mem::take(&mut rec.log);
                for entry in log.into_iter().rev() {
                    match entry {
                        CkptEntry::Reg { reg, val } => {
                            self.frames.last_mut().expect("frame").regs[reg.index()] = val;
                        }
                        CkptEntry::Mem { obj, idx, val } => {
                            self.mem.write(obj, idx, val).map_err(|e| Trap {
                                kind: TrapKind::Memory(e.message),
                                at: self.dyn_insts,
                            })?;
                        }
                    }
                }
            }
        }
        let _ = func_id;
        Ok(())
    }

    fn exec_term(
        &mut self,
        func_id: FuncId,
        block_id: BlockId,
        term: &Terminator,
    ) -> Result<(), Trap> {
        match term {
            Terminator::Jump(t) => {
                self.note_edge(func_id, block_id, *t);
                self.note_block_entry(func_id, *t);
                let frame = self.frames.last_mut().expect("frame");
                frame.block = *t;
                frame.ip = 0;
            }
            Terminator::Branch { cond, then_bb, else_bb } => {
                let c = self.operand(cond);
                let target = if c.truthy() { *then_bb } else { *else_bb };
                self.note_edge(func_id, block_id, target);
                self.note_block_entry(func_id, target);
                let frame = self.frames.last_mut().expect("frame");
                frame.block = target;
                frame.ip = 0;
            }
            Terminator::Ret(v) => {
                let val = v.as_ref().map(|op| self.operand(op));
                let frame = self.frames.pop().expect("frame");
                if let Some(p) = &mut self.profile {
                    p.func_mut(func_id).invocations += 1;
                }
                match self.frames.last_mut() {
                    Some(caller) => {
                        if let Some(dst) = frame.ret_dst {
                            caller.regs[dst.index()] = val.unwrap_or(Value::ZERO);
                        }
                    }
                    None => self.final_ret = val,
                }
            }
        }
        Ok(())
    }

    fn run(mut self, _config: &RunConfig) -> RunResult {
        let mut trap: Option<Trap> = None;
        loop {
            match self.step() {
                Ok(true) => continue,
                Ok(false) => break,
                Err(t) => {
                    // Symptom-based detection: a trap while an undetected
                    // fault is live triggers the recovery path instead of
                    // killing the run.
                    let fault_live = self
                        .fault
                        .as_ref()
                        .map(|f| f.injected && !f.detected)
                        .unwrap_or(false);
                    if fault_live && !matches!(t.kind, TrapKind::FuelExhausted) {
                        match self.trigger_recovery() {
                            Ok(()) => continue,
                            Err(t2) => {
                                trap = Some(t2);
                                break;
                            }
                        }
                    }
                    trap = Some(t);
                    break;
                }
            }
        }
        RunResult {
            ret: self.final_ret,
            completed: trap.is_none(),
            trap,
            dyn_insts: self.dyn_insts,
            instr_dyn_insts: self.instr_dyn,
            output: self.externs.output,
            globals: self.mem.globals_snapshot(),
            profile: self.profile,
            trace: self.trace,
            region_dyn: self.region_dyn,
            eligible_insts: self.eligible_seen,
            ckpt_high_water_bytes: self.ckpt_high_water,
            fault: self.telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{AddrExpr, BinOp, ExtEffect, ModuleBuilder};

    fn run_simple(m: &Module, entry: &str, args: &[Value]) -> RunResult {
        let fid = m.func_by_name(entry).expect("entry exists");
        run_function(m, None, fid, args, &RunConfig::default())
    }

    #[test]
    fn arithmetic_and_return() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("add", 2, |f| {
            let a = f.param(0);
            let b = f.param(1);
            let s = f.bin(BinOp::Add, a.into(), b.into());
            f.ret(Some(s.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "add", &[Value::Int(2), Value::Int(40)]);
        assert!(r.completed);
        assert_eq!(r.ret, Some(Value::Int(42)));
        assert!(r.dyn_insts >= 2);
    }

    #[test]
    fn loop_sums_correctly() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("sum", 1, |f| {
            let n = f.param(0);
            let acc = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.bin_to(acc, BinOp::Add, acc.into(), i.into());
            });
            f.ret(Some(acc.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "sum", &[Value::Int(10)]);
        assert_eq!(r.ret, Some(Value::Int(45)));
    }

    #[test]
    fn memory_and_globals_observable() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 2);
        mb.function("f", 0, |f| {
            f.store(AddrExpr::global(g, 0), Operand::ImmI(7));
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::global(g, 1), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let r = run_simple(&m, "f", &[]);
        assert_eq!(r.globals[0][0], Value::Int(7));
        assert_eq!(r.globals[0][1], Value::Int(7));
    }

    #[test]
    fn calls_and_slots() {
        let mut mb = ModuleBuilder::new("m");
        let sq = mb.function("sq", 1, |f| {
            let p = f.param(0);
            let r = f.bin(BinOp::Mul, p.into(), p.into());
            f.ret(Some(r.into()));
        });
        mb.function("main", 0, |f| {
            let s = f.slot(2);
            let v = f.call(sq, &[Operand::ImmI(6)]);
            f.store(AddrExpr::slot(s, 0), v.into());
            let w = f.load(AddrExpr::slot(s, 0));
            f.ret(Some(w.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "main", &[]);
        assert_eq!(r.ret, Some(Value::Int(36)));
    }

    #[test]
    fn recursion_works() {
        let mut mb = ModuleBuilder::new("m");
        let fib = mb.declare("fib", 1);
        mb.define(fib, |f| {
            let n = f.param(0);
            let base = f.bin(BinOp::Lt, n.into(), Operand::ImmI(2));
            f.if_then(base.into(), |f| f.ret(Some(n.into())));
            let n1 = f.bin(BinOp::Sub, n.into(), Operand::ImmI(1));
            let n2 = f.bin(BinOp::Sub, n.into(), Operand::ImmI(2));
            let a = f.call(fib, &[n1.into()]);
            let b = f.call(fib, &[n2.into()]);
            let s = f.bin(BinOp::Add, a.into(), b.into());
            f.ret(Some(s.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "fib", &[Value::Int(10)]);
        assert_eq!(r.ret, Some(Value::Int(55)));
    }

    #[test]
    fn heap_alloc_and_pointers() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let p = f.alloc(Operand::ImmI(4));
            f.store(AddrExpr::reg(p, 2), Operand::ImmI(11));
            let q = f.bin(BinOp::Add, p.into(), Operand::ImmI(2));
            let v = f.load(AddrExpr::reg(q, 0));
            f.ret(Some(v.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "f", &[]);
        assert_eq!(r.ret, Some(Value::Int(11)));
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        mb.function("f", 0, |f| {
            f.store(AddrExpr::global(g, 5), Operand::ImmI(1));
            f.ret(None);
        });
        let m = mb.finish();
        let r = run_simple(&m, "f", &[]);
        assert!(!r.completed);
        assert!(matches!(r.trap.as_ref().unwrap().kind, TrapKind::Memory(_)));
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let header = f.add_block();
            f.jump(header);
            f.switch_to(header);
            f.jump(header);
        });
        let m = mb.finish();
        let fid = m.func_by_name("f").unwrap();
        let config = RunConfig { fuel: 1000, ..Default::default() };
        let r = run_function(&m, None, fid, &[], &config);
        assert!(!r.completed);
        assert_eq!(r.trap.unwrap().kind, TrapKind::FuelExhausted);
    }

    #[test]
    fn profile_counts_blocks_and_edges() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let acc = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.bin_to(acc, BinOp::Add, acc.into(), i.into());
            });
            f.ret(Some(acc.into()));
        });
        let m = mb.finish();
        let fid = m.func_by_name("f").unwrap();
        let config = RunConfig { collect_profile: true, ..Default::default() };
        let r = run_function(&m, None, fid, &[Value::Int(5)], &config);
        let p = r.profile.expect("profile collected");
        let fp = p.func(fid);
        // Entry once; loop header 6 times (5 iterations + final check);
        // body 5 times.
        assert_eq!(fp.count(BlockId::new(0)), 1);
        assert_eq!(fp.count(BlockId::new(1)), 6);
        assert_eq!(fp.count(BlockId::new(2)), 5);
        assert_eq!(fp.invocations, 1);
        assert_eq!(p.total_dyn_insts, r.dyn_insts);
    }

    #[test]
    fn trace_records_memory_events() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 2);
        mb.function("f", 0, |f| {
            f.store(AddrExpr::global(g, 0), Operand::ImmI(1));
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::global(g, 1), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let fid = m.func_by_name("f").unwrap();
        let config = RunConfig { collect_trace: true, ..Default::default() };
        let r = run_function(&m, None, fid, &[], &config);
        let t = r.trace.expect("trace collected");
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].kind, encore_ir::AccessKind::Store);
        assert_eq!(t[1].kind, encore_ir::AccessKind::Load);
        assert_eq!(t[0].cell, t[1].cell);
    }

    #[test]
    fn externs_flow_through() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let x = f.call_ext("pow", &[Operand::ImmF(2.0), Operand::ImmF(3.0)], ExtEffect::Pure);
            let i = f.un(encore_ir::UnOp::FToI, x.into());
            f.call_ext_void("print_i64", &[i.into()], ExtEffect::Opaque);
            f.ret(Some(i.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "f", &[]);
        assert_eq!(r.ret, Some(Value::Int(8)));
        assert_eq!(r.output, vec![8]);
    }

    #[test]
    fn profiling_collects_memory_footprints() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.load(AddrExpr::indexed(MemBase::Global(g), i, 1, 0));
                f.store(AddrExpr::indexed(MemBase::Global(g), i, 1, 4), v.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let fid = m.func_by_name("f").unwrap();
        let config = RunConfig { collect_profile: true, ..Default::default() };
        let r = run_function(&m, None, fid, &[Value::Int(4)], &config);
        let profile = r.profile.expect("profile");
        assert!(profile.mem.site_count() >= 2, "load + store sites recorded");
        // The load site touched cells 0..4, the store site 4..8: disjoint.
        let sites: Vec<_> = m
            .func(fid)
            .iter_insts()
            .filter(|(_, i)| i.load_addr().is_some() || i.store_addr().is_some())
            .map(|(at, _)| encore_analysis::SiteRef { func: fid, at })
            .collect();
        assert_eq!(sites.len(), 2);
        assert!(profile.mem.observed_disjoint(sites[0], sites[1]));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 4);
        mb.function("f", 0, |f| {
            f.for_range(Operand::ImmI(0), Operand::ImmI(4), |f, i| {
                let v = f.call_ext("prng_range", &[Operand::ImmI(100)], ExtEffect::Opaque);
                f.store(
                    AddrExpr::indexed(MemBase::Global(g), i, 1, 0),
                    v.into(),
                );
            });
            f.ret(None);
        });
        let m = mb.finish();
        let a = run_simple(&m, "f", &[]);
        let b = run_simple(&m, "f", &[]);
        assert!(a.observably_equal(&b));
        assert_eq!(a.dyn_insts, b.dyn_insts);
    }
}
