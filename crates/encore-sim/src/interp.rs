//! The IR interpreter with Encore's rollback-recovery runtime.
//!
//! One machine executes one entry-point call to completion, optionally:
//!
//! * collecting an execution [`Profile`] (training runs),
//! * collecting a dynamic memory-event trace (Figure 1),
//! * attributing dynamic instructions to regions (Figure 6),
//! * injecting a single transient fault and modelling its detection
//!   (Figure 8's SFI).
//!
//! ## Recovery semantics
//!
//! `SetRecovery` arms the current frame with the region's recovery block
//! and an empty checkpoint log; `CheckpointMem`/`CheckpointReg` append
//! undo entries; when a fault is *detected* (latency expiring, or a
//! symptom trap while a fault is live) the machine unwinds to the nearest
//! frame with an armed recovery, redirects control to the recovery block,
//! whose `Restore` applies the log in reverse and jumps back to the
//! region header. If no frame is armed, the detection is unrecoverable —
//! exactly the paper's "no hardware support, no Encore region" case.

use crate::externs::Externs;
use crate::fault::{FaultAction, FaultPlan};
use crate::memory::{Memory, PageHashes, ProbeCost};
use crate::predecode::{BaseMode, DecodedAddr, DecodedModule, MicroOp};
use crate::snapshot::{AccessChunks, Snapshot, SnapshotLog};
use crate::value::{eval_bin, eval_un, Value};
use encore_core::RegionMap;
use encore_analysis::Profile;
use encore_ir::{
    AddrExpr, BlockId, FuncId, Inst, MemBase, MemEvent, Module, ObjKind, Offset, Operand, Reg,
    RegionId, Terminator,
};
use std::collections::BTreeMap;

/// Why a run stopped abnormally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TrapKind {
    /// Memory access violation (out of bounds / dangling handle).
    Memory(String),
    /// Operator/type error.
    Eval(String),
    /// The fuel budget was exhausted (livelock or runaway loop).
    FuelExhausted,
    /// A fault was detected but no recovery region was armed.
    DetectedUnrecoverable,
}

/// An abnormal termination.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trap {
    /// Category.
    pub kind: TrapKind,
    /// Dynamic instruction count at the trap.
    pub at: u64,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trap at dynamic instruction {}: {:?}", self.at, self.kind)
    }
}

impl std::error::Error for Trap {}

/// What happened to the planned fault during the run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultTelemetry {
    /// The fault was injected.
    pub injected: bool,
    /// Detection fired (latency expiry or symptom trap).
    pub detected: bool,
    /// A rollback to a recovery block happened.
    pub rolled_back: bool,
    /// The region rolled back to, if any.
    pub rollback_region: Option<RegionId>,
    /// Function and block executing when the fault was injected.
    pub inject_site: Option<(FuncId, BlockId)>,
}

/// Execution options.
#[derive(Clone, PartialEq, Debug)]
pub struct RunConfig {
    /// Maximum dynamic instructions before a
    /// [`TrapKind::FuelExhausted`] trap.
    pub fuel: u64,
    /// Collect a block/edge [`Profile`].
    pub collect_profile: bool,
    /// Collect a [`MemEvent`] trace.
    pub collect_trace: bool,
    /// Attribute dynamic instructions to regions (needs a region map).
    pub region_accounting: bool,
    /// Seed for the deterministic extern environment.
    pub extern_seed: u64,
    /// Fault to inject, if any.
    pub fault: Option<FaultPlan>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            fuel: 200_000_000,
            collect_profile: false,
            collect_trace: false,
            region_accounting: false,
            extern_seed: 0x5EED,
            fault: None,
        }
    }
}

/// The outcome of a run.
#[derive(Clone, PartialEq, Debug)]
pub struct RunResult {
    /// Return value of the entry call (if the run completed).
    pub ret: Option<Value>,
    /// `true` if the program ran to completion (no trap).
    pub completed: bool,
    /// The trap, when `completed` is false.
    pub trap: Option<Trap>,
    /// Total dynamic instructions retired.
    pub dyn_insts: u64,
    /// Dynamic instructions attributable to Encore instrumentation.
    pub instr_dyn_insts: u64,
    /// Observable output channel.
    pub output: Vec<i64>,
    /// Final global memory (observable state).
    pub globals: Vec<Vec<Value>>,
    /// Training profile (when requested).
    pub profile: Option<Profile>,
    /// Memory-event trace (when requested).
    pub trace: Option<Vec<MemEvent>>,
    /// Dynamic instructions per region (when requested).
    pub region_dyn: BTreeMap<RegionId, u64>,
    /// Number of fault-eligible (value-producing) dynamic instructions —
    /// the sample space for uniform fault injection.
    pub eligible_insts: u64,
    /// Largest checkpoint-log footprint observed for any single region
    /// activation, in bytes (memory entries 16 B, register entries 8 B) —
    /// the *measured* runtime analogue of Figure 7b / Table 1 storage.
    pub ckpt_high_water_bytes: u64,
    /// Fault telemetry.
    pub fault: FaultTelemetry,
}

impl RunResult {
    /// Architecturally observable state equality: return value, output
    /// channel and final global memory.
    pub fn observably_equal(&self, other: &RunResult) -> bool {
        self.ret == other.ret && self.output == other.output && self.globals == other.globals
    }
}

#[derive(Clone)]
struct RecoveryState {
    region: RegionId,
    recovery_block: BlockId,
    log: Vec<CkptEntry>,
    /// Running byte size of `log` (memory entries 16 B, register entries
    /// 8 B), maintained incrementally so the per-checkpoint high-water
    /// update is O(1) instead of a rescan of the whole log.
    log_bytes: u64,
    /// Global activation ordinal assigned when this recovery was armed
    /// (see [`SpliceTrack`]).
    act_ordinal: u64,
}

/// Equality deliberately ignores `act_ordinal`: a rollback's re-executed
/// arming draws a fresh ordinal, so a rolled-back run's ordinals are
/// permanently offset from the golden run's even once the architectural
/// state has fully reconverged. The ordinal is only ever read when a
/// detection unwinds to the frame, which cannot happen after a
/// convergence check passes (the fault was consumed by the rollback that
/// preceded it).
impl PartialEq for RecoveryState {
    fn eq(&self, other: &Self) -> bool {
        self.region == other.region
            && self.recovery_block == other.recovery_block
            && self.log == other.log
            && self.log_bytes == other.log_bytes
    }
}

#[derive(Clone, PartialEq)]
enum CkptEntry {
    Mem { obj: usize, idx: i64, val: Value },
    Reg { reg: Reg, val: Value },
}

/// Bookkeeping for the campaign's *convergence splice*.
///
/// A rolled-back injection run usually re-executes its region cleanly
/// and then tracks the golden run instruction-for-instruction to the
/// end — all of which the campaign re-simulates just to conclude
/// "recovered". The splice shortcuts that: once the run's complete
/// architectural state *equals* a golden snapshot's, its remaining
/// execution is provably identical to the golden run's (state equality
/// is self-justifying — equal state implies equal future under the
/// deterministic interpreter), so the run can stop right there.
///
/// The only heuristic part is deciding *where* to compare. Activations
/// anchor that: the golden run logs its dynamic instruction count at
/// each `SetRecovery` (by global activation ordinal), and a rollback
/// remembers the armed ordinal so the re-executed arming can measure
/// `delta` — how far the faulted run's instruction count has drifted
/// ahead of the golden run's at the same program point. Golden
/// snapshots are then probed at `snapshot dyn + delta`. A wrong or
/// unmeasurable `delta` can only make comparisons fail, never pass, so
/// every miss falls back to plain execution.
#[derive(Default)]
struct SpliceTrack {
    /// Splice bookkeeping requested (campaign injection runs only).
    armed: bool,
    /// `SetRecovery` executions retired so far (the activation ordinal
    /// counter). Snapshots carry it so resumed runs keep numbering
    /// where the golden prefix left off.
    activations: u64,
    /// Golden capture: dyn count at each `SetRecovery`, by ordinal.
    act_log: Option<Vec<u64>>,
    /// Armed ordinal of the region a rollback unwound to; consumed by
    /// the next `SetRecovery`.
    pending_realign: Option<u64>,
    /// `(dyn at the re-executed SetRecovery, golden ordinal)` — the
    /// realignment point the splice driver probes from.
    realign: Option<(u64, u64)>,
}

impl SpliceTrack {
    /// Notes one `SetRecovery` execution at dyn count `now`, returning
    /// the activation's ordinal and whether this arming realigned a
    /// rolled-back run (a control event the sprint must surface).
    #[inline]
    fn on_set_recovery(&mut self, now: u64) -> (u64, bool) {
        let ordinal = self.activations;
        self.activations += 1;
        if let Some(log) = &mut self.act_log {
            log.push(now);
        }
        let mut event = false;
        if let Some(ord) = self.pending_realign.take() {
            self.realign = Some((now, ord));
            event = true;
        }
        (ordinal, event)
    }

    /// Notes a rollback into the recovery armed under `armed_ordinal`.
    fn on_rollback(&mut self, armed_ordinal: u64) {
        if self.armed {
            self.pending_realign = Some(armed_ordinal);
        }
    }
}

/// One activation record. `Clone` because frames are part of a
/// [`Snapshot`]; `PartialEq` because frames are part of the splice's
/// convergence predicate.
#[derive(Clone, PartialEq)]
pub(crate) struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    regs: Vec<Value>,
    slots: Vec<usize>,
    recovery: Option<RecoveryState>,
    ret_dst: Option<Reg>,
}

struct FaultState {
    plan: FaultPlan,
    /// A deferred action ([`FaultAction::WrongEdge`],
    /// [`FaultAction::CorruptAddress`]) reached its eligible ordinal
    /// and now waits for its firing event (the next branch / memory
    /// access). Immediate actions never set this.
    armed: bool,
    injected: bool,
    detect_at: Option<u64>,
    detected: bool,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        Self { plan, armed: false, injected: false, detect_at: None, detected: false }
    }
}

/// Which early-exit rule certified a spliced run's outcome.
///
/// Residual-diff size cap for the divergence splice: a run diverging
/// from the golden snapshot in more than this many cells is not worth
/// scanning suffix summaries for (and is very unlikely to be dead), so
/// [`Memory::diff_cells`](crate::Memory::diff_cells) reports it as
/// incomparable and the run falls back to plain execution.
pub const DIFF_CAP: usize = 64;

/// All three rules fire at a probe point where the run's control state
/// (frames, allocation counters, extern PRNG/clock) equals a golden
/// snapshot's at the realigned position — they differ only in what the
/// residual *memory/output* diff proves about the suffix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpliceRule {
    /// Rule (a) — generalized recovered-splice: the diff emptied (full
    /// architectural-state equality, output included). The remaining
    /// execution is bit-identical to the golden suffix: a certain
    /// `Recovered`.
    Converged,
    /// Rule (b) — dead-diff splice: the residual diff is confined to
    /// cells the golden suffix never reads, every divergent *global*
    /// cell is overwritten by the suffix (or is not architecturally
    /// observable), and the output prefix matches. The suffix executes
    /// identically and the final observable state equals golden's: a
    /// certain `Recovered` without simulating the suffix.
    DeadDiff,
    /// Rule (c) — SDC splice: the residual diff is dead (rule (b)'s
    /// read-set condition holds, so the suffix still executes
    /// identically and the run provably terminates like golden), but
    /// the append-only output prefix has diverged or a dead global cell
    /// escapes every suffix write: a certain `SilentCorruption`.
    Sdc,
}

impl SpliceRule {
    /// Every rule, in reporting order.
    pub const ALL: [SpliceRule; 3] = [SpliceRule::Converged, SpliceRule::DeadDiff, SpliceRule::Sdc];

    /// Stable snake_case label (used as JSON keys in campaign reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpliceRule::Converged => "converged",
            SpliceRule::DeadDiff => "dead_diff",
            SpliceRule::Sdc => "sdc",
        }
    }
}

/// How [`Machine::run_to_end_or_splice`] finished.
pub(crate) enum SpliceRun {
    /// Ran to completion or a terminal trap, exactly like
    /// [`Machine::run_to_end`].
    Done(Option<Trap>),
    /// A splice rule certified the outcome at a probe point; the `u64`
    /// is the golden-suffix dynamic instruction count the run did *not*
    /// execute.
    Spliced(SpliceRule, u64),
}

/// Golden-capture bookkeeping for the divergence splice: the memory
/// cells read and written since the last snapshot capture, sealed into
/// one chunk per inter-snapshot interval. [`SnapshotLog`] folds the
/// chunks into per-snapshot suffix summaries. Only golden capture runs
/// carry one (they route through the general executor), so injection
/// runs pay nothing.
#[derive(Default)]
struct MemAccessLog {
    reads: std::collections::HashSet<(u32, u32)>,
    writes: std::collections::HashSet<(u32, u32)>,
    read_chunks: AccessChunks,
    write_chunks: AccessChunks,
}

impl MemAccessLog {
    /// Closes the current interval: drains the live sets into chunks.
    fn seal(&mut self) {
        self.read_chunks.push(self.reads.drain().collect());
        self.write_chunks.push(self.writes.drain().collect());
    }
}

/// Incremental-compare probe state for the divergence splice: the
/// candidate page set carried between probes, which golden interval
/// lists it has absorbed, and the accumulated compare-cost telemetry.
#[derive(Default)]
struct ProbeState {
    /// Sorted, deduplicated `(object, page)` pages where equality with
    /// the last-probed golden snapshot is not established. See
    /// [`Memory::diff_cells_dirty`] for the invariant.
    pending: Vec<(u32, u32)>,
    /// Golden snapshot index the pending set is relative to (`None` =
    /// the golden run's start): interval page lists between here and
    /// the next probe target are unioned in before each compare.
    absorbed_through: Option<usize>,
    /// Probe/hash/word counters, merged into the campaign's
    /// [`SpliceStats`](crate::SpliceStats).
    cost: ProbeCost,
}

/// The interpreter. `'m` is the module's lifetime, `'c` the pre-decoded
/// stream's: a campaign owns one [`DecodedModule`] and threads it
/// through many short-lived machines.
pub(crate) struct Machine<'m, 'c> {
    module: &'m Module,
    code: &'c DecodedModule<'m>,
    map: Option<&'m RegionMap>,
    mem: Memory,
    frames: Vec<Frame>,
    externs: Externs,
    dyn_insts: u64,
    instr_dyn: u64,
    frame_seq: u32,
    heap_seq: u32,
    last_alloc_of_site: Vec<Option<usize>>,
    profile: Option<Profile>,
    trace: Option<Vec<MemEvent>>,
    region_dyn: Vec<u64>,
    region_touched: Vec<bool>,
    region_accounting: bool,
    /// Profile or trace collection requested: every instruction must go
    /// through the general executor (the fast path records neither).
    observing: bool,
    fault: Option<FaultState>,
    telemetry: FaultTelemetry,
    eligible_seen: u64,
    ckpt_high_water: u64,
    splice: SpliceTrack,
    /// Suffix-summary capture (golden runs with snapshots only).
    mem_log: Option<Box<MemAccessLog>>,
    fuel: u64,
    final_ret: Option<Value>,
    /// Register generation mask: bit `min(reg, 63)` is set by every
    /// register write since resume. Purely a fail-fast compare hint —
    /// golden registers churn every instruction, so unlike memory
    /// pages no register compare can ever be *skipped* soundly (see
    /// DESIGN.md §13); the mask just orders the frame compare to look
    /// at recently written registers first.
    reg_dirty: u64,
    /// Object count at the machine's dirty-tracking baseline (the
    /// resume snapshot, or module globals for a scratch start):
    /// objects below it are shape-identical to every golden snapshot's
    /// by construction.
    base_objects: usize,
    /// Incremental splice-probe state (injection runs only).
    probe: ProbeState,
    /// Running golden page-hash table (capturing golden runs only):
    /// updated from the drained dirty set at each snapshot capture and
    /// cloned into the captured [`Snapshot`].
    golden_hashes: Option<PageHashes>,
}

impl std::fmt::Debug for Machine<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("module", &self.module.name)
            .field("dyn_insts", &self.dyn_insts)
            .field("frames", &self.frames.len())
            .finish_non_exhaustive()
    }
}

/// Reads an operand against `frame`: the fast path's mirror of
/// [`Machine::operand`], taking the frame directly so `step` resolves
/// `frames.last_mut()` once per instruction instead of once per use.
#[inline]
fn opnd(frame: &Frame, op: &Operand) -> Value {
    match op {
        Operand::Reg(r) => frame.regs[r.index()],
        Operand::ImmI(v) => Value::Int(*v),
        Operand::ImmF(v) => Value::Float(*v),
    }
}

/// Resolves a pre-decoded address to `(object handle, cell index)`: the
/// fast path's mirror of [`Machine::resolve`], with global bases already
/// reduced to their object handle at decode time. Trap messages are
/// identical to the general path's.
#[inline]
fn resolve_decoded(
    frame: &Frame,
    last_alloc_of_site: &[Option<usize>],
    now: u64,
    addr: &DecodedAddr,
) -> Result<(usize, i64), Trap> {
    let (obj, base_idx) = match addr.base {
        BaseMode::Global(h) => (h, 0i64),
        BaseMode::Slot(s) => {
            let h = *frame.slots.get(s.index()).ok_or_else(|| Trap {
                kind: TrapKind::Memory(format!("undeclared slot {s}")),
                at: now,
            })?;
            (h, 0)
        }
        BaseMode::Heap(h) => {
            let handle = last_alloc_of_site
                .get(h.index())
                .copied()
                .flatten()
                .ok_or_else(|| Trap {
                    kind: TrapKind::Memory(format!("heap site {h} has no allocation")),
                    at: now,
                })?;
            (handle, 0)
        }
        BaseMode::RegPtr(r) => match frame.regs[r.index()] {
            Value::Ptr { obj, idx } => (obj, idx),
            other => {
                return Err(Trap {
                    kind: TrapKind::Memory(format!(
                        "register {r} does not hold a pointer (holds {other})"
                    )),
                    at: now,
                })
            }
        },
    };
    let off = match addr.off {
        Offset::Const(c) => c,
        Offset::Scaled { index, scale, disp } => match frame.regs[index.index()] {
            Value::Int(i) => i.wrapping_mul(scale).wrapping_add(disp),
            other => {
                return Err(Trap {
                    kind: TrapKind::Memory(format!(
                        "index register {index} is not an integer (holds {other})"
                    )),
                    at: now,
                })
            }
        },
    };
    Ok((obj, base_idx.wrapping_add(off)))
}

/// The fast path's mirror of [`Machine::maybe_inject`], taking the
/// fault fields as split borrows so the current frame can stay mutably
/// borrowed across the call. Counts one eligible instruction and, at
/// the plan's ordinal, dispatches on the [`FaultAction`]: value
/// corruptions apply here; deferred actions (wrong-edge, address) only
/// *arm* and fire later at their matching event; a power failure marks
/// itself injected with detection due immediately (the machine dies
/// before the next instruction). Sets `fired` when the fault is
/// injected by this call (the sprint loop then tightens its detection
/// bound).
#[allow(clippy::too_many_arguments)]
#[inline]
fn inject(
    fault: &mut Option<FaultState>,
    eligible_seen: &mut u64,
    now: u64,
    telemetry: &mut FaultTelemetry,
    site: (FuncId, BlockId),
    v: Value,
    fired: &mut bool,
) -> Value {
    let ordinal = *eligible_seen;
    *eligible_seen += 1;
    let Some(f) = fault else { return v };
    if f.injected || ordinal != f.plan.inject_at {
        return v;
    }
    match f.plan.action {
        FaultAction::FlipBits { mask } => {
            f.injected = true;
            f.detect_at = Some(now + f.plan.detect_latency);
            telemetry.injected = true;
            telemetry.inject_site = Some(site);
            *fired = true;
            v.flip_bits(mask)
        }
        FaultAction::WrongEdge | FaultAction::CorruptAddress { .. } => {
            f.armed = true;
            v
        }
        FaultAction::PowerFailure => {
            f.injected = true;
            f.detect_at = Some(now);
            telemetry.injected = true;
            telemetry.inject_site = Some(site);
            *fired = true;
            v
        }
    }
}

/// Fires an armed [`FaultAction::CorruptAddress`] fault, if any: the
/// first program load/store executed after the arming ordinal XORs the
/// plan's mask (folded to 16 bits, like pointer corruption) into its
/// resolved cell index. The corrupted access either lands in bounds
/// (silently hitting a neighbour cell) or traps — a symptom
/// [`Machine::step_detected`] converts into detection while the fault
/// is live. Split-borrow mirror of [`Machine::maybe_corrupt_addr`].
#[inline]
fn corrupt_addr(
    fault: &mut Option<FaultState>,
    now: u64,
    telemetry: &mut FaultTelemetry,
    site: (FuncId, BlockId),
    idx: i64,
    fired: &mut bool,
) -> i64 {
    let Some(f) = fault else { return idx };
    if !f.armed || f.injected {
        return idx;
    }
    let FaultAction::CorruptAddress { mask } = f.plan.action else { return idx };
    f.injected = true;
    f.detect_at = Some(now + f.plan.detect_latency);
    telemetry.injected = true;
    telemetry.inject_site = Some(site);
    *fired = true;
    idx ^ crate::value::fold_mask16(mask) as i64
}

/// Executes one pre-lowered instruction against split borrows of the
/// machine: the body of the interpreter's sprint loop. Semantically
/// identical to [`Machine::exec_inst`] on the same opcode, minus the
/// profiling/tracing hooks (the caller guarantees neither is active).
/// `now` is the already-charged dynamic instruction count; the caller
/// has already advanced the instruction pointer.
///
/// Returns `Ok(true)` on a *control event* the sprint must surface:
/// either this instruction injected the planned fault (the sprint then
/// tightens its detection bound), or — with no fault live — a
/// `SetRecovery` realigned a rolled-back run (the sprint pauses so the
/// splice driver can start probing golden snapshots).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn exec_fast(
    op: &MicroOp<'_>,
    frame: &mut Frame,
    mem: &mut Memory,
    fault: &mut Option<FaultState>,
    eligible_seen: &mut u64,
    telemetry: &mut FaultTelemetry,
    last_alloc_of_site: &[Option<usize>],
    ckpt_high_water: &mut u64,
    splice: &mut SpliceTrack,
    reg_dirty: &mut u64,
    site: (FuncId, BlockId),
    now: u64,
) -> Result<bool, Trap> {
    let mut fired = false;
    match op {
        MicroOp::Bin { op, dst, lhs, rhs } => {
            let a = opnd(frame, lhs);
            let b = opnd(frame, rhs);
            let v = eval_bin(*op, a, b)
                .map_err(|e| Trap { kind: TrapKind::Eval(e.message), at: now })?;
            let v = inject(fault, eligible_seen, now, telemetry, site, v, &mut fired);
            frame.regs[dst.index()] = v;
            *reg_dirty |= 1 << dst.index().min(63);
        }
        MicroOp::Un { op, dst, src } => {
            let a = opnd(frame, src);
            let v =
                eval_un(*op, a).map_err(|e| Trap { kind: TrapKind::Eval(e.message), at: now })?;
            let v = inject(fault, eligible_seen, now, telemetry, site, v, &mut fired);
            frame.regs[dst.index()] = v;
            *reg_dirty |= 1 << dst.index().min(63);
        }
        MicroOp::Mov { dst, src } => {
            let v = opnd(frame, src);
            let v = inject(fault, eligible_seen, now, telemetry, site, v, &mut fired);
            frame.regs[dst.index()] = v;
            *reg_dirty |= 1 << dst.index().min(63);
        }
        MicroOp::Load { dst, addr } => {
            let (obj, idx) = resolve_decoded(frame, last_alloc_of_site, now, addr)?;
            let idx = corrupt_addr(fault, now, telemetry, site, idx, &mut fired);
            let v = mem
                .read(obj, idx)
                .map_err(|e| Trap { kind: TrapKind::Memory(e.message), at: now })?;
            let v = inject(fault, eligible_seen, now, telemetry, site, v, &mut fired);
            frame.regs[dst.index()] = v;
            *reg_dirty |= 1 << dst.index().min(63);
        }
        MicroOp::Store { addr, src } => {
            let (obj, idx) = resolve_decoded(frame, last_alloc_of_site, now, addr)?;
            let idx = corrupt_addr(fault, now, telemetry, site, idx, &mut fired);
            let v = opnd(frame, src);
            let v = inject(fault, eligible_seen, now, telemetry, site, v, &mut fired);
            mem.write(obj, idx, v)
                .map_err(|e| Trap { kind: TrapKind::Memory(e.message), at: now })?;
        }
        MicroOp::Lea { dst, addr } => {
            // Like the general path, address materialization is not
            // fault-eligible.
            let (obj, idx) = resolve_decoded(frame, last_alloc_of_site, now, addr)?;
            frame.regs[dst.index()] = Value::Ptr { obj, idx };
            *reg_dirty |= 1 << dst.index().min(63);
        }
        // Instrumentation (not fault-eligible in the general path
        // either). The recovery block was pre-resolved at decode time;
        // the unresolvable cases stay `Slow` and trap over there.
        MicroOp::SetRecovery { region, recovery_block } => {
            let (ordinal, event) = splice.on_set_recovery(now);
            frame.recovery = Some(RecoveryState {
                region: *region,
                recovery_block: *recovery_block,
                log: Vec::new(),
                log_bytes: 0,
                act_ordinal: ordinal,
            });
            if event {
                fired = true;
            }
        }
        MicroOp::CkptMem { addr } => {
            let (obj, idx) = resolve_decoded(frame, last_alloc_of_site, now, addr)?;
            let val = mem
                .read(obj, idx)
                .map_err(|e| Trap { kind: TrapKind::Memory(e.message), at: now })?;
            if let Some(rec) = &mut frame.recovery {
                rec.log.push(CkptEntry::Mem { obj, idx, val });
                rec.log_bytes += 16;
                *ckpt_high_water = (*ckpt_high_water).max(rec.log_bytes);
            }
        }
        MicroOp::CkptReg { reg } => {
            let val = frame.regs[reg.index()];
            if let Some(rec) = &mut frame.recovery {
                rec.log.push(CkptEntry::Reg { reg: *reg, val });
                rec.log_bytes += 8;
                *ckpt_high_water = (*ckpt_high_water).max(rec.log_bytes);
            }
        }
        // The sprint loop routes `Slow` through the general executor.
        MicroOp::Slow(_) => unreachable!("slow ops dispatch through exec_inst"),
    }
    Ok(fired)
}

/// Runs `entry(args)` on `module` under `config`. `map` supplies the
/// recovery metadata for instrumented modules (pass `None` for plain
/// ones).
///
/// Decodes the module on entry; callers that run the same module many
/// times (campaigns) should decode once and use the machine-level API
/// instead.
pub fn run_function(
    module: &Module,
    map: Option<&RegionMap>,
    entry: FuncId,
    args: &[Value],
    config: &RunConfig,
) -> RunResult {
    let code = DecodedModule::new(module, map);
    let mut m = Machine::start(module, &code, map, entry, args, config);
    let trap = m.run_to_end();
    m.into_result(trap)
}

/// Like [`run_function`] but additionally captures a [`Snapshot`] of
/// the machine every `stride` dynamic instructions (`0` disables
/// capture). The run itself is unperturbed: the returned [`RunResult`]
/// is bit-identical to [`run_function`]'s.
///
/// # Panics
///
/// Panics if `config` requests a fault, a profile or a trace — none of
/// those are part of a snapshot, so resuming would be lossy.
pub fn run_function_with_snapshots<'m>(
    module: &'m Module,
    map: Option<&'m RegionMap>,
    code: &DecodedModule<'m>,
    entry: FuncId,
    args: &[Value],
    config: &RunConfig,
    stride: u64,
) -> (RunResult, SnapshotLog) {
    assert!(config.fault.is_none(), "snapshot capture requires a fault-free run");
    assert!(
        !config.collect_profile && !config.collect_trace,
        "snapshots do not capture profiles or traces"
    );
    let mut m = Machine::start(module, code, map, entry, args, config);
    let mut log = SnapshotLog::new(stride);
    let trap = if stride == 0 {
        m.run_to_end()
    } else {
        m.enable_act_log();
        m.enable_mem_log();
        m.run_to_end_capturing(stride, &mut log)
    };
    log.set_activation_dyn(m.take_act_log());
    if stride > 0 {
        let (reads, writes) = m.take_mem_chunks();
        log.set_suffix_summaries(reads, writes);
    }
    (m.into_result(trap), log)
}

/// Resumes execution from `snapshot` under `config` and runs to
/// completion. With the same module, decoded stream and extern seed the
/// result is bit-identical to a from-scratch run that reached the
/// snapshot point — including fault injection: `config.fault` plans
/// with `inject_at >= snapshot.eligible_seen()` fire exactly as they
/// would from scratch, because every counter in the snapshot is
/// absolute.
pub fn resume_function<'m>(
    module: &'m Module,
    map: Option<&'m RegionMap>,
    code: &DecodedModule<'m>,
    snapshot: &Snapshot,
    config: &RunConfig,
) -> RunResult {
    let mut m = Machine::from_snapshot(module, code, map, snapshot, config);
    let trap = m.run_to_end();
    m.into_result(trap)
}

impl<'m, 'c> Machine<'m, 'c> {
    fn new(
        module: &'m Module,
        code: &'c DecodedModule<'m>,
        map: Option<&'m RegionMap>,
        config: &RunConfig,
    ) -> Self {
        Self {
            module,
            code,
            map,
            mem: Memory::for_module(module),
            frames: Vec::new(),
            externs: Externs::new(config.extern_seed),
            dyn_insts: 0,
            instr_dyn: 0,
            frame_seq: 0,
            heap_seq: 0,
            last_alloc_of_site: vec![None; code.heap_site_count],
            profile: config.collect_profile.then(|| Profile::empty_for(module)),
            trace: config.collect_trace.then(Vec::new),
            region_dyn: vec![0; code.region_count],
            region_touched: vec![false; code.region_count],
            region_accounting: config.region_accounting,
            observing: config.collect_profile || config.collect_trace,
            fault: config.fault.map(FaultState::new),
            telemetry: FaultTelemetry::default(),
            eligible_seen: 0,
            ckpt_high_water: 0,
            splice: SpliceTrack::default(),
            mem_log: None,
            fuel: config.fuel,
            final_ret: None,
            reg_dirty: 0,
            base_objects: module.globals.len(),
            probe: ProbeState::default(),
            golden_hashes: None,
        }
    }

    /// A machine poised at the first instruction of `entry(args)`.
    pub(crate) fn start(
        module: &'m Module,
        code: &'c DecodedModule<'m>,
        map: Option<&'m RegionMap>,
        entry: FuncId,
        args: &[Value],
        config: &RunConfig,
    ) -> Self {
        let mut m = Self::new(module, code, map, config);
        m.call(entry, args, None);
        m
    }

    /// A machine restored to `snap`'s state, ready to resume under
    /// `config` (which supplies the fault plan and fuel; profiles and
    /// traces cannot cross a snapshot boundary).
    pub(crate) fn from_snapshot(
        module: &'m Module,
        code: &'c DecodedModule<'m>,
        map: Option<&'m RegionMap>,
        snap: &Snapshot,
        config: &RunConfig,
    ) -> Self {
        debug_assert!(
            !config.collect_profile && !config.collect_trace,
            "profiles/traces cannot be resumed from a snapshot"
        );
        // The restored snapshot *is* the dirty-tracking baseline: every
        // cell written from here on (program stores, fault corruption,
        // rollback restores) re-enters the dirty set.
        let mut mem = snap.mem.clone();
        mem.reset_dirty();
        Self {
            module,
            code,
            map,
            mem,
            frames: snap.frames.clone(),
            externs: snap.externs.clone(),
            dyn_insts: snap.dyn_insts,
            instr_dyn: snap.instr_dyn,
            frame_seq: snap.frame_seq,
            heap_seq: snap.heap_seq,
            last_alloc_of_site: snap.last_alloc_of_site.clone(),
            profile: None,
            trace: None,
            region_dyn: snap.region_dyn.clone(),
            region_touched: snap.region_touched.clone(),
            region_accounting: config.region_accounting,
            observing: false,
            // A plan whose inject ordinal precedes the snapshot cannot
            // fire after resume; [`SfiCampaign::run_one`] only resumes
            // from snapshots with `eligible_seen <= plan.inject_at`, so
            // the rebuilt (un-armed, un-injected) state is exactly what
            // a from-scratch run carries at this point — for every
            // [`FaultAction`], deferred ones included, since arming
            // happens at or after the inject ordinal.
            fault: config.fault.map(FaultState::new),
            telemetry: FaultTelemetry::default(),
            eligible_seen: snap.eligible_seen,
            ckpt_high_water: snap.ckpt_high_water,
            splice: SpliceTrack { activations: snap.activations, ..SpliceTrack::default() },
            mem_log: None,
            fuel: config.fuel,
            final_ret: None,
            reg_dirty: 0,
            base_objects: snap.mem.object_count(),
            probe: ProbeState {
                absorbed_through: Some(snap.index),
                ..ProbeState::default()
            },
            golden_hashes: None,
        }
    }

    /// Captures the complete resumable state at the current step
    /// boundary.
    fn capture_snapshot(&self) -> Snapshot {
        Snapshot {
            index: 0, // assigned by SnapshotLog::push
            page_hashes: PageHashes::default(), // filled by the capture loop
            frames: self.frames.clone(),
            mem: self.mem.clone(),
            externs: self.externs.clone(),
            dyn_insts: self.dyn_insts,
            instr_dyn: self.instr_dyn,
            frame_seq: self.frame_seq,
            heap_seq: self.heap_seq,
            last_alloc_of_site: self.last_alloc_of_site.clone(),
            region_dyn: self.region_dyn.clone(),
            region_touched: self.region_touched.clone(),
            eligible_seen: self.eligible_seen,
            ckpt_high_water: self.ckpt_high_water,
            activations: self.splice.activations,
        }
    }

    fn call(&mut self, func: FuncId, args: &[Value], ret_dst: Option<Reg>) {
        let f = self.module.func(func);
        let mut regs = vec![Value::ZERO; f.reg_count as usize];
        for (i, a) in args.iter().enumerate().take(f.param_count as usize) {
            regs[i] = *a;
        }
        let frame_no = self.frame_seq;
        self.frame_seq += 1;
        let slots = f
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                self.mem.alloc(
                    ObjKind::Slot { frame: frame_no, slot: i as u32 },
                    s.cells as usize,
                )
            })
            .collect();
        self.note_block_entry(func, f.entry());
        self.frames.push(Frame {
            func,
            block: f.entry(),
            ip: 0,
            regs,
            slots,
            recovery: None,
            ret_dst,
        });
    }

    fn note_block_entry(&mut self, func: FuncId, block: BlockId) {
        if let Some(p) = &mut self.profile {
            *p.func_mut(func).block_counts.entry(block).or_insert(0) += 1;
        }
    }

    fn note_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        if let Some(p) = &mut self.profile {
            *p.func_mut(func).edge_counts.entry((from, to)).or_insert(0) += 1;
        }
    }

    /// Accounts one retirement. `region` comes pre-resolved from the
    /// decoded block, so the hot path is two dense array writes instead
    /// of nested `BTreeMap` probes.
    fn charge(&mut self, func: FuncId, region: Option<RegionId>, cost: u64, instrumentation: bool) {
        self.dyn_insts += cost;
        if instrumentation {
            self.instr_dyn += cost;
        }
        if let Some(p) = &mut self.profile {
            p.func_mut(func).dyn_insts += cost;
            p.total_dyn_insts += cost;
        }
        if self.region_accounting {
            if let Some(rid) = region {
                self.region_dyn[rid.index()] += cost;
                self.region_touched[rid.index()] = true;
            }
        }
    }

    fn operand(&self, op: &Operand) -> Value {
        let frame = self.frames.last().expect("no frame");
        match op {
            Operand::Reg(r) => frame.regs[r.index()],
            Operand::ImmI(v) => Value::Int(*v),
            Operand::ImmF(v) => Value::Float(*v),
        }
    }

    fn set_reg(&mut self, r: Reg, v: Value) {
        let frame = self.frames.last_mut().expect("no frame");
        frame.regs[r.index()] = v;
        self.reg_dirty |= 1 << r.index().min(63);
    }

    /// Resolves an address expression to `(object handle, cell index)`.
    fn resolve(&self, addr: &AddrExpr) -> Result<(usize, i64), Trap> {
        let frame = self.frames.last().expect("no frame");
        let (obj, base_idx) = match addr.base {
            MemBase::Global(g) => (self.mem.global_handle(g.raw()), 0i64),
            MemBase::Slot(s) => {
                let h = *frame.slots.get(s.index()).ok_or_else(|| Trap {
                    kind: TrapKind::Memory(format!("undeclared slot {s}")),
                    at: self.dyn_insts,
                })?;
                (h, 0)
            }
            MemBase::Heap(h) => {
                let handle = self
                    .last_alloc_of_site
                    .get(h.index())
                    .copied()
                    .flatten()
                    .ok_or_else(|| Trap {
                        kind: TrapKind::Memory(format!("heap site {h} has no allocation")),
                        at: self.dyn_insts,
                    })?;
                (handle, 0)
            }
            MemBase::Reg(r) => match frame.regs[r.index()] {
                Value::Ptr { obj, idx } => (obj, idx),
                other => {
                    return Err(Trap {
                        kind: TrapKind::Memory(format!(
                            "register {r} does not hold a pointer (holds {other})"
                        )),
                        at: self.dyn_insts,
                    })
                }
            },
        };
        let off = match addr.offset {
            Offset::Const(c) => c,
            Offset::Scaled { index, scale, disp } => match frame.regs[index.index()] {
                Value::Int(i) => i.wrapping_mul(scale).wrapping_add(disp),
                other => {
                    return Err(Trap {
                        kind: TrapKind::Memory(format!(
                            "index register {index} is not an integer (holds {other})"
                        )),
                        at: self.dyn_insts,
                    })
                }
            },
        };
        Ok((obj, base_idx.wrapping_add(off)))
    }

    /// Applies the fault plan to a candidate value if this is the chosen
    /// eligible instruction. Eligible instructions are counted even
    /// without a fault plan so golden runs report the sample space.
    ///
    /// Dispatches on the plan's [`FaultAction`]: value corruption
    /// applies right here; wrong-edge and address corruption *arm* at
    /// the chosen ordinal and fire at the next matching event (branch /
    /// memory access); a power failure injects with detection due
    /// immediately.
    fn maybe_inject(&mut self, v: Value) -> Value {
        let ordinal = self.eligible_seen;
        self.eligible_seen += 1;
        let Some(f) = &mut self.fault else { return v };
        if f.injected || ordinal != f.plan.inject_at {
            return v;
        }
        match f.plan.action {
            FaultAction::FlipBits { mask } => {
                f.injected = true;
                f.detect_at = Some(self.dyn_insts + f.plan.detect_latency);
                self.telemetry.injected = true;
                self.telemetry.inject_site = self.frames.last().map(|fr| (fr.func, fr.block));
                v.flip_bits(mask)
            }
            FaultAction::WrongEdge | FaultAction::CorruptAddress { .. } => {
                f.armed = true;
                v
            }
            FaultAction::PowerFailure => {
                f.injected = true;
                f.detect_at = Some(self.dyn_insts);
                self.telemetry.injected = true;
                self.telemetry.inject_site = self.frames.last().map(|fr| (fr.func, fr.block));
                v
            }
        }
    }

    /// General-path mirror of the sprint loop's [`corrupt_addr`]: fires
    /// an armed address-corruption fault on the first program
    /// load/store after the arming ordinal, XORing the folded mask into
    /// the resolved cell index.
    fn maybe_corrupt_addr(&mut self, idx: i64) -> i64 {
        let Some(f) = &mut self.fault else { return idx };
        if !f.armed || f.injected {
            return idx;
        }
        let FaultAction::CorruptAddress { mask } = f.plan.action else { return idx };
        f.injected = true;
        f.detect_at = Some(self.dyn_insts + f.plan.detect_latency);
        self.telemetry.injected = true;
        self.telemetry.inject_site = self.frames.last().map(|fr| (fr.func, fr.block));
        idx ^ crate::value::fold_mask16(mask) as i64
    }

    /// True when a live (injected, undetected) fault should now be
    /// detected.
    fn detection_due(&self) -> bool {
        match &self.fault {
            Some(f) if f.injected && !f.detected => {
                f.detect_at.map(|d| self.dyn_insts >= d).unwrap_or(false)
            }
            _ => false,
        }
    }

    /// Fault detection fired: unwind to the nearest armed frame and
    /// redirect to its recovery block.
    ///
    /// For a [`FaultAction::PowerFailure`] the machine additionally
    /// loses the in-flight volatile state of the region it restarts:
    /// every register the recovery log checkpointed is zeroed before
    /// the recovery block runs, modeling a reboot on an intermittent
    /// device whose memory is non-volatile but whose register file is
    /// not. The recovery block's `Restore` ops must re-materialize
    /// those registers from the log — a recovery block that missed one
    /// re-executes from a zeroed value and the campaign classifies the
    /// run as silent corruption. Registers outside the checkpoint set
    /// are assumed preserved by the runtime's region-entry context save
    /// (the standard just-in-time-checkpointing contract; our log only
    /// materializes the WAR subset Encore checkpoints).
    ///
    /// Returns `Err` when no frame is armed (unrecoverable).
    fn trigger_recovery(&mut self) -> Result<(), Trap> {
        let power = matches!(
            &self.fault,
            Some(f) if matches!(f.plan.action, FaultAction::PowerFailure)
        );
        if let Some(f) = &mut self.fault {
            f.detected = true;
        }
        self.telemetry.detected = true;
        // Find the deepest armed frame.
        while let Some(frame) = self.frames.last() {
            if let Some(rec) = &frame.recovery {
                let (region, block) = (rec.region, rec.recovery_block);
                let ordinal = rec.act_ordinal;
                let lost: Vec<usize> = if power {
                    rec.log
                        .iter()
                        .filter_map(|e| match e {
                            CkptEntry::Reg { reg, .. } => Some(reg.index()),
                            CkptEntry::Mem { .. } => None,
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                let frame = self.frames.last_mut().expect("frame");
                frame.block = block;
                frame.ip = 0;
                for r in lost {
                    frame.regs[r] = Value::ZERO;
                    self.reg_dirty |= 1 << r.min(63);
                }
                self.telemetry.rolled_back = true;
                self.telemetry.rollback_region = Some(region);
                self.splice.on_rollback(ordinal);
                // The fault is consumed: re-execution is fault-free.
                self.fault = None;
                return Ok(());
            }
            self.frames.pop();
        }
        Err(Trap { kind: TrapKind::DetectedUnrecoverable, at: self.dyn_insts })
    }

    /// Records a memory-site footprint into the profile (for the
    /// profile-guided alias oracle).
    fn note_footprint(&mut self, func: FuncId, at: encore_ir::InstRef, obj: usize, idx: i64) {
        if self.profile.is_some() {
            let cell = self.mem.cell_of(obj, idx);
            if let Some(p) = &mut self.profile {
                p.mem.record(encore_analysis::SiteRef { func, at }, cell);
            }
        }
    }

    fn trace_mem(&mut self, kind: encore_ir::AccessKind, obj: usize, idx: i64) {
        if let Some(t) = &mut self.trace {
            let cell = self.mem.cell_of(obj, idx);
            let at = self.dyn_insts;
            t.push(MemEvent { kind, cell, at });
        }
    }

    /// Executes one instruction or terminator — or, on the hot path, a
    /// *sprint* of them.
    ///
    /// Profiling/tracing runs take the general executor one item per
    /// call (it has the footprint, trace and edge-count hooks). All
    /// other runs split-borrow the machine's fields once and then
    /// execute consecutive pre-lowered instructions and intra-function
    /// jumps/branches in a tight loop, stopping — *without* executing
    /// the next item — when `limit` is reached, when a pending fault
    /// detection must fire, at an instruction that needs the general
    /// executor, or at `Ret`. Per-item fuel, detection and `limit`
    /// checks keep every observable state transition identical to the
    /// one-item-per-call path, so snapshot capture points and fault
    /// semantics are unchanged; `limit` exists so capturing callers get
    /// control back at exact instruction-count boundaries (pass
    /// `u64::MAX` otherwise).
    ///
    /// Returns `Ok(true)` while the program is still running.
    fn step(&mut self, limit: u64) -> Result<bool, Trap> {
        if self.dyn_insts >= self.fuel {
            return Err(Trap { kind: TrapKind::FuelExhausted, at: self.dyn_insts });
        }
        if self.detection_due() {
            self.trigger_recovery()?;
        }
        let Some(frame) = self.frames.last() else {
            return Ok(false);
        };
        let (func_id, block_id, ip) = (frame.func, frame.block, frame.ip);
        // Copying the `&'c DecodedModule` reference out of `self` gives
        // the instruction borrow a lifetime independent of `&mut self`,
        // so execution borrows instead of cloning.
        let code = self.code;
        let dfunc = code.func(func_id);

        if self.observing {
            let block = dfunc.block(block_id);
            return if (ip as u32) < block.len {
                let di = &dfunc.steps[block.start as usize + ip];
                self.charge(func_id, block.region, di.cost, di.instrumentation);
                self.frames.last_mut().expect("frame").ip += 1;
                // A symptom trap here propagates to `run_to_end`, which
                // treats it as detection (ReStore/Shoestring-style
                // anomalous behavior) while a fault is live.
                self.exec_inst(func_id, di.at, di.inst)?;
                Ok(true)
            } else {
                let term = block.term.ok_or_else(|| Trap {
                    kind: TrapKind::Eval(format!("unterminated block {block_id}")),
                    at: self.dyn_insts,
                })?;
                self.charge(func_id, block.region, 1, false);
                self.exec_term(func_id, block_id, term)?;
                Ok(!self.frames.is_empty())
            };
        }

        /// Why the sprint handed control back without executing the
        /// next item.
        enum Stop {
            /// `limit` reached or a detection is due: the caller's next
            /// `step` resumes (or fires the detection) at this state.
            Boundary,
            /// The next instruction needs the general executor.
            Slow,
            /// The block ends in `Ret` (or is unterminated).
            Term,
        }
        let stop = {
            let fuel = self.fuel;
            let region_accounting = self.region_accounting;
            let Machine {
                frames,
                mem,
                fault,
                eligible_seen,
                telemetry,
                last_alloc_of_site,
                dyn_insts,
                instr_dyn,
                region_dyn,
                region_touched,
                ckpt_high_water,
                splice,
                reg_dirty,
                ..
            } = self;
            let frame = frames.last_mut().expect("frame");
            let mut block = dfunc.block(frame.block);
            let mut site = (func_id, frame.block);
            // `ip` lives in a local and is written back at every sprint
            // exit. A trap mid-sprint leaves it stale, which is
            // unobservable: recovery overwrites (or pops) the frame's
            // position, and terminal traps never read it.
            let mut ip = frame.ip;
            // One merged per-item pause bound: the caller's limit, the
            // fuel budget, and — once a fault is injected — its
            // detection due-time. The hit branch below disambiguates in
            // the same priority order the one-item-per-call path checks
            // them (limit, then fuel, then detection).
            let mut bound = limit.min(fuel);
            if let Some(f) = &*fault {
                if f.injected && !f.detected {
                    if let Some(d) = f.detect_at {
                        bound = bound.min(d);
                    }
                }
            }
            loop {
                if *dyn_insts >= bound {
                    frame.ip = ip;
                    if *dyn_insts >= limit {
                        break Stop::Boundary;
                    }
                    if *dyn_insts >= fuel {
                        return Err(Trap { kind: TrapKind::FuelExhausted, at: *dyn_insts });
                    }
                    // Detection is due: the caller's next `step` fires
                    // it at this exact state.
                    break Stop::Boundary;
                }
                if (ip as u32) < block.len {
                    let di = &dfunc.steps[block.start as usize + ip];
                    if matches!(di.op, MicroOp::Slow(_)) {
                        frame.ip = ip;
                        break Stop::Slow;
                    }
                    *dyn_insts += di.cost;
                    if di.instrumentation {
                        *instr_dyn += di.cost;
                    }
                    if region_accounting {
                        if let Some(rid) = block.region {
                            region_dyn[rid.index()] += di.cost;
                            region_touched[rid.index()] = true;
                        }
                    }
                    ip += 1;
                    // A symptom trap here propagates to `run_to_end`,
                    // which treats it as detection while a fault is
                    // live.
                    match exec_fast(
                        &di.op,
                        frame,
                        mem,
                        fault,
                        eligible_seen,
                        telemetry,
                        last_alloc_of_site,
                        ckpt_high_water,
                        splice,
                        reg_dirty,
                        site,
                        *dyn_insts,
                    ) {
                        Ok(false) => {}
                        Ok(true) => match &*fault {
                            // The fault was injected just now: start
                            // pausing at its detection due-time.
                            Some(f) => {
                                if let Some(d) = f.detect_at {
                                    bound = bound.min(d);
                                }
                            }
                            // No fault live: a `SetRecovery` realigned
                            // a rolled-back run. Pause so the splice
                            // driver can probe golden snapshots.
                            None => {
                                frame.ip = ip;
                                break Stop::Boundary;
                            }
                        },
                        Err(t) => {
                            frame.ip = ip;
                            return Err(t);
                        }
                    }
                } else {
                    match block.term {
                        Some(Terminator::Jump(t)) => {
                            *dyn_insts += 1;
                            if region_accounting {
                                if let Some(rid) = block.region {
                                    region_dyn[rid.index()] += 1;
                                    region_touched[rid.index()] = true;
                                }
                            }
                            frame.block = *t;
                            ip = 0;
                            block = dfunc.block(*t);
                            site = (func_id, *t);
                        }
                        Some(Terminator::Branch { cond, then_bb, else_bb }) => {
                            *dyn_insts += 1;
                            if region_accounting {
                                if let Some(rid) = block.region {
                                    region_dyn[rid.index()] += 1;
                                    region_touched[rid.index()] = true;
                                }
                            }
                            let mut target =
                                if opnd(frame, cond).truthy() { *then_bb } else { *else_bb };
                            // An armed wrong-edge fault fires at the
                            // first conditional branch after its
                            // ordinal, taking the not-taken edge.
                            if let Some(f) = fault.as_mut() {
                                if f.armed
                                    && !f.injected
                                    && matches!(f.plan.action, FaultAction::WrongEdge)
                                {
                                    target = if target == *then_bb { *else_bb } else { *then_bb };
                                    f.injected = true;
                                    let due = *dyn_insts + f.plan.detect_latency;
                                    f.detect_at = Some(due);
                                    telemetry.injected = true;
                                    telemetry.inject_site = Some(site);
                                    bound = bound.min(due);
                                }
                            }
                            frame.block = target;
                            ip = 0;
                            block = dfunc.block(target);
                            site = (func_id, target);
                        }
                        // `Ret` pops a frame (and unterminated blocks
                        // trap): both go through the general path.
                        _ => {
                            frame.ip = ip;
                            break Stop::Term;
                        }
                    }
                }
            }
        };

        match stop {
            Stop::Boundary => Ok(true),
            Stop::Slow => {
                let frame = self.frames.last().expect("frame");
                let (block_id, ip) = (frame.block, frame.ip);
                let block = dfunc.block(block_id);
                let di = &dfunc.steps[block.start as usize + ip];
                self.charge(func_id, block.region, di.cost, di.instrumentation);
                self.frames.last_mut().expect("frame").ip += 1;
                if let MicroOp::Slow(inst) = &di.op {
                    self.exec_inst(func_id, di.at, inst)?;
                }
                Ok(true)
            }
            Stop::Term => {
                let frame = self.frames.last().expect("frame");
                let block_id = frame.block;
                let block = dfunc.block(block_id);
                let term = block.term.ok_or_else(|| Trap {
                    kind: TrapKind::Eval(format!("unterminated block {block_id}")),
                    at: self.dyn_insts,
                })?;
                self.charge(func_id, block.region, 1, false);
                self.exec_term(func_id, block_id, term)?;
                Ok(!self.frames.is_empty())
            }
        }
    }

    fn exec_inst(
        &mut self,
        func_id: FuncId,
        at: encore_ir::InstRef,
        inst: &Inst,
    ) -> Result<(), Trap> {
        match inst {
            Inst::Bin { op, dst, lhs, rhs } => {
                let a = self.operand(lhs);
                let b = self.operand(rhs);
                let v = eval_bin(*op, a, b).map_err(|e| Trap {
                    kind: TrapKind::Eval(e.message),
                    at: self.dyn_insts,
                })?;
                let v = self.maybe_inject(v);
                self.set_reg(*dst, v);
            }
            Inst::Un { op, dst, src } => {
                let a = self.operand(src);
                let v = eval_un(*op, a).map_err(|e| Trap {
                    kind: TrapKind::Eval(e.message),
                    at: self.dyn_insts,
                })?;
                let v = self.maybe_inject(v);
                self.set_reg(*dst, v);
            }
            Inst::Mov { dst, src } => {
                let v = self.operand(src);
                let v = self.maybe_inject(v);
                self.set_reg(*dst, v);
            }
            Inst::Load { dst, addr } => {
                let (obj, idx) = self.resolve(addr)?;
                let idx = self.maybe_corrupt_addr(idx);
                let v = self.mem.read(obj, idx).map_err(|e| Trap {
                    kind: TrapKind::Memory(e.message),
                    at: self.dyn_insts,
                })?;
                self.trace_mem(encore_ir::AccessKind::Load, obj, idx);
                self.note_footprint(func_id, at, obj, idx);
                self.log_mem_access(obj, idx, false);
                let v = self.maybe_inject(v);
                self.set_reg(*dst, v);
            }
            Inst::Store { addr, src } => {
                let (obj, idx) = self.resolve(addr)?;
                let idx = self.maybe_corrupt_addr(idx);
                let v = self.operand(src);
                let v = self.maybe_inject(v);
                self.mem.write(obj, idx, v).map_err(|e| Trap {
                    kind: TrapKind::Memory(e.message),
                    at: self.dyn_insts,
                })?;
                self.trace_mem(encore_ir::AccessKind::Store, obj, idx);
                self.note_footprint(func_id, at, obj, idx);
                self.log_mem_access(obj, idx, true);
            }
            Inst::Lea { dst, addr } => {
                let (obj, idx) = self.resolve(addr)?;
                self.set_reg(*dst, Value::Ptr { obj, idx });
            }
            Inst::Alloc { dst, site, size } => {
                let n = self
                    .operand(size)
                    .as_int()
                    .filter(|n| *n >= 0)
                    .ok_or_else(|| Trap {
                        kind: TrapKind::Memory("alloc size must be a non-negative int".into()),
                        at: self.dyn_insts,
                    })?;
                let handle = self.mem.alloc(ObjKind::Heap(self.heap_seq), n as usize);
                self.heap_seq += 1;
                // Decode sized the table over every Alloc site.
                self.last_alloc_of_site[site.index()] = Some(handle);
                self.set_reg(*dst, Value::Ptr { obj: handle, idx: 0 });
            }
            Inst::Call { callee, dst, args } => {
                let vals: Vec<Value> = args.iter().map(|a| self.operand(a)).collect();
                self.call(*callee, &vals, *dst);
            }
            Inst::CallExt { name, dst, args, .. } => {
                let vals: Vec<Value> = args.iter().map(|a| self.operand(a)).collect();
                let r = self.externs.call(name, &vals).map_err(|e| Trap {
                    kind: TrapKind::Eval(e.message),
                    at: self.dyn_insts,
                })?;
                if let Some(d) = dst {
                    let r = self.maybe_inject(r);
                    self.set_reg(*d, r);
                }
            }
            Inst::SetRecovery { region } => {
                let info = self
                    .map
                    .and_then(|m| m.regions.get(region.index()))
                    .ok_or_else(|| Trap {
                        kind: TrapKind::Eval(format!("SetRecovery for unknown {region}")),
                        at: self.dyn_insts,
                    })?;
                let rb = info.recovery_block.ok_or_else(|| Trap {
                    kind: TrapKind::Eval(format!("{region} has no recovery block")),
                    at: self.dyn_insts,
                })?;
                let (ordinal, _) = self.splice.on_set_recovery(self.dyn_insts);
                let frame = self.frames.last_mut().expect("frame");
                frame.recovery = Some(RecoveryState {
                    region: *region,
                    recovery_block: rb,
                    log: Vec::new(),
                    log_bytes: 0,
                    act_ordinal: ordinal,
                });
            }
            Inst::CheckpointMem { addr } => {
                let (obj, idx) = self.resolve(addr)?;
                let val = self.mem.read(obj, idx).map_err(|e| Trap {
                    kind: TrapKind::Memory(e.message),
                    at: self.dyn_insts,
                })?;
                self.log_mem_access(obj, idx, false);
                let frame = self.frames.last_mut().expect("frame");
                if let Some(rec) = &mut frame.recovery {
                    rec.log.push(CkptEntry::Mem { obj, idx, val });
                    rec.log_bytes += 16;
                    self.ckpt_high_water = self.ckpt_high_water.max(rec.log_bytes);
                }
            }
            Inst::CheckpointReg { reg } => {
                let frame = self.frames.last_mut().expect("frame");
                let val = frame.regs[reg.index()];
                if let Some(rec) = &mut frame.recovery {
                    rec.log.push(CkptEntry::Reg { reg: *reg, val });
                    rec.log_bytes += 8;
                    self.ckpt_high_water = self.ckpt_high_water.max(rec.log_bytes);
                }
            }
            Inst::Restore { region } => {
                let frame = self.frames.last_mut().expect("frame");
                let Some(rec) = &mut frame.recovery else {
                    return Err(Trap {
                        kind: TrapKind::Eval(format!("Restore {region} with no armed recovery")),
                        at: self.dyn_insts,
                    });
                };
                let log = std::mem::take(&mut rec.log);
                rec.log_bytes = 0;
                for entry in log.into_iter().rev() {
                    match entry {
                        CkptEntry::Reg { reg, val } => {
                            self.frames.last_mut().expect("frame").regs[reg.index()] = val;
                        }
                        CkptEntry::Mem { obj, idx, val } => {
                            self.mem.write(obj, idx, val).map_err(|e| Trap {
                                kind: TrapKind::Memory(e.message),
                                at: self.dyn_insts,
                            })?;
                            self.log_mem_access(obj, idx, true);
                        }
                    }
                }
            }
        }
        let _ = func_id;
        Ok(())
    }

    fn exec_term(
        &mut self,
        func_id: FuncId,
        block_id: BlockId,
        term: &Terminator,
    ) -> Result<(), Trap> {
        match term {
            Terminator::Jump(t) => {
                self.note_edge(func_id, block_id, *t);
                self.note_block_entry(func_id, *t);
                let frame = self.frames.last_mut().expect("frame");
                frame.block = *t;
                frame.ip = 0;
            }
            Terminator::Branch { cond, then_bb, else_bb } => {
                let c = self.operand(cond);
                let mut target = if c.truthy() { *then_bb } else { *else_bb };
                // An armed wrong-edge fault fires at the first
                // conditional branch after its ordinal, taking the
                // not-taken edge (mirrors the sprint loop).
                let wrong_edge = matches!(
                    &self.fault,
                    Some(f) if f.armed
                        && !f.injected
                        && matches!(f.plan.action, FaultAction::WrongEdge)
                );
                if wrong_edge {
                    target = if target == *then_bb { *else_bb } else { *then_bb };
                    let site = self.frames.last().map(|fr| (fr.func, fr.block));
                    let f = self.fault.as_mut().expect("fault");
                    f.injected = true;
                    f.detect_at = Some(self.dyn_insts + f.plan.detect_latency);
                    self.telemetry.injected = true;
                    self.telemetry.inject_site = site;
                }
                self.note_edge(func_id, block_id, target);
                self.note_block_entry(func_id, target);
                let frame = self.frames.last_mut().expect("frame");
                frame.block = target;
                frame.ip = 0;
            }
            Terminator::Ret(v) => {
                let val = v.as_ref().map(|op| self.operand(op));
                let frame = self.frames.pop().expect("frame");
                if let Some(p) = &mut self.profile {
                    p.func_mut(func_id).invocations += 1;
                }
                match self.frames.last_mut() {
                    Some(caller) => {
                        if let Some(dst) = frame.ret_dst {
                            caller.regs[dst.index()] = val.unwrap_or(Value::ZERO);
                            self.reg_dirty |= 1 << dst.index().min(63);
                        }
                    }
                    None => self.final_ret = val,
                }
            }
        }
        Ok(())
    }

    fn fault_live(&self) -> bool {
        self.fault.as_ref().map(|f| f.injected && !f.detected).unwrap_or(false)
    }

    /// One [`Machine::step`] with symptom-based detection folded in: a
    /// trap while an undetected fault is live (other than fuel
    /// exhaustion) triggers the recovery path instead of terminating
    /// the run. The shared stepping primitive of [`Machine::run_to_end`]
    /// and the splice driver, so both have identical fault semantics.
    fn step_detected(&mut self, limit: u64) -> Result<bool, Trap> {
        match self.step(limit) {
            Ok(alive) => Ok(alive),
            Err(t) => {
                if self.fault_live() && !matches!(t.kind, TrapKind::FuelExhausted) {
                    self.trigger_recovery()?;
                    return Ok(true);
                }
                Err(t)
            }
        }
    }

    /// Runs until completion or a terminal trap, returning the trap.
    pub(crate) fn run_to_end(&mut self) -> Option<Trap> {
        loop {
            match self.step_detected(u64::MAX) {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(t) => return Some(t),
            }
        }
    }

    /// [`Machine::run_to_end`] for campaign injection runs, with the
    /// divergence-tracked splice: after a rollback realigns the run
    /// against the golden activation timeline, successive golden
    /// snapshots are probed and the run's *diff* against each is
    /// classified by [`Machine::classify_divergence`] — a certified
    /// rule ends the run early; a miss merely falls back to plain
    /// execution. See [`SpliceTrack`] for the realignment mechanics
    /// and [`SpliceRule`] for the per-rule soundness arguments.
    pub(crate) fn run_to_end_or_splice(
        &mut self,
        snapshots: &SnapshotLog,
        golden_final_dyn: u64,
        incremental: bool,
    ) -> SpliceRun {
        self.splice.armed = true;
        // Phase 1: run normally until a rollback's re-executed arming
        // realigns the run (or the run just finishes).
        let (realign_dyn, ordinal) = loop {
            match self.step_detected(u64::MAX) {
                Ok(true) => {
                    if let Some(r) = self.splice.realign.take() {
                        break r;
                    }
                }
                Ok(false) => return SpliceRun::Done(None),
                Err(t) => return SpliceRun::Done(Some(t)),
            }
        };
        // `delta`: how many more dynamic instructions this run has
        // retired than the golden run had at the same program point.
        // Unmeasurable (ordinal past the golden log, or the golden run
        // was ahead) means the timelines cannot be aligned: finish
        // normally.
        let Some(delta) = snapshots
            .activation_dyn()
            .get(ordinal as usize)
            .and_then(|&golden_dyn| realign_dyn.checked_sub(golden_dyn))
        else {
            return SpliceRun::Done(self.run_to_end());
        };
        // Phase 2: execute on, pausing at golden snapshots' realigned
        // positions (`snapshot dyn + delta`) to classify the state
        // diff. The probe *schedule* is dense-then-backoff: the first
        // `DENSE_PROBES` misses probe consecutive snapshots (the
        // earliest certifying snapshot saves the most suffix, and runs
        // that certify at all usually do so within a few snapshots of
        // realignment), after which the stride between probes doubles
        // up to `GAP_CAP` — a run whose diff has stayed live that long
        // rarely certifies later, so spaced probes stop charging a
        // sprint pause per snapshot to hopeless runs. Each probe's
        // *compare* is O(pages dirtied since the previous probe) on
        // the incremental path, not O(state). The schedule advances
        // only on misses, which are identical between the incremental
        // and full-scan compare paths, so both paths probe the same
        // states and report identically.
        const DENSE_PROBES: u32 = 8;
        const GAP_CAP: usize = 16;
        let mut idx = snapshots.first_at_or_after_dyn(self.dyn_insts.saturating_sub(delta));
        let mut diff: Vec<(u32, u32)> = Vec::new();
        let mut misses = 0u32;
        let mut gap = 1usize;
        loop {
            let Some(snap) = snapshots.get(idx) else {
                // Past the last golden snapshot: finish normally.
                return SpliceRun::Done(self.run_to_end());
            };
            let target = snap.dyn_insts + delta;
            loop {
                match self.step_detected(target) {
                    Ok(true) => {
                        if self.dyn_insts >= target {
                            break;
                        }
                    }
                    Ok(false) => return SpliceRun::Done(None),
                    Err(t) => return SpliceRun::Done(Some(t)),
                }
            }
            // A probe is only meaningful when the pause landed exactly
            // on the realigned position (instruction costs can
            // overshoot a bound), no fault is pending, and the fuel
            // headroom covers the golden suffix at this run's offset —
            // otherwise the continuation could diverge by a fuel trap
            // the golden run never hit.
            if self.dyn_insts == target
                && self.fault.is_none()
                && golden_final_dyn.saturating_sub(snap.dyn_insts) + self.dyn_insts < self.fuel
            {
                self.probe.cost.probes += 1;
                if let Some(rule) =
                    self.classify_divergence(snapshots, idx, snap, &mut diff, incremental)
                {
                    return SpliceRun::Spliced(rule, golden_final_dyn - snap.dyn_insts);
                }
            }
            misses += 1;
            if misses >= DENSE_PROBES && gap < GAP_CAP {
                gap *= 2;
            }
            idx += gap;
        }
    }

    /// The accumulated probe-cost counters of this run.
    pub(crate) fn probe_cost(&self) -> ProbeCost {
        self.probe.cost
    }

    /// The splice's probe predicate: classifies the run's divergence
    /// from golden snapshot `snap` (index `idx`), or `None` when no
    /// rule can certify an outcome here.
    ///
    /// The gate requires control-state equality — frames (registers,
    /// positions, armed recovery logs), allocation counters and the
    /// non-output extern state — so the only admissible divergence is
    /// in memory cells and the output channel. Under a deterministic
    /// interpreter, equal control state plus a memory diff no future
    /// instruction reads means the suffix executes *identically* to
    /// the golden suffix (same control flow, same writes, same output
    /// appends): the final state is then golden's, modulo exactly the
    /// divergent cells the suffix never overwrites and the
    /// already-diverged output prefix. The rules read off the outcome:
    ///
    /// * diff empty, output equal → [`SpliceRule::Converged`];
    /// * diff dead (∉ suffix reads), every divergent global cell
    ///   healed by a suffix write, output equal →
    ///   [`SpliceRule::DeadDiff`] (final state provably golden);
    /// * diff dead but output diverged or a global cell persists →
    ///   [`SpliceRule::Sdc`] (final state provably differs).
    ///
    /// Counters that influence neither the remaining execution nor the
    /// outcome classification (`dyn_insts`, `eligible_seen`,
    /// instrumentation/region accounting, the checkpoint high-water
    /// mark) are deliberately excluded; `dyn_insts` enters through the
    /// caller's fuel-headroom check instead.
    fn classify_divergence(
        &mut self,
        snapshots: &SnapshotLog,
        idx: usize,
        snap: &Snapshot,
        diff: &mut Vec<(u32, u32)>,
        incremental: bool,
    ) -> Option<SpliceRule> {
        // Cheapest fields first so diverged runs fail fast.
        if self.frame_seq != snap.frame_seq
            || self.heap_seq != snap.heap_seq
            || self.last_alloc_of_site != snap.last_alloc_of_site
            || !self.externs.state_equal_ignoring_output(&snap.externs)
            || !self.frames_equal(snap)
        {
            return None;
        }
        let mem_comparable = if incremental {
            // Bring the candidate set up to this probe target: golden
            // pages written between the last absorbed snapshot and this
            // one (interval lists — absorbed in either direction, since
            // realignment can land a probe before the resume base),
            // pages this run wrote since the last drain, and the
            // snapshot's NaN poison pages. Everything outside the
            // resulting set is bitwise-identical on both sides.
            let Machine { mem, probe, base_objects, .. } = self;
            match probe.absorbed_through {
                None => {
                    for j in 0..=idx {
                        probe.pending.extend_from_slice(snapshots.interval_pages(j));
                    }
                }
                Some(a) if idx > a => {
                    for j in a + 1..=idx {
                        probe.pending.extend_from_slice(snapshots.interval_pages(j));
                    }
                }
                Some(a) if idx < a => {
                    for j in idx + 1..=a {
                        probe.pending.extend_from_slice(snapshots.interval_pages(j));
                    }
                }
                Some(_) => {}
            }
            probe.absorbed_through = Some(idx);
            mem.drain_dirty_pages(&mut probe.pending);
            probe.pending.extend_from_slice(snap.page_hashes.poison_pages());
            probe.pending.sort_unstable();
            probe.pending.dedup();
            mem.diff_cells_dirty(
                &snap.mem,
                &snap.page_hashes,
                &mut probe.pending,
                *base_objects,
                DIFF_CAP,
                diff,
                &mut probe.cost,
            )
        } else {
            self.probe.cost.words_compared += self.mem.cell_count();
            self.mem.diff_cells(&snap.mem, DIFF_CAP, diff)
        };
        if !mem_comparable {
            return None;
        }
        let out_eq = self.externs.output == snap.externs.output;
        if diff.is_empty() && out_eq {
            return Some(SpliceRule::Converged);
        }
        // Rules (b)/(c) need the golden suffix access summaries.
        let reads = snapshots.suffix_reads(idx)?;
        let writes = snapshots.suffix_writes(idx)?;
        if diff.iter().any(|&(o, i)| reads.contains(o, i)) {
            // A divergent cell feeds the suffix: its fate is unprovable
            // here. Keep executing — later probes may still certify.
            return None;
        }
        // Dead diff. Non-global cells are architecturally invisible;
        // a global cell the suffix overwrites heals to golden's value
        // (the suffix executes identically); one it never writes
        // persists into the final observable state.
        let persists = diff
            .iter()
            .any(|&(o, i)| self.mem.is_global(o as usize) && !writes.contains(o, i));
        if out_eq && !persists {
            Some(SpliceRule::DeadDiff)
        } else {
            Some(SpliceRule::Sdc)
        }
    }

    /// Exactly `self.frames == snap.frames`, ordered to fail fast:
    /// frames are compared innermost-first (the top frame diverges
    /// first in practice), and the top frame's recently written
    /// registers — the `reg_dirty` generation mask — are checked before
    /// the full structural compare. Pure reordering: the verdict is
    /// identical to the derived equality, because register state can
    /// never be *skipped* (golden registers change every instruction,
    /// so there is no analogue of a clean memory page here).
    fn frames_equal(&self, snap: &Snapshot) -> bool {
        if self.frames.len() != snap.frames.len() {
            return false;
        }
        if let (Some(a), Some(b)) = (self.frames.last(), snap.frames.last()) {
            let mut mask = self.reg_dirty;
            let n = a.regs.len().min(b.regs.len()).min(63);
            while mask != 0 {
                let r = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if r < n && a.regs[r] != b.regs[r] {
                    return false;
                }
            }
        }
        self.frames.iter().rev().eq(snap.frames.iter().rev())
    }

    /// Start recording the golden activation timeline (dyn count at
    /// each `SetRecovery`, by ordinal).
    fn enable_act_log(&mut self) {
        self.splice.act_log = Some(Vec::new());
    }

    /// The recorded activation timeline.
    fn take_act_log(&mut self) -> Vec<u64> {
        self.splice.act_log.take().unwrap_or_default()
    }

    /// Start recording per-interval memory access chunks for the
    /// divergence splice's suffix summaries. Forces the general
    /// executor (the sprint's fast path has no recording hooks) — a
    /// one-time cost on the golden capture run only.
    fn enable_mem_log(&mut self) {
        self.mem_log = Some(Box::default());
        self.observing = true;
    }

    /// Notes one memory access into the active log, if any.
    #[inline]
    fn log_mem_access(&mut self, obj: usize, idx: i64, write: bool) {
        if let Some(log) = &mut self.mem_log {
            // A successful access bounds-checked both coordinates.
            let cell = (obj as u32, idx as u32);
            if write { log.writes.insert(cell) } else { log.reads.insert(cell) };
        }
    }

    /// Seals the final interval and hands back `(read, write)` chunks —
    /// one per inter-snapshot interval plus the capture-to-end tail.
    fn take_mem_chunks(&mut self) -> (AccessChunks, AccessChunks) {
        let mut log = self.mem_log.take().expect("mem log enabled");
        log.seal();
        (log.read_chunks, log.write_chunks)
    }

    /// [`Machine::run_to_end`] for fault-free runs, capturing a
    /// snapshot into `log` at the first step boundary past each
    /// `stride`-instruction interval.
    fn run_to_end_capturing(&mut self, stride: u64, log: &mut SnapshotLog) -> Option<Trap> {
        debug_assert!(stride > 0 && self.fault.is_none());
        // Hash every page of the current state once; each capture below
        // re-hashes only the pages written since the previous capture
        // (the drained dirty set), so golden hash maintenance is
        // O(pages written), not O(state) per snapshot.
        self.golden_hashes = Some(PageHashes::of_memory(&self.mem));
        self.mem.reset_dirty();
        let mut next_at = stride;
        loop {
            if self.dyn_insts >= next_at && !self.frames.is_empty() {
                if let Some(ml) = &mut self.mem_log {
                    ml.seal();
                }
                let mut interval = Vec::new();
                self.mem.drain_dirty_pages(&mut interval);
                let mut hashes = self.golden_hashes.take().expect("golden hash state");
                hashes.extend_new_objects(&self.mem);
                hashes.update(&self.mem, &interval);
                let mut snap = self.capture_snapshot();
                snap.page_hashes = hashes.clone();
                self.golden_hashes = Some(hashes);
                log.push(snap, interval);
                next_at = self.dyn_insts + stride;
            }
            // Bounding the sprint by `next_at` keeps capture points at
            // exact instruction-count boundaries.
            match self.step(next_at) {
                Ok(true) => continue,
                Ok(false) => return None,
                // No fault is live (asserted), so a trap is terminal.
                Err(t) => return Some(t),
            }
        }
    }

    /// Consumes the machine into a [`RunResult`] after `run_to_end`
    /// returned `trap`.
    pub(crate) fn into_result(self, trap: Option<Trap>) -> RunResult {
        let mut region_dyn = BTreeMap::new();
        for (i, (&count, &touched)) in
            self.region_dyn.iter().zip(self.region_touched.iter()).enumerate()
        {
            if touched {
                region_dyn.insert(RegionId::new(i as u32), count);
            }
        }
        RunResult {
            ret: self.final_ret,
            completed: trap.is_none(),
            trap,
            dyn_insts: self.dyn_insts,
            instr_dyn_insts: self.instr_dyn,
            output: self.externs.output,
            globals: self.mem.globals_snapshot(),
            profile: self.profile,
            trace: self.trace,
            region_dyn,
            eligible_insts: self.eligible_seen,
            ckpt_high_water_bytes: self.ckpt_high_water,
            fault: self.telemetry,
        }
    }

    /// Entry call's return value (valid once `run_to_end` reported
    /// completion).
    pub(crate) fn final_ret(&self) -> Option<Value> {
        self.final_ret
    }

    /// The observable output channel.
    pub(crate) fn output(&self) -> &[i64] {
        &self.externs.output
    }

    /// The memory state.
    pub(crate) fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Fault telemetry of this run.
    pub(crate) fn telemetry(&self) -> &FaultTelemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{AddrExpr, BinOp, ExtEffect, ModuleBuilder};

    fn run_simple(m: &Module, entry: &str, args: &[Value]) -> RunResult {
        let fid = m.func_by_name(entry).expect("entry exists");
        run_function(m, None, fid, args, &RunConfig::default())
    }

    #[test]
    fn arithmetic_and_return() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("add", 2, |f| {
            let a = f.param(0);
            let b = f.param(1);
            let s = f.bin(BinOp::Add, a.into(), b.into());
            f.ret(Some(s.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "add", &[Value::Int(2), Value::Int(40)]);
        assert!(r.completed);
        assert_eq!(r.ret, Some(Value::Int(42)));
        assert!(r.dyn_insts >= 2);
    }

    #[test]
    fn loop_sums_correctly() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("sum", 1, |f| {
            let n = f.param(0);
            let acc = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.bin_to(acc, BinOp::Add, acc.into(), i.into());
            });
            f.ret(Some(acc.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "sum", &[Value::Int(10)]);
        assert_eq!(r.ret, Some(Value::Int(45)));
    }

    #[test]
    fn memory_and_globals_observable() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 2);
        mb.function("f", 0, |f| {
            f.store(AddrExpr::global(g, 0), Operand::ImmI(7));
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::global(g, 1), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let r = run_simple(&m, "f", &[]);
        assert_eq!(r.globals[0][0], Value::Int(7));
        assert_eq!(r.globals[0][1], Value::Int(7));
    }

    #[test]
    fn calls_and_slots() {
        let mut mb = ModuleBuilder::new("m");
        let sq = mb.function("sq", 1, |f| {
            let p = f.param(0);
            let r = f.bin(BinOp::Mul, p.into(), p.into());
            f.ret(Some(r.into()));
        });
        mb.function("main", 0, |f| {
            let s = f.slot(2);
            let v = f.call(sq, &[Operand::ImmI(6)]);
            f.store(AddrExpr::slot(s, 0), v.into());
            let w = f.load(AddrExpr::slot(s, 0));
            f.ret(Some(w.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "main", &[]);
        assert_eq!(r.ret, Some(Value::Int(36)));
    }

    #[test]
    fn recursion_works() {
        let mut mb = ModuleBuilder::new("m");
        let fib = mb.declare("fib", 1);
        mb.define(fib, |f| {
            let n = f.param(0);
            let base = f.bin(BinOp::Lt, n.into(), Operand::ImmI(2));
            f.if_then(base.into(), |f| f.ret(Some(n.into())));
            let n1 = f.bin(BinOp::Sub, n.into(), Operand::ImmI(1));
            let n2 = f.bin(BinOp::Sub, n.into(), Operand::ImmI(2));
            let a = f.call(fib, &[n1.into()]);
            let b = f.call(fib, &[n2.into()]);
            let s = f.bin(BinOp::Add, a.into(), b.into());
            f.ret(Some(s.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "fib", &[Value::Int(10)]);
        assert_eq!(r.ret, Some(Value::Int(55)));
    }

    #[test]
    fn heap_alloc_and_pointers() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let p = f.alloc(Operand::ImmI(4));
            f.store(AddrExpr::reg(p, 2), Operand::ImmI(11));
            let q = f.bin(BinOp::Add, p.into(), Operand::ImmI(2));
            let v = f.load(AddrExpr::reg(q, 0));
            f.ret(Some(v.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "f", &[]);
        assert_eq!(r.ret, Some(Value::Int(11)));
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        mb.function("f", 0, |f| {
            f.store(AddrExpr::global(g, 5), Operand::ImmI(1));
            f.ret(None);
        });
        let m = mb.finish();
        let r = run_simple(&m, "f", &[]);
        assert!(!r.completed);
        assert!(matches!(r.trap.as_ref().unwrap().kind, TrapKind::Memory(_)));
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let header = f.add_block();
            f.jump(header);
            f.switch_to(header);
            f.jump(header);
        });
        let m = mb.finish();
        let fid = m.func_by_name("f").unwrap();
        let config = RunConfig { fuel: 1000, ..Default::default() };
        let r = run_function(&m, None, fid, &[], &config);
        assert!(!r.completed);
        assert_eq!(r.trap.unwrap().kind, TrapKind::FuelExhausted);
    }

    #[test]
    fn profile_counts_blocks_and_edges() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let acc = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.bin_to(acc, BinOp::Add, acc.into(), i.into());
            });
            f.ret(Some(acc.into()));
        });
        let m = mb.finish();
        let fid = m.func_by_name("f").unwrap();
        let config = RunConfig { collect_profile: true, ..Default::default() };
        let r = run_function(&m, None, fid, &[Value::Int(5)], &config);
        let p = r.profile.expect("profile collected");
        let fp = p.func(fid);
        // Entry once; loop header 6 times (5 iterations + final check);
        // body 5 times.
        assert_eq!(fp.count(BlockId::new(0)), 1);
        assert_eq!(fp.count(BlockId::new(1)), 6);
        assert_eq!(fp.count(BlockId::new(2)), 5);
        assert_eq!(fp.invocations, 1);
        assert_eq!(p.total_dyn_insts, r.dyn_insts);
    }

    #[test]
    fn trace_records_memory_events() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 2);
        mb.function("f", 0, |f| {
            f.store(AddrExpr::global(g, 0), Operand::ImmI(1));
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::global(g, 1), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let fid = m.func_by_name("f").unwrap();
        let config = RunConfig { collect_trace: true, ..Default::default() };
        let r = run_function(&m, None, fid, &[], &config);
        let t = r.trace.expect("trace collected");
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].kind, encore_ir::AccessKind::Store);
        assert_eq!(t[1].kind, encore_ir::AccessKind::Load);
        assert_eq!(t[0].cell, t[1].cell);
    }

    #[test]
    fn externs_flow_through() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let x = f.call_ext("pow", &[Operand::ImmF(2.0), Operand::ImmF(3.0)], ExtEffect::Pure);
            let i = f.un(encore_ir::UnOp::FToI, x.into());
            f.call_ext_void("print_i64", &[i.into()], ExtEffect::Opaque);
            f.ret(Some(i.into()));
        });
        let m = mb.finish();
        let r = run_simple(&m, "f", &[]);
        assert_eq!(r.ret, Some(Value::Int(8)));
        assert_eq!(r.output, vec![8]);
    }

    #[test]
    fn profiling_collects_memory_footprints() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.load(AddrExpr::indexed(MemBase::Global(g), i, 1, 0));
                f.store(AddrExpr::indexed(MemBase::Global(g), i, 1, 4), v.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let fid = m.func_by_name("f").unwrap();
        let config = RunConfig { collect_profile: true, ..Default::default() };
        let r = run_function(&m, None, fid, &[Value::Int(4)], &config);
        let profile = r.profile.expect("profile");
        assert!(profile.mem.site_count() >= 2, "load + store sites recorded");
        // The load site touched cells 0..4, the store site 4..8: disjoint.
        let sites: Vec<_> = m
            .func(fid)
            .iter_insts()
            .filter(|(_, i)| i.load_addr().is_some() || i.store_addr().is_some())
            .map(|(at, _)| encore_analysis::SiteRef { func: fid, at })
            .collect();
        assert_eq!(sites.len(), 2);
        assert!(profile.mem.observed_disjoint(sites[0], sites[1]));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 4);
        mb.function("f", 0, |f| {
            f.for_range(Operand::ImmI(0), Operand::ImmI(4), |f, i| {
                let v = f.call_ext("prng_range", &[Operand::ImmI(100)], ExtEffect::Opaque);
                f.store(
                    AddrExpr::indexed(MemBase::Global(g), i, 1, 0),
                    v.into(),
                );
            });
            f.ret(None);
        });
        let m = mb.finish();
        let a = run_simple(&m, "f", &[]);
        let b = run_simple(&m, "f", &[]);
        assert!(a.observably_equal(&b));
        assert_eq!(a.dyn_insts, b.dyn_insts);
    }
}
