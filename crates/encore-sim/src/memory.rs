//! Segmented machine memory.
//!
//! Memory is a table of objects (globals, per-activation stack slots,
//! heap allocations), each an array of 8-byte cells holding [`Value`]s.
//! Object handles are plain indices into the table; objects are never
//! deallocated (arena style), which keeps dangling-pointer semantics
//! deterministic during fault-injection runs.

use crate::value::Value;
use encore_ir::{Cell, Module, ObjKind};

/// One memory object.
#[derive(Clone, PartialEq, Debug)]
pub struct MemObject {
    /// What the object is (for trace events and debugging).
    pub kind: ObjKind,
    /// The cells.
    pub cells: Vec<Value>,
}

/// A memory access error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemError {
    /// Description (object, index, bound).
    pub message: String,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for MemError {}

/// The machine's memory state.
#[derive(Clone, PartialEq, Debug)]
pub struct Memory {
    objects: Vec<MemObject>,
    /// Number of globals (the first `global_count` objects).
    global_count: usize,
}

impl Memory {
    /// Creates memory with one object per module global, applying
    /// declared initializers.
    pub fn for_module(module: &Module) -> Self {
        let objects = module
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let mut cells = vec![Value::ZERO; g.cells as usize];
                for (j, v) in g.init.iter().enumerate().take(cells.len()) {
                    cells[j] = Value::Int(*v);
                }
                MemObject { kind: ObjKind::Global(i as u32), cells }
            })
            .collect();
        Self { objects, global_count: module.globals.len() }
    }

    /// Handle of global `g`.
    pub fn global_handle(&self, g: u32) -> usize {
        debug_assert!((g as usize) < self.global_count);
        g as usize
    }

    /// Allocates a fresh object of `cells` cells, returning its handle.
    pub fn alloc(&mut self, kind: ObjKind, cells: usize) -> usize {
        let handle = self.objects.len();
        self.objects.push(MemObject { kind, cells: vec![Value::ZERO; cells] });
        handle
    }

    /// Reads cell `idx` of object `handle`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds or negative indices and dangling handles produce a
    /// [`MemError`] (the simulator turns it into a detected symptom).
    #[inline]
    pub fn read(&self, handle: usize, idx: i64) -> Result<Value, MemError> {
        let obj = self.objects.get(handle).ok_or_else(|| MemError {
            message: format!("read from dangling object handle {handle}"),
        })?;
        if idx < 0 || idx as usize >= obj.cells.len() {
            return Err(MemError {
                message: format!(
                    "out-of-bounds read: {}[{idx}] (size {})",
                    obj.kind,
                    obj.cells.len()
                ),
            });
        }
        Ok(obj.cells[idx as usize])
    }

    /// Writes cell `idx` of object `handle`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::read`].
    #[inline]
    pub fn write(&mut self, handle: usize, idx: i64, v: Value) -> Result<(), MemError> {
        let obj = self.objects.get_mut(handle).ok_or_else(|| MemError {
            message: format!("write to dangling object handle {handle}"),
        })?;
        if idx < 0 || idx as usize >= obj.cells.len() {
            return Err(MemError {
                message: format!(
                    "out-of-bounds write: {}[{idx}] (size {})",
                    obj.kind,
                    obj.cells.len()
                ),
            });
        }
        obj.cells[idx as usize] = v;
        Ok(())
    }

    /// The trace-event cell identity for `(handle, idx)`.
    pub fn cell_of(&self, handle: usize, idx: i64) -> Cell {
        let kind = self
            .objects
            .get(handle)
            .map(|o| o.kind)
            .unwrap_or(ObjKind::Heap(u32::MAX));
        Cell { obj: kind, index: idx.max(0) as u64 }
    }

    /// Snapshot of all global objects (the architecturally observable
    /// state compared against golden runs).
    pub fn globals_snapshot(&self) -> Vec<Vec<Value>> {
        self.objects[..self.global_count]
            .iter()
            .map(|o| o.cells.clone())
            .collect()
    }

    /// Compares the global objects against a previously taken
    /// [`Memory::globals_snapshot`] without allocating — the hot
    /// classification path of fault-injection campaigns.
    pub fn globals_equal(&self, golden: &[Vec<Value>]) -> bool {
        self.global_count == golden.len()
            && self.objects[..self.global_count]
                .iter()
                .zip(golden)
                .all(|(o, g)| o.cells == *g)
    }

    /// Total number of objects ever created.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// `true` when `handle` names a global object (the architecturally
    /// observable segment).
    pub fn is_global(&self, handle: usize) -> bool {
        handle < self.global_count
    }

    /// Collects into `out` every `(object, cell)` where `self` and
    /// `other` disagree, up to `cap` cells.
    ///
    /// Returns `false` — leaving `out` in an unspecified state — when
    /// the two memories are not cell-comparable (different object
    /// counts, kinds or sizes) or the diff exceeds `cap`; `true` means
    /// `out` is the *complete* diff. The divergence splice treats
    /// `false` as "cannot certify", so the bound is a performance cap,
    /// never a soundness concern.
    pub fn diff_cells(&self, other: &Memory, cap: usize, out: &mut Vec<(u32, u32)>) -> bool {
        out.clear();
        if self.objects.len() != other.objects.len() || self.global_count != other.global_count {
            return false;
        }
        for (h, (a, b)) in self.objects.iter().zip(other.objects.iter()).enumerate() {
            if a.kind != b.kind || a.cells.len() != b.cells.len() {
                return false;
            }
            if a.cells == b.cells {
                continue;
            }
            for (i, (va, vb)) in a.cells.iter().zip(b.cells.iter()).enumerate() {
                if va != vb {
                    if out.len() == cap {
                        return false;
                    }
                    out.push((h as u32, i as u32));
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::ModuleBuilder;

    fn mem() -> Memory {
        let mut mb = ModuleBuilder::new("m");
        mb.global_init("a", 4, vec![1, 2]);
        mb.global("b", 2);
        Memory::for_module(&mb.finish())
    }

    #[test]
    fn globals_initialized() {
        let m = mem();
        assert_eq!(m.read(0, 0).unwrap(), Value::Int(1));
        assert_eq!(m.read(0, 1).unwrap(), Value::Int(2));
        assert_eq!(m.read(0, 2).unwrap(), Value::ZERO);
        assert_eq!(m.read(1, 0).unwrap(), Value::ZERO);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = mem();
        m.write(1, 1, Value::Float(2.5)).unwrap();
        assert_eq!(m.read(1, 1).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn bounds_checked() {
        let mut m = mem();
        assert!(m.read(0, 4).is_err());
        assert!(m.read(0, -1).is_err());
        assert!(m.write(0, 100, Value::ZERO).is_err());
        assert!(m.read(99, 0).is_err());
    }

    #[test]
    fn alloc_extends_object_table() {
        let mut m = mem();
        let h = m.alloc(ObjKind::Heap(0), 3);
        assert_eq!(h, 2);
        m.write(h, 2, Value::Int(9)).unwrap();
        assert_eq!(m.read(h, 2).unwrap(), Value::Int(9));
        assert_eq!(m.object_count(), 3);
    }

    #[test]
    fn snapshot_covers_globals_only() {
        let mut m = mem();
        m.alloc(ObjKind::Heap(0), 8);
        let snap = m.globals_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0][0], Value::Int(1));
    }

    #[test]
    fn globals_equal_mirrors_snapshot() {
        let mut m = mem();
        let snap = m.globals_snapshot();
        assert!(m.globals_equal(&snap));
        m.write(1, 0, Value::Int(5)).unwrap();
        assert!(!m.globals_equal(&snap));
        m.write(1, 0, Value::ZERO).unwrap();
        m.alloc(ObjKind::Heap(0), 4); // heap objects are not observable
        assert!(m.globals_equal(&snap));
        assert!(!m.globals_equal(&snap[..1]));
    }

    #[test]
    fn diff_cells_enumerates_divergence() {
        let mut a = mem();
        let b = mem();
        let mut out = Vec::new();
        assert!(a.diff_cells(&b, 8, &mut out));
        assert!(out.is_empty());
        a.write(0, 1, Value::Int(99)).unwrap();
        a.write(1, 0, Value::Int(-1)).unwrap();
        assert!(a.diff_cells(&b, 8, &mut out));
        assert_eq!(out, vec![(0, 1), (1, 0)]);
        // Cap exceeded → incomparable, not a truncated diff.
        assert!(!a.diff_cells(&b, 1, &mut out));
        // Object-shape mismatch → incomparable.
        let mut c = mem();
        c.alloc(ObjKind::Heap(0), 2);
        assert!(!a.diff_cells(&c, 8, &mut out));
    }

    /// The capped → incomparable transition at exactly the splice's
    /// `DIFF_CAP`: a diff of `DIFF_CAP` cells is still a complete,
    /// classifiable diff; one more cell makes the pair incomparable.
    #[test]
    fn diff_cells_boundary_at_splice_diff_cap() {
        use crate::interp::DIFF_CAP;
        let mut mb = ModuleBuilder::new("m");
        mb.global("wide", (DIFF_CAP + 8) as u32);
        let module = mb.finish();
        let mut a = Memory::for_module(&module);
        let b = Memory::for_module(&module);
        let mut out = Vec::new();

        // Exactly DIFF_CAP diverged words: complete diff, all enumerated.
        for i in 0..DIFF_CAP {
            a.write(0, i as i64, Value::Int(1 + i as i64)).unwrap();
        }
        assert!(a.diff_cells(&b, DIFF_CAP, &mut out), "diff at cap must stay comparable");
        assert_eq!(out.len(), DIFF_CAP);
        assert_eq!(out.first(), Some(&(0, 0)));
        assert_eq!(out.last(), Some(&(0, (DIFF_CAP - 1) as u32)));

        // DIFF_CAP + 1 diverged words: incomparable, not truncated.
        a.write(0, DIFF_CAP as i64, Value::Int(-7)).unwrap();
        assert!(!a.diff_cells(&b, DIFF_CAP, &mut out), "diff past cap must be incomparable");
    }

    /// Shape mismatches are incomparable regardless of cell contents:
    /// differing object counts (an extra allocation), kinds and sizes
    /// all fail before any cell is compared.
    #[test]
    fn diff_cells_shape_mismatches_are_incomparable() {
        let a = mem();
        let mut out = vec![(9, 9)];
        // Extra object on one side.
        let mut extra = mem();
        extra.alloc(ObjKind::Heap(0), 2);
        assert!(!a.diff_cells(&extra, 8, &mut out));
        assert!(out.is_empty(), "failed compare must leave no stale diff");
        // Same object count, different kind.
        let mut heap_a = mem();
        heap_a.alloc(ObjKind::Heap(0), 2);
        let mut slot_b = mem();
        slot_b.alloc(ObjKind::Slot { frame: 0, slot: 0 }, 2);
        assert!(!heap_a.diff_cells(&slot_b, 8, &mut out));
        // Same kind, different size.
        let mut big = mem();
        big.alloc(ObjKind::Heap(0), 3);
        assert!(!heap_a.diff_cells(&big, 8, &mut out));
        // And the symmetric view agrees.
        assert!(!extra.diff_cells(&a, 8, &mut out));
    }

    #[test]
    fn globals_are_the_leading_objects() {
        let mut m = mem();
        assert!(m.is_global(0) && m.is_global(1));
        let h = m.alloc(ObjKind::Heap(0), 1);
        assert!(!m.is_global(h));
    }

    #[test]
    fn cell_identity() {
        let m = mem();
        let c = m.cell_of(1, 0);
        assert_eq!(c.obj, ObjKind::Global(1));
    }
}
