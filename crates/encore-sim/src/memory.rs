//! Segmented machine memory.
//!
//! Memory is a table of objects (globals, per-activation stack slots,
//! heap allocations), each an array of 8-byte cells holding [`Value`]s.
//! Object handles are plain indices into the table; objects are never
//! deallocated (arena style), which keeps dangling-pointer semantics
//! deterministic during fault-injection runs.
//!
//! ## Dirty tracking and copy-on-write
//!
//! Cell arrays live behind `Arc` so cloning a `Memory` (snapshot
//! capture, per-injection resume) is a table of refcount bumps, not an
//! O(state) copy; the first write to an object after a clone pays a
//! one-time copy of that object only. Every write also sets a bit in a
//! per-object, per-page (64-cell) dirty bitmap, and newly allocated
//! objects start fully dirty. [`Memory::drain_dirty_pages`] hands the
//! accumulated dirty page set to the splice's incremental compare
//! ([`Memory::diff_cells_dirty`]) and clears it, so repeated probes
//! cost O(pages written since the last probe) instead of O(state).

use crate::value::Value;
use encore_ir::{Cell, Module, ObjKind};
use std::sync::Arc;

/// Cells per dirty-tracking page (one `u64` bitmap word per page).
pub const PAGE_CELLS: usize = 64;

/// One memory object.
#[derive(Clone, Debug)]
pub struct MemObject {
    /// What the object is (for trace events and debugging).
    pub kind: ObjKind,
    /// The cells, shared copy-on-write across snapshots and resumed
    /// runs.
    cells: Arc<Vec<Value>>,
    /// One bit per cell, one word per [`PAGE_CELLS`]-cell page; bit set
    /// = cell written since the last drain/reset.
    dirty: Vec<u64>,
    /// Pages whose dirty word went 0 → nonzero since the last
    /// drain/reset, so draining is O(dirty pages), not O(pages).
    touched: Vec<u32>,
}

impl MemObject {
    /// The object's cells.
    #[must_use]
    pub fn cells(&self) -> &[Value] {
        &self.cells
    }
}

/// Equality is contents-only: the dirty bookkeeping is a comparison
/// accelerator, never part of the architectural state.
impl PartialEq for MemObject {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.cells == other.cells
    }
}

/// A memory access error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemError {
    /// Description (object, index, bound).
    pub message: String,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for MemError {}

/// The machine's memory state.
#[derive(Clone, Debug)]
pub struct Memory {
    objects: Vec<MemObject>,
    /// Number of globals (the first `global_count` objects).
    global_count: usize,
    /// Objects with a nonempty `touched` list (drain work list).
    touched_objs: Vec<u32>,
}

/// Equality is architectural state only (objects and segmentation);
/// dirty bookkeeping is excluded.
impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        self.global_count == other.global_count && self.objects == other.objects
    }
}

impl Memory {
    /// Creates memory with one object per module global, applying
    /// declared initializers. The fresh memory is dirty-clean: its
    /// baseline is the initial state itself.
    pub fn for_module(module: &Module) -> Self {
        let objects = module
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let mut cells = vec![Value::ZERO; g.cells as usize];
                for (j, v) in g.init.iter().enumerate().take(cells.len()) {
                    cells[j] = Value::Int(*v);
                }
                MemObject {
                    kind: ObjKind::Global(i as u32),
                    dirty: vec![0; cells.len().div_ceil(PAGE_CELLS)],
                    touched: Vec::new(),
                    cells: Arc::new(cells),
                }
            })
            .collect();
        Self { objects, global_count: module.globals.len(), touched_objs: Vec::new() }
    }

    /// Handle of global `g`.
    pub fn global_handle(&self, g: u32) -> usize {
        debug_assert!((g as usize) < self.global_count);
        g as usize
    }

    /// Allocates a fresh object of `cells` cells, returning its handle.
    ///
    /// The new object starts *fully dirty*: its contents have never
    /// been verified against anything, so every page must be a
    /// candidate at the next incremental compare.
    pub fn alloc(&mut self, kind: ObjKind, cells: usize) -> usize {
        let handle = self.objects.len();
        let pages = cells.div_ceil(PAGE_CELLS);
        self.objects.push(MemObject {
            kind,
            cells: Arc::new(vec![Value::ZERO; cells]),
            dirty: vec![!0u64; pages],
            touched: (0..pages as u32).collect(),
        });
        if pages > 0 {
            self.touched_objs.push(handle as u32);
        }
        handle
    }

    /// Reads cell `idx` of object `handle`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds or negative indices and dangling handles produce a
    /// [`MemError`] (the simulator turns it into a detected symptom).
    #[inline]
    pub fn read(&self, handle: usize, idx: i64) -> Result<Value, MemError> {
        let obj = self.objects.get(handle).ok_or_else(|| MemError {
            message: format!("read from dangling object handle {handle}"),
        })?;
        if idx < 0 || idx as usize >= obj.cells.len() {
            return Err(MemError {
                message: format!(
                    "out-of-bounds read: {}[{idx}] (size {})",
                    obj.kind,
                    obj.cells.len()
                ),
            });
        }
        Ok(obj.cells[idx as usize])
    }

    /// Writes cell `idx` of object `handle`.
    ///
    /// The single mutation funnel: every store — program, fault
    /// corruption, rollback restore — lands here, which is what makes
    /// the dirty bitmap a sound over-approximation of "cells that can
    /// differ from the resume baseline". The bit set is word-indexed
    /// and branch-free on the already-dirty path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::read`].
    #[inline]
    pub fn write(&mut self, handle: usize, idx: i64, v: Value) -> Result<(), MemError> {
        let obj = self.objects.get_mut(handle).ok_or_else(|| MemError {
            message: format!("write to dangling object handle {handle}"),
        })?;
        if idx < 0 || idx as usize >= obj.cells.len() {
            return Err(MemError {
                message: format!(
                    "out-of-bounds write: {}[{idx}] (size {})",
                    obj.kind,
                    obj.cells.len()
                ),
            });
        }
        let i = idx as usize;
        Arc::make_mut(&mut obj.cells)[i] = v;
        let w = &mut obj.dirty[i / PAGE_CELLS];
        if *w == 0 {
            if obj.touched.is_empty() {
                self.touched_objs.push(handle as u32);
            }
            obj.touched.push((i / PAGE_CELLS) as u32);
        }
        *w |= 1 << (i % PAGE_CELLS);
        Ok(())
    }

    /// Appends every dirty `(object, page)` pair to `out` (unsorted)
    /// and clears the dirty set — O(dirty pages).
    pub fn drain_dirty_pages(&mut self, out: &mut Vec<(u32, u32)>) {
        for &h in &self.touched_objs {
            let obj = &mut self.objects[h as usize];
            for &p in &obj.touched {
                obj.dirty[p as usize] = 0;
                out.push((h, p));
            }
            obj.touched.clear();
        }
        self.touched_objs.clear();
    }

    /// Clears the dirty set without reporting it — the reset at a
    /// resume boundary, where the restored snapshot *is* the baseline.
    pub fn reset_dirty(&mut self) {
        for &h in &self.touched_objs {
            let obj = &mut self.objects[h as usize];
            for &p in &obj.touched {
                obj.dirty[p as usize] = 0;
            }
            obj.touched.clear();
        }
        self.touched_objs.clear();
    }

    /// The trace-event cell identity for `(handle, idx)`.
    pub fn cell_of(&self, handle: usize, idx: i64) -> Cell {
        let kind = self
            .objects
            .get(handle)
            .map(|o| o.kind)
            .unwrap_or(ObjKind::Heap(u32::MAX));
        Cell { obj: kind, index: idx.max(0) as u64 }
    }

    /// Snapshot of all global objects (the architecturally observable
    /// state compared against golden runs).
    pub fn globals_snapshot(&self) -> Vec<Vec<Value>> {
        self.objects[..self.global_count]
            .iter()
            .map(|o| o.cells.as_ref().clone())
            .collect()
    }

    /// Compares the global objects against a previously taken
    /// [`Memory::globals_snapshot`] without allocating — the hot
    /// classification path of fault-injection campaigns.
    pub fn globals_equal(&self, golden: &[Vec<Value>]) -> bool {
        self.global_count == golden.len()
            && self.objects[..self.global_count]
                .iter()
                .zip(golden)
                .all(|(o, g)| *o.cells == *g)
    }

    /// Total number of objects ever created.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Total number of cells across all objects (the full-scan compare
    /// footprint, reported as probe cost by the reference path).
    pub fn cell_count(&self) -> u64 {
        self.objects.iter().map(|o| o.cells.len() as u64).sum()
    }

    /// `true` when `handle` names a global object (the architecturally
    /// observable segment).
    pub fn is_global(&self, handle: usize) -> bool {
        handle < self.global_count
    }

    /// Collects into `out` every `(object, cell)` where `self` and
    /// `other` disagree, up to `cap` cells.
    ///
    /// Returns `false` — leaving `out` in an unspecified state — when
    /// the two memories are not cell-comparable (different object
    /// counts, kinds or sizes) or the diff exceeds `cap`; `true` means
    /// `out` is the *complete* diff. The divergence splice treats
    /// `false` as "cannot certify", so the bound is a performance cap,
    /// never a soundness concern.
    ///
    /// This is the full-scan reference compare — O(state). The splice's
    /// hot path is [`Memory::diff_cells_dirty`], which short-circuits
    /// through the dirty bitmap and golden page hashes to visit only
    /// pages that can possibly differ; this walk remains as the
    /// `--no-incremental-diff` escape hatch and the differential-test
    /// oracle.
    pub fn diff_cells(&self, other: &Memory, cap: usize, out: &mut Vec<(u32, u32)>) -> bool {
        out.clear();
        if self.objects.len() != other.objects.len() || self.global_count != other.global_count {
            return false;
        }
        for (h, (a, b)) in self.objects.iter().zip(other.objects.iter()).enumerate() {
            if a.kind != b.kind || a.cells.len() != b.cells.len() {
                return false;
            }
            if a.cells == b.cells {
                continue;
            }
            for (i, (va, vb)) in a.cells.iter().zip(b.cells.iter()).enumerate() {
                if va != vb {
                    if out.len() == cap {
                        return false;
                    }
                    out.push((h as u32, i as u32));
                }
            }
        }
        true
    }

    /// Incremental variant of [`Memory::diff_cells`]: compares `self`
    /// (a resumed injection run) against `golden` (a golden snapshot's
    /// memory) touching only the candidate pages in `pending`, using
    /// `hashes` (the golden snapshot's precomputed page hashes) to
    /// dismiss candidates without reading a single golden cell.
    ///
    /// `pending` must be sorted, deduplicated, and contain every page
    /// where equality with `golden` is not already established: pages
    /// the run wrote since the last compare (drained dirty set), pages
    /// the golden run wrote between the previous probe target and this
    /// one (interval page lists), pages of objects allocated on either
    /// side since the resume base (allocation marks the new object
    /// fully dirty), and the golden snapshot's poison pages. Any page
    /// outside `pending` is bitwise-identical on both sides to the same
    /// baseline bytes and therefore equal. On return, `pending` has
    /// been pruned to the pages that still (or may still) differ —
    /// carried to the next probe, repeated compares are incremental.
    ///
    /// `base_objects` is the object count at the run's resume snapshot:
    /// objects below it are shape-identical by construction (handles
    /// are never reused and kind/size never change after allocation),
    /// so the shape check is O(objects allocated since resume).
    ///
    /// Verdict and diff contract are identical to `diff_cells`:
    /// `false` = incomparable (shape mismatch or diff past `cap`),
    /// `true` = `out` is the complete diff in ascending `(object,
    /// cell)` order. A hash match is trusted as page equality (FNV-1a
    /// over 64 cells; a colliding unequal page needs a 2^-64 accident —
    /// accepted by design, see DESIGN.md §13). Poison pages (golden
    /// cells unequal to themselves, i.e. NaN floats) bypass the hash
    /// and always word-compare, preserving `Value` equality semantics
    /// exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn diff_cells_dirty(
        &self,
        golden: &Memory,
        hashes: &PageHashes,
        pending: &mut Vec<(u32, u32)>,
        base_objects: usize,
        cap: usize,
        out: &mut Vec<(u32, u32)>,
        cost: &mut ProbeCost,
    ) -> bool {
        out.clear();
        if self.objects.len() != golden.objects.len() || self.global_count != golden.global_count {
            return false;
        }
        for h in base_objects..self.objects.len() {
            let (a, b) = (&self.objects[h], &golden.objects[h]);
            if a.kind != b.kind || a.cells.len() != b.cells.len() {
                return false;
            }
        }
        debug_assert!(pending.windows(2).all(|w| w[0] < w[1]), "pending must be sorted+dedup");
        let mut write = 0usize;
        let mut i = 0usize;
        while i < pending.len() {
            let (obj, page) = pending[i];
            i += 1;
            let a = &self.objects[obj as usize];
            let b = &golden.objects[obj as usize];
            let start = page as usize * PAGE_CELLS;
            let end = (start + PAGE_CELLS).min(a.cells.len());
            debug_assert!(start < a.cells.len(), "pending page out of object bounds");
            let run = &a.cells[start..end];
            let gold = &b.cells[start..end];
            if !hashes.is_poison(obj, page) {
                cost.pages_hashed += 1;
                if page_hash(run) == hashes.hash(obj, page) {
                    continue; // verified equal → pruned from pending
                }
            }
            cost.words_compared += run.len() as u64;
            let before = out.len();
            let mut capped = false;
            for (j, (va, vb)) in run.iter().zip(gold.iter()).enumerate() {
                if va != vb {
                    if out.len() == cap {
                        capped = true;
                        break;
                    }
                    out.push((obj, (start + j) as u32));
                }
            }
            if out.len() == before && !capped {
                // Bitwise-unequal but value-equal (e.g. -0.0 vs +0.0):
                // equality established, prune. A later run write
                // re-dirties the page; a later golden write re-enters
                // it via the interval lists.
                continue;
            }
            pending[write] = (obj, page);
            write += 1;
            if capped {
                // Keep the unprocessed tail as candidates and bail.
                for k in i..pending.len() {
                    pending[write] = pending[k];
                    write += 1;
                }
                pending.truncate(write);
                out.clear();
                return false;
            }
        }
        pending.truncate(write);
        true
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

#[inline]
fn fnv_word(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// FNV-1a content hash of one page of cells, over each cell's
/// `(variant tag, payload bits)` words — distinct `Value`s never encode
/// to the same word stream.
#[must_use]
pub fn page_hash(cells: &[Value]) -> u64 {
    let mut h = FNV_OFFSET;
    for v in cells {
        h = match *v {
            Value::Int(i) => fnv_word(fnv_word(h, 1), i as u64),
            Value::Float(f) => fnv_word(fnv_word(h, 2), f.to_bits()),
            Value::Ptr { obj, idx } => {
                fnv_word(fnv_word(fnv_word(h, 3), obj as u64), idx as u64)
            }
        };
    }
    h
}

fn page_has_nan(cells: &[Value]) -> bool {
    cells.iter().any(|v| matches!(v, Value::Float(f) if f.is_nan()))
}

/// Per-page content hashes of one golden memory state, plus its poison
/// set — pages holding a cell that is unequal to itself (NaN floats),
/// where a bitwise hash cannot stand in for `Value` equality.
///
/// Built once for the golden run's initial memory and updated
/// incrementally (only pages the golden run actually wrote) at each
/// snapshot capture; cloning for a snapshot is O(objects) refcount
/// bumps.
#[derive(Clone, Debug, Default)]
pub struct PageHashes {
    per_obj: Vec<Arc<Vec<u64>>>,
    poison: Vec<(u32, u32)>,
}

impl PageHashes {
    /// Hashes every page of every object — the prepare-time baseline.
    #[must_use]
    pub fn of_memory(mem: &Memory) -> Self {
        let mut hashes = Self::default();
        hashes.extend_new_objects(mem);
        hashes
    }

    /// Hashes all pages of objects allocated since this table was last
    /// extended (object handles only grow and never change shape).
    pub fn extend_new_objects(&mut self, mem: &Memory) {
        for h in self.per_obj.len()..mem.objects.len() {
            let obj = &mem.objects[h];
            let pages = obj.cells.len().div_ceil(PAGE_CELLS);
            let mut row = Vec::with_capacity(pages);
            for p in 0..pages {
                let start = p * PAGE_CELLS;
                let end = (start + PAGE_CELLS).min(obj.cells.len());
                let slice = &obj.cells[start..end];
                row.push(page_hash(slice));
                if page_has_nan(slice) {
                    self.set_poison((h as u32, p as u32), true);
                }
            }
            self.per_obj.push(Arc::new(row));
        }
    }

    /// Recomputes the hash (and poison membership) of each changed
    /// `(object, page)`. Call [`PageHashes::extend_new_objects`] first
    /// so every changed object has a row.
    pub fn update(&mut self, mem: &Memory, changed: &[(u32, u32)]) {
        for &(h, p) in changed {
            debug_assert!((h as usize) < self.per_obj.len(), "extend_new_objects first");
            let obj = &mem.objects[h as usize];
            let start = p as usize * PAGE_CELLS;
            let end = (start + PAGE_CELLS).min(obj.cells.len());
            let slice = &obj.cells[start..end];
            Arc::make_mut(&mut self.per_obj[h as usize])[p as usize] = page_hash(slice);
            self.set_poison((h, p), page_has_nan(slice));
        }
    }

    /// The pages whose golden cells are not self-equal (NaN): always
    /// probe candidates, never hash-dismissed.
    #[must_use]
    pub fn poison_pages(&self) -> &[(u32, u32)] {
        &self.poison
    }

    fn hash(&self, obj: u32, page: u32) -> u64 {
        self.per_obj[obj as usize][page as usize]
    }

    fn is_poison(&self, obj: u32, page: u32) -> bool {
        !self.poison.is_empty() && self.poison.binary_search(&(obj, page)).is_ok()
    }

    fn set_poison(&mut self, key: (u32, u32), poisoned: bool) {
        match self.poison.binary_search(&key) {
            Ok(i) => {
                if !poisoned {
                    self.poison.remove(i);
                }
            }
            Err(i) => {
                if poisoned {
                    self.poison.insert(i, key);
                }
            }
        }
    }
}

/// Splice probe cost counters: how much work the state compares did.
///
/// Telemetry only — two campaign runs that classify every injection
/// identically are the *same result* regardless of how many pages each
/// probe hashed, so `ProbeCost` compares equal to any other `ProbeCost`
/// and report equality stays bit-identical between the incremental and
/// full-scan compare paths (and across probe schedules).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProbeCost {
    /// Splice probes attempted (classification attempts at a golden
    /// snapshot).
    pub probes: u64,
    /// Pages content-hashed by the incremental compare.
    pub pages_hashed: u64,
    /// Cells compared word-by-word (hash-mismatch fallback, poison
    /// pages, and the full-scan reference path).
    pub words_compared: u64,
}

impl ProbeCost {
    /// Accumulates another shard's counters.
    pub fn merge(&mut self, other: &Self) {
        self.probes += other.probes;
        self.pages_hashed += other.pages_hashed;
        self.words_compared += other.words_compared;
    }
}

impl PartialEq for ProbeCost {
    fn eq(&self, _: &Self) -> bool {
        true // cost is not part of a campaign's result; see type docs
    }
}

impl Eq for ProbeCost {}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::ModuleBuilder;

    fn mem() -> Memory {
        let mut mb = ModuleBuilder::new("m");
        mb.global_init("a", 4, vec![1, 2]);
        mb.global("b", 2);
        Memory::for_module(&mb.finish())
    }

    #[test]
    fn globals_initialized() {
        let m = mem();
        assert_eq!(m.read(0, 0).unwrap(), Value::Int(1));
        assert_eq!(m.read(0, 1).unwrap(), Value::Int(2));
        assert_eq!(m.read(0, 2).unwrap(), Value::ZERO);
        assert_eq!(m.read(1, 0).unwrap(), Value::ZERO);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = mem();
        m.write(1, 1, Value::Float(2.5)).unwrap();
        assert_eq!(m.read(1, 1).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn bounds_checked() {
        let mut m = mem();
        assert!(m.read(0, 4).is_err());
        assert!(m.read(0, -1).is_err());
        assert!(m.write(0, 100, Value::ZERO).is_err());
        assert!(m.read(99, 0).is_err());
    }

    #[test]
    fn alloc_extends_object_table() {
        let mut m = mem();
        let h = m.alloc(ObjKind::Heap(0), 3);
        assert_eq!(h, 2);
        m.write(h, 2, Value::Int(9)).unwrap();
        assert_eq!(m.read(h, 2).unwrap(), Value::Int(9));
        assert_eq!(m.object_count(), 3);
    }

    #[test]
    fn snapshot_covers_globals_only() {
        let mut m = mem();
        m.alloc(ObjKind::Heap(0), 8);
        let snap = m.globals_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0][0], Value::Int(1));
    }

    #[test]
    fn globals_equal_mirrors_snapshot() {
        let mut m = mem();
        let snap = m.globals_snapshot();
        assert!(m.globals_equal(&snap));
        m.write(1, 0, Value::Int(5)).unwrap();
        assert!(!m.globals_equal(&snap));
        m.write(1, 0, Value::ZERO).unwrap();
        m.alloc(ObjKind::Heap(0), 4); // heap objects are not observable
        assert!(m.globals_equal(&snap));
        assert!(!m.globals_equal(&snap[..1]));
    }

    #[test]
    fn diff_cells_enumerates_divergence() {
        let mut a = mem();
        let b = mem();
        let mut out = Vec::new();
        assert!(a.diff_cells(&b, 8, &mut out));
        assert!(out.is_empty());
        a.write(0, 1, Value::Int(99)).unwrap();
        a.write(1, 0, Value::Int(-1)).unwrap();
        assert!(a.diff_cells(&b, 8, &mut out));
        assert_eq!(out, vec![(0, 1), (1, 0)]);
        // Cap exceeded → incomparable, not a truncated diff.
        assert!(!a.diff_cells(&b, 1, &mut out));
        // Object-shape mismatch → incomparable.
        let mut c = mem();
        c.alloc(ObjKind::Heap(0), 2);
        assert!(!a.diff_cells(&c, 8, &mut out));
    }

    /// The capped → incomparable transition at exactly the splice's
    /// `DIFF_CAP`: a diff of `DIFF_CAP` cells is still a complete,
    /// classifiable diff; one more cell makes the pair incomparable.
    #[test]
    fn diff_cells_boundary_at_splice_diff_cap() {
        use crate::interp::DIFF_CAP;
        let mut mb = ModuleBuilder::new("m");
        mb.global("wide", (DIFF_CAP + 8) as u32);
        let module = mb.finish();
        let mut a = Memory::for_module(&module);
        let b = Memory::for_module(&module);
        let mut out = Vec::new();

        // Exactly DIFF_CAP diverged words: complete diff, all enumerated.
        for i in 0..DIFF_CAP {
            a.write(0, i as i64, Value::Int(1 + i as i64)).unwrap();
        }
        assert!(a.diff_cells(&b, DIFF_CAP, &mut out), "diff at cap must stay comparable");
        assert_eq!(out.len(), DIFF_CAP);
        assert_eq!(out.first(), Some(&(0, 0)));
        assert_eq!(out.last(), Some(&(0, (DIFF_CAP - 1) as u32)));

        // DIFF_CAP + 1 diverged words: incomparable, not truncated.
        a.write(0, DIFF_CAP as i64, Value::Int(-7)).unwrap();
        assert!(!a.diff_cells(&b, DIFF_CAP, &mut out), "diff past cap must be incomparable");
    }

    /// Shape mismatches are incomparable regardless of cell contents:
    /// differing object counts (an extra allocation), kinds and sizes
    /// all fail before any cell is compared.
    #[test]
    fn diff_cells_shape_mismatches_are_incomparable() {
        let a = mem();
        let mut out = vec![(9, 9)];
        // Extra object on one side.
        let mut extra = mem();
        extra.alloc(ObjKind::Heap(0), 2);
        assert!(!a.diff_cells(&extra, 8, &mut out));
        assert!(out.is_empty(), "failed compare must leave no stale diff");
        // Same object count, different kind.
        let mut heap_a = mem();
        heap_a.alloc(ObjKind::Heap(0), 2);
        let mut slot_b = mem();
        slot_b.alloc(ObjKind::Slot { frame: 0, slot: 0 }, 2);
        assert!(!heap_a.diff_cells(&slot_b, 8, &mut out));
        // Same kind, different size.
        let mut big = mem();
        big.alloc(ObjKind::Heap(0), 3);
        assert!(!heap_a.diff_cells(&big, 8, &mut out));
        // And the symmetric view agrees.
        assert!(!extra.diff_cells(&a, 8, &mut out));
    }

    #[test]
    fn globals_are_the_leading_objects() {
        let mut m = mem();
        assert!(m.is_global(0) && m.is_global(1));
        let h = m.alloc(ObjKind::Heap(0), 1);
        assert!(!m.is_global(h));
    }

    #[test]
    fn cell_identity() {
        let m = mem();
        let c = m.cell_of(1, 0);
        assert_eq!(c.obj, ObjKind::Global(1));
    }

    // ---- dirty tracking + incremental compare ----

    #[test]
    fn writes_and_allocs_accumulate_dirty_pages() {
        let mut m = mem();
        let mut pages = Vec::new();
        m.drain_dirty_pages(&mut pages);
        assert!(pages.is_empty(), "fresh memory is its own baseline");
        m.write(0, 1, Value::Int(7)).unwrap();
        m.write(0, 2, Value::Int(8)).unwrap(); // same page: one entry
        m.write(1, 0, Value::Int(9)).unwrap();
        let h = m.alloc(ObjKind::Heap(0), PAGE_CELLS + 1); // 2 pages, fully dirty
        m.drain_dirty_pages(&mut pages);
        pages.sort_unstable();
        assert_eq!(pages, vec![(0, 0), (1, 0), (h as u32, 0), (h as u32, 1)]);
        // Drain cleared the set.
        pages.clear();
        m.drain_dirty_pages(&mut pages);
        assert!(pages.is_empty());
        // reset_dirty discards without reporting.
        m.write(0, 0, Value::Int(1)).unwrap();
        m.reset_dirty();
        m.drain_dirty_pages(&mut pages);
        assert!(pages.is_empty());
    }

    #[test]
    fn dirty_tracking_is_not_architectural_state() {
        let mut a = mem();
        let mut b = mem();
        a.write(0, 1, Value::Int(2)).unwrap(); // writes back the initial value
        assert_eq!(a, b, "dirty bits must not affect equality");
        b.reset_dirty();
        assert_eq!(a, b);
    }

    /// Incremental diff agrees with the full scan on a real divergence
    /// and prunes clean candidate pages without enumerating them.
    #[test]
    fn diff_cells_dirty_matches_full_scan() {
        let golden = mem();
        let hashes = PageHashes::of_memory(&golden);
        let mut run = golden.clone();
        run.reset_dirty();
        run.write(0, 1, Value::Int(99)).unwrap();
        run.write(1, 0, Value::Int(-1)).unwrap();
        let mut pending = Vec::new();
        run.drain_dirty_pages(&mut pending);
        pending.sort_unstable();
        pending.dedup();
        let (mut inc, mut full) = (Vec::new(), Vec::new());
        let mut cost = ProbeCost::default();
        assert!(run.diff_cells_dirty(
            &golden,
            &hashes,
            &mut pending,
            golden.object_count(),
            8,
            &mut inc,
            &mut cost
        ));
        assert!(run.diff_cells(&golden, 8, &mut full));
        assert_eq!(inc, full);
        assert_eq!(inc, vec![(0, 1), (1, 0)]);
        assert_eq!(pending, vec![(0, 0), (1, 0)], "diverged pages stay pending");
        assert!(cost.pages_hashed == 2 && cost.words_compared > 0);
    }

    /// Satellite: a page dirtied and then restored to golden bytes
    /// hashes back to the golden page hash, so the probe prunes it as
    /// clean without a word-level compare.
    #[test]
    fn dirtied_then_restored_page_is_pruned_as_clean() {
        let golden = mem();
        let hashes = PageHashes::of_memory(&golden);
        let mut run = golden.clone();
        run.reset_dirty();
        run.write(0, 1, Value::Int(42)).unwrap();
        run.write(0, 1, Value::Int(2)).unwrap(); // restore the golden value
        let mut pending = Vec::new();
        run.drain_dirty_pages(&mut pending);
        pending.sort_unstable();
        assert_eq!(pending, vec![(0, 0)], "the write dirtied the page");
        let mut out = Vec::new();
        let mut cost = ProbeCost::default();
        assert!(run.diff_cells_dirty(
            &golden,
            &hashes,
            &mut pending,
            golden.object_count(),
            8,
            &mut out,
            &mut cost
        ));
        assert!(out.is_empty(), "restored page is clean");
        assert!(pending.is_empty(), "hash match prunes the candidate");
        assert_eq!(cost.pages_hashed, 1);
        assert_eq!(cost.words_compared, 0, "clean page never word-compared");
    }

    /// NaN-poisoned golden pages bypass the hash: the incremental diff
    /// must report exactly what the full scan reports (NaN ≠ NaN under
    /// `Value` equality), even when the run's bytes are identical.
    #[test]
    fn poison_pages_word_compare_and_match_full_scan() {
        let mut golden = mem();
        golden.write(0, 3, Value::Float(f64::NAN)).unwrap();
        golden.reset_dirty();
        let hashes = PageHashes::of_memory(&golden);
        assert_eq!(hashes.poison_pages(), &[(0, 0)]);
        let mut run = golden.clone();
        run.reset_dirty();
        let mut pending = hashes.poison_pages().to_vec();
        let (mut inc, mut full) = (Vec::new(), Vec::new());
        let mut cost = ProbeCost::default();
        assert!(run.diff_cells_dirty(
            &golden,
            &hashes,
            &mut pending,
            golden.object_count(),
            8,
            &mut inc,
            &mut cost
        ));
        assert!(run.diff_cells(&golden, 8, &mut full));
        assert_eq!(inc, full);
        assert_eq!(inc, vec![(0, 3)], "NaN is never equal to itself");
        assert_eq!(pending, vec![(0, 0)], "poison pages stay pending");
        assert_eq!(cost.pages_hashed, 0, "poison bypasses the hash");
    }

    /// Negative zero: bitwise-unequal to +0.0 (hash mismatch) but
    /// value-equal, so the word-level fallback finds no diff and the
    /// page is pruned — exactly the full scan's verdict.
    #[test]
    fn negative_zero_page_falls_back_then_prunes() {
        let mut golden = mem();
        golden.write(1, 1, Value::Float(0.0)).unwrap();
        golden.reset_dirty();
        let hashes = PageHashes::of_memory(&golden);
        assert!(hashes.poison_pages().is_empty(), "±0.0 is not poison");
        let mut run = golden.clone();
        run.reset_dirty();
        run.write(1, 1, Value::Float(-0.0)).unwrap();
        let mut pending = Vec::new();
        run.drain_dirty_pages(&mut pending);
        pending.sort_unstable();
        pending.dedup();
        let (mut inc, mut full) = (Vec::new(), Vec::new());
        let mut cost = ProbeCost::default();
        assert!(run.diff_cells_dirty(
            &golden,
            &hashes,
            &mut pending,
            golden.object_count(),
            8,
            &mut inc,
            &mut cost
        ));
        assert!(run.diff_cells(&golden, 8, &mut full));
        assert_eq!(inc, full);
        assert!(inc.is_empty(), "-0.0 == +0.0 under Value equality");
        assert!(pending.is_empty(), "value-equal page is pruned");
        assert!(cost.words_compared > 0, "hash mismatch forced the fallback");
    }

    /// Cap overflow in the incremental path: incomparable verdict, and
    /// `pending` keeps both the offending page and the unprocessed
    /// tail so the next probe stays sound.
    #[test]
    fn diff_cells_dirty_cap_keeps_candidates() {
        let golden = mem();
        let hashes = PageHashes::of_memory(&golden);
        let mut run = golden.clone();
        run.reset_dirty();
        run.write(0, 0, Value::Int(50)).unwrap();
        run.write(0, 1, Value::Int(51)).unwrap();
        run.write(1, 0, Value::Int(52)).unwrap();
        let mut pending = Vec::new();
        run.drain_dirty_pages(&mut pending);
        pending.sort_unstable();
        pending.dedup();
        let mut out = Vec::new();
        let mut cost = ProbeCost::default();
        assert!(!run.diff_cells_dirty(
            &golden,
            &hashes,
            &mut pending,
            golden.object_count(),
            1,
            &mut out,
            &mut cost
        ));
        assert_eq!(pending, vec![(0, 0), (1, 0)], "capped + unprocessed pages retained");
        // Full scan agrees the pair is incomparable at this cap.
        assert!(!run.diff_cells(&golden, 1, &mut out));
    }

    /// New objects allocated after the resume base are shape-checked
    /// and their (fully dirty) pages compared like any other candidate.
    #[test]
    fn diff_cells_dirty_covers_new_objects() {
        let mut golden = mem();
        let g = golden.alloc(ObjKind::Heap(0), 3);
        golden.write(g, 1, Value::Int(5)).unwrap();
        golden.reset_dirty();
        let hashes = PageHashes::of_memory(&golden);
        let base = 2; // resume base had only the two globals
        let mut run = mem();
        let r = run.alloc(ObjKind::Heap(0), 3);
        run.write(r, 1, Value::Int(6)).unwrap();
        let mut pending = Vec::new();
        run.drain_dirty_pages(&mut pending);
        pending.sort_unstable();
        pending.dedup();
        let (mut inc, mut full) = (Vec::new(), Vec::new());
        let mut cost = ProbeCost::default();
        assert!(run.diff_cells_dirty(&golden, &hashes, &mut pending, base, 8, &mut inc, &mut cost));
        assert!(run.diff_cells(&golden, 8, &mut full));
        assert_eq!(inc, full);
        assert_eq!(inc, vec![(g as u32, 1)]);
        // Mismatched new-object shape → incomparable, as in the full scan.
        let mut short = mem();
        short.alloc(ObjKind::Heap(0), 2);
        let mut pending2 = vec![(2u32, 0u32)];
        assert!(!short.diff_cells_dirty(
            &golden,
            &hashes,
            &mut pending2,
            base,
            8,
            &mut inc,
            &mut cost
        ));
    }

    /// Page-hash maintenance: `update` recomputes changed pages and
    /// poison membership tracks NaN cells in both directions.
    #[test]
    fn page_hashes_update_tracks_content_and_poison() {
        let mut m = mem();
        let mut hashes = PageHashes::of_memory(&m);
        m.write(0, 2, Value::Float(f64::NAN)).unwrap();
        let mut changed = Vec::new();
        m.drain_dirty_pages(&mut changed);
        hashes.extend_new_objects(&m);
        hashes.update(&m, &changed);
        assert_eq!(hashes.poison_pages(), &[(0, 0)]);
        m.write(0, 2, Value::Int(0)).unwrap();
        changed.clear();
        m.drain_dirty_pages(&mut changed);
        hashes.update(&m, &changed);
        assert!(hashes.poison_pages().is_empty(), "NaN overwritten → poison cleared");
        // A new allocation gets rows from extend_new_objects.
        let h = m.alloc(ObjKind::Heap(0), PAGE_CELLS * 2);
        changed.clear();
        m.drain_dirty_pages(&mut changed);
        hashes.extend_new_objects(&m);
        hashes.update(&m, &changed);
        assert_eq!(hashes.hash(h as u32, 0), hashes.hash(h as u32, 1), "identical zero pages");
    }

    /// ProbeCost is telemetry: never part of result equality.
    #[test]
    fn probe_cost_compares_equal_always() {
        let a = ProbeCost { probes: 1, pages_hashed: 2, words_compared: 3 };
        let mut b = ProbeCost::default();
        assert_eq!(a, b);
        b.merge(&a);
        assert_eq!(b.probes, 1);
        assert_eq!(b.pages_hashed, 2);
        assert_eq!(b.words_compared, 3);
    }
}
