//! Host-provided external functions.
//!
//! Workloads call externals for math (pure), environment probes
//! (read-only) and I/O-ish effects (opaque). The effect class an
//! instruction *declares* (`ExtEffect`) is what the static analysis
//! trusts; the registry here provides the matching runtime behavior.
//! Everything is deterministic: the PRNG is a seeded LCG and "time" is a
//! call counter, so golden runs are reproducible.

use crate::value::{EvalError, Value};

/// The external-function environment of a machine.
#[derive(Clone, PartialEq, Debug)]
pub struct Externs {
    /// Values printed by `print_i64` / `print_f64` (the observable
    /// output channel compared against golden runs).
    pub output: Vec<i64>,
    prng: u64,
    clock: u64,
}

impl Externs {
    /// Creates the environment with the given PRNG seed.
    pub fn new(seed: u64) -> Self {
        Self { output: Vec::new(), prng: seed | 1, clock: 0 }
    }

    fn next_prng(&mut self) -> i64 {
        // SplitMix64 step: deterministic, decent quality.
        self.prng = self.prng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.prng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as i64
    }

    fn float_arg(args: &[Value], i: usize, name: &str) -> Result<f64, EvalError> {
        args.get(i).and_then(Value::as_float).ok_or_else(|| EvalError {
            message: format!("extern `{name}` expects float argument {i}"),
        })
    }

    fn int_arg(args: &[Value], i: usize, name: &str) -> Result<i64, EvalError> {
        args.get(i).and_then(Value::as_int).ok_or_else(|| EvalError {
            message: format!("extern `{name}` expects int argument {i}"),
        })
    }

    /// Environment-state equality modulo the output channel: PRNG and
    /// clock agree, so the two environments answer every future extern
    /// call identically even if their output histories differ. The
    /// divergence splice compares output separately (it is append-only
    /// and never rolled back, so a diverged prefix is permanent).
    pub fn state_equal_ignoring_output(&self, other: &Externs) -> bool {
        self.prng == other.prng && self.clock == other.clock
    }

    /// Invokes external `name`.
    ///
    /// # Errors
    ///
    /// Unknown names and argument-type mismatches yield an [`EvalError`]
    /// (the machine reports it as a trap).
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        match name {
            // Pure math.
            "sin" => Ok(Value::Float(Self::float_arg(args, 0, name)?.sin())),
            "cos" => Ok(Value::Float(Self::float_arg(args, 0, name)?.cos())),
            "exp" => Ok(Value::Float(Self::float_arg(args, 0, name)?.exp())),
            "log" => {
                let x = Self::float_arg(args, 0, name)?;
                Ok(Value::Float(if x <= 0.0 { 0.0 } else { x.ln() }))
            }
            "floor" => Ok(Value::Float(Self::float_arg(args, 0, name)?.floor())),
            "pow" => {
                let x = Self::float_arg(args, 0, name)?;
                let y = Self::float_arg(args, 1, name)?;
                Ok(Value::Float(x.powf(y)))
            }
            // Read-only environment probes.
            "clock" => {
                self.clock += 1;
                Ok(Value::Int(self.clock as i64))
            }
            // Opaque effects.
            "prng" => Ok(Value::Int(self.next_prng())),
            "prng_range" => {
                let n = Self::int_arg(args, 0, name)?.max(1);
                Ok(Value::Int(self.next_prng().rem_euclid(n)))
            }
            "print_i64" => {
                self.output.push(Self::int_arg(args, 0, name)?);
                Ok(Value::Int(0))
            }
            "print_f64" => {
                let x = Self::float_arg(args, 0, name)?;
                self.output.push(x.to_bits() as i64);
                Ok(Value::Int(0))
            }
            other => Err(EvalError { message: format!("unknown extern `{other}`") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn math_functions() {
        let mut e = Externs::new(1);
        let r = e.call("sin", &[Value::Float(0.0)]).unwrap();
        assert_eq!(r, Value::Float(0.0));
        assert_eq!(e.call("log", &[Value::Float(-1.0)]).unwrap(), Value::Float(0.0));
        assert_eq!(
            e.call("pow", &[Value::Float(2.0), Value::Float(10.0)]).unwrap(),
            Value::Float(1024.0)
        );
    }

    #[test]
    fn prng_is_deterministic_per_seed() {
        let mut a = Externs::new(7);
        let mut b = Externs::new(7);
        for _ in 0..10 {
            assert_eq!(a.call("prng", &[]).unwrap(), b.call("prng", &[]).unwrap());
        }
        let mut c = Externs::new(8);
        assert_ne!(a.call("prng", &[]).unwrap(), c.call("prng", &[]).unwrap());
    }

    #[test]
    fn prng_range_bounded() {
        let mut e = Externs::new(3);
        for _ in 0..100 {
            let v = e.call("prng_range", &[Value::Int(10)]).unwrap();
            let x = v.as_int().unwrap();
            assert!((0..10).contains(&x));
        }
    }

    #[test]
    fn print_collects_output() {
        let mut e = Externs::new(1);
        e.call("print_i64", &[Value::Int(42)]).unwrap();
        e.call("print_i64", &[Value::Int(-1)]).unwrap();
        assert_eq!(e.output, vec![42, -1]);
    }

    #[test]
    fn unknown_extern_errors() {
        let mut e = Externs::new(1);
        assert!(e.call("nope", &[]).is_err());
    }

    #[test]
    fn clock_advances() {
        let mut e = Externs::new(1);
        let a = e.call("clock", &[]).unwrap().as_int().unwrap();
        let b = e.call("clock", &[]).unwrap().as_int().unwrap();
        assert!(b > a);
    }
}
