//! Set elements for the RS/GA/EA dataflow.
//!
//! * **Reachable stores** and **exposed loads** are keyed by their
//!   [`InstRef`] (every static instruction is a unique site) with the
//!   symbolic address carried alongside; set membership therefore never
//!   needs alias queries, only the final `EA ∩ RS` emptiness check does.
//! * **Guarded addresses** are canonical *static* cells ([`GuardAddr`]):
//!   only a store whose target is a statically known object + constant
//!   offset can *guarantee* an overwrite, so only those participate in the
//!   must-intersection of Eq. 2.

use encore_analysis::SummaryAddr;
use encore_ir::{AddrExpr, InstRef, MemBase, Offset, Reg};
use std::collections::BTreeSet;

/// Sentinel index register used in *synthesized* address expressions for
/// callee memory summaries with dynamic offsets ("some cell of global
/// g"). Such expressions exist only inside analysis sets — they are never
/// materialized into instructions — and the sentinel guarantees only
/// `May` alias answers against real addresses of the same object.
pub const SUMMARY_INDEX_REG: Reg = Reg::new(u32::MAX);

/// Builds the symbolic address representing a callee-summary entry.
pub fn summary_addr_expr(a: &SummaryAddr) -> AddrExpr {
    let (base, off) = a.parts();
    match off {
        Some(c) => AddrExpr::new(base, Offset::Const(c)),
        None => AddrExpr::indexed(base, SUMMARY_INDEX_REG, 1, 0),
    }
}

/// `true` when `addr` is a synthesized "some cell" summary address that
/// cannot be checkpointed precisely.
pub fn is_imprecise_summary(addr: &AddrExpr) -> bool {
    addr.offset.index_reg() == Some(SUMMARY_INDEX_REG)
}

/// A statically-named memory cell that a store is guaranteed to overwrite.
///
/// Heap cells never appear here: the allocation-site abstraction cannot
/// prove two heap references coincide, so heap stores guard nothing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GuardAddr {
    /// Cell `offset` of global `id`.
    Global {
        /// Raw global id.
        id: u32,
        /// Constant cell offset.
        offset: i64,
    },
    /// Cell `offset` of stack slot `id`.
    Slot {
        /// Raw slot id.
        id: u32,
        /// Constant cell offset.
        offset: i64,
    },
}

impl GuardAddr {
    /// The canonical guard cell denoted by `addr`, if it is a static
    /// global/slot cell.
    pub fn of(addr: &AddrExpr) -> Option<GuardAddr> {
        let offset = addr.offset.as_const()?;
        match addr.base {
            MemBase::Global(g) => Some(GuardAddr::Global { id: g.raw(), offset }),
            MemBase::Slot(s) => Some(GuardAddr::Slot { id: s.raw(), offset }),
            MemBase::Heap(_) | MemBase::Reg(_) => None,
        }
    }
}

/// The address of an exposed load: either a symbolic expression or the
/// unanalyzable top element (a read-only call that may reference any
/// memory).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AbsAddr {
    /// A concrete symbolic address.
    Expr(AddrExpr),
    /// May reference anything.
    Top,
}

/// A store site inside the analyzed function.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StoreSite {
    /// Location of the store instruction.
    pub at: InstRef,
    /// Symbolic target address.
    pub addr: AddrExpr,
}

/// An exposed-load site inside the analyzed function.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LoadSite {
    /// Location of the load (or read-only call) instruction.
    pub at: InstRef,
    /// Symbolic source address, or `Top` for read-only calls.
    pub addr: AbsAddr,
}

/// An ordered set of instruction sites (used for both RS and EA keys).
pub type SiteSet = BTreeSet<InstRef>;

/// An ordered set of guaranteed-overwritten cells (the GA sets of Eq. 2).
pub type GuardSet = BTreeSet<GuardAddr>;

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{GlobalId, HeapId, Reg, SlotId};

    #[test]
    fn guard_addr_of_static_cells() {
        let g = AddrExpr::global(GlobalId::new(2), 5);
        assert_eq!(GuardAddr::of(&g), Some(GuardAddr::Global { id: 2, offset: 5 }));
        let s = AddrExpr::slot(SlotId::new(1), 0);
        assert_eq!(GuardAddr::of(&s), Some(GuardAddr::Slot { id: 1, offset: 0 }));
    }

    #[test]
    fn guard_addr_rejects_dynamic_and_heap() {
        let h = AddrExpr::heap(HeapId::new(0), 3);
        assert_eq!(GuardAddr::of(&h), None);
        let p = AddrExpr::reg(Reg::new(0), 0);
        assert_eq!(GuardAddr::of(&p), None);
        let idx = AddrExpr::indexed(MemBase::Global(GlobalId::new(0)), Reg::new(1), 1, 0);
        assert_eq!(GuardAddr::of(&idx), None);
    }

    #[test]
    fn guard_addr_distinguishes_kinds() {
        let a = GuardAddr::Global { id: 0, offset: 0 };
        let b = GuardAddr::Slot { id: 0, offset: 0 };
        assert_ne!(a, b);
        let mut set = GuardSet::new();
        set.insert(a);
        set.insert(b);
        assert_eq!(set.len(), 2);
    }
}
