//! # encore-core
//!
//! The primary contribution of *Encore: Low-Cost, Fine-Grained Transient
//! Fault Recovery* (Feng et al., MICRO 2011), reimplemented over
//! [`encore_ir`] and [`encore_analysis`]:
//!
//! * the [idempotence analysis](idempotence) — reachable-store /
//!   guarded-address / exposed-address dataflow (Eqs. 1–4) with
//!   hierarchical loop handling and `Pmin` profile pruning;
//! * [region formation and selection](region) — interval-based SEME
//!   candidate regions, γ cost/coverage filtering and η-controlled
//!   merging (Eq. 5);
//! * the [instrumentation pass](instrument) — selective checkpointing,
//!   live-in register saves, recovery blocks;
//! * the [recoverability coverage model](coverage) — detection-latency
//!   scaling α (Eqs. 6–7) and full-system composition;
//! * [trace idempotence](trace) — the dynamic-window analysis behind
//!   Figure 1;
//! * the [pipeline] — one-call orchestration mirroring the
//!   paper's compile flow (Figure 3).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod coverage;
pub mod idempotence;
pub mod instrument;
pub mod memref;
pub mod pipeline;
pub mod region;
pub mod trace;
pub mod viz;

pub use config::EncoreConfig;
pub use coverage::{alpha, alpha_at_latency, CoverageModel, FullSystemCoverage};
pub use idempotence::{
    IdempotenceAnalyzer, LoopSummary, RegionAnalysis, RegionSpec, Verdict, Violation,
};
pub use instrument::{
    instrument_module, instrument_module_with, InstrumentedModule, RegionInfo, RegionMap,
    StorageReport,
};
pub use memref::{AbsAddr, GuardAddr, GuardSet, LoadSite, SiteSet, StoreSite};
pub use pipeline::{Encore, EncoreOutcome, RegionReport};
pub use region::{CandidateRegion, RegionCosting, RegionPartition};
pub use trace::{trace_window_idempotent, window_violation_count, TraceIdempotence};
pub use viz::dot_regions;
