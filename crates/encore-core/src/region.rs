//! Region formation, costing and merging (paper §3.3–3.4.2).
//!
//! Candidate regions start as the level-0 intervals of the function's
//! CFG. Recursive interval partitioning provides coarser candidates; two
//! (or more) sibling regions are merged into their derived interval when
//! `ΔCoverage/ΔCost > η` (Eq. 5). The resulting partition is costed so
//! that the selection step (γ / overhead budget, in
//! [`crate::pipeline`]) can decide which regions to instrument.
//!
//! Costing follows the paper's compile-time surrogates:
//! * `Coverage(r)` — the length of the hot path through `r`;
//! * `Cost(r)` — checkpointing instructions on the hot path divided by
//!   hot-path length.

use crate::config::EncoreConfig;
use crate::idempotence::{IdempotenceAnalyzer, RegionAnalysis, RegionSpec};
use encore_analysis::{FuncProfile, IntervalHierarchy, Liveness, Profile};
use encore_ir::{BlockId, FuncId, Function, Module, Reg};
use std::collections::BTreeSet;

/// Cost/coverage numbers for one candidate region.
#[derive(Clone, PartialEq, Debug)]
pub struct RegionCosting {
    /// The hot path (block sequence from the header, following the most
    /// frequent profiled edges).
    pub hot_path: Vec<BlockId>,
    /// Static instructions along the hot path (terminators included) —
    /// the paper's compile-time `Coverage(r)` surrogate.
    pub hot_path_len: u64,
    /// Instrumentation instructions that would execute on the hot path:
    /// 2 per memory checkpoint + 1 per register checkpoint + 1 for the
    /// recovery-pointer update.
    pub ckpt_insts_hot: u64,
    /// Live-in registers the region overwrites (checkpointed at entry).
    pub reg_ckpts: usize,
    /// The clobbered live-in registers themselves, ascending — computed
    /// once here so instrumentation never re-runs liveness.
    pub reg_ckpt_set: Vec<Reg>,
    /// Memory checkpoints required (|CP| restricted to live blocks).
    pub mem_ckpts: usize,
    /// Number of profiled activations of the region (header executions).
    pub activations: u64,
    /// Dynamic instructions spent inside the region during profiling.
    pub dyn_insts: u64,
    /// Share of whole-program dynamic instructions spent in the region.
    pub exec_fraction: f64,
    /// Estimated runtime overhead added by instrumenting this region,
    /// as a fraction of whole-program dynamic instructions.
    pub est_overhead: f64,
    /// Average dynamic instructions per activation (the `n` of Eq. 7).
    pub avg_activation_len: f64,
}

/// A candidate recovery region with its analysis and costing.
#[derive(Clone, PartialEq, Debug)]
pub struct CandidateRegion {
    /// The region's blocks and header.
    pub spec: RegionSpec,
    /// Idempotence analysis outcome (under the configured `Pmin`).
    pub analysis: RegionAnalysis,
    /// Cost/coverage numbers.
    pub costing: RegionCosting,
}

impl CandidateRegion {
    /// The paper's `Coverage(r)` surrogate (hot-path length).
    pub fn coverage(&self) -> f64 {
        self.costing.hot_path_len as f64
    }

    /// The paper's `Cost(r)`: checkpoint instructions per hot-path
    /// instruction.
    pub fn cost(&self) -> f64 {
        if self.costing.hot_path_len == 0 {
            return 0.0;
        }
        self.costing.ckpt_insts_hot as f64 / self.costing.hot_path_len as f64
    }

    /// `Coverage/Cost`, the γ selection metric; `+∞`-like large value
    /// when the cost is (near) zero.
    pub fn gamma_ratio(&self) -> f64 {
        let c = self.cost();
        if c < 1e-12 {
            f64::INFINITY
        } else {
            self.coverage() / c
        }
    }
}

/// The final per-function region partition after merging.
#[derive(Clone, PartialEq, Debug)]
pub struct RegionPartition {
    /// Function the partition belongs to.
    pub func: FuncId,
    /// Final candidate regions (disjoint; they cover all reachable
    /// blocks of the function).
    pub regions: Vec<CandidateRegion>,
    /// Number of η-driven merges performed.
    pub merges: usize,
}

/// Builds a pruning predicate for `spec` from the profile and `Pmin`.
fn prune_fn<'a>(
    fp: &'a FuncProfile,
    header: BlockId,
    config: &'a EncoreConfig,
) -> impl Fn(BlockId) -> bool + 'a {
    move |b: BlockId| config.should_prune(fp.prob_relative(b, header))
}

/// Per-function edge-frequency table: `freq[b][k]` is the profiled count
/// of block `b`'s k-th successor edge, in successor order. Built once per
/// partition so the greedy hot-path walk does not repeat profile map
/// lookups inside its comparator.
struct EdgeFreq {
    freq: Vec<Vec<u64>>,
}

impl EdgeFreq {
    fn new(func: &Function, fp: &FuncProfile) -> Self {
        let freq = func
            .block_ids()
            .map(|b| {
                func.block(b)
                    .successors()
                    .into_iter()
                    .map(|s| fp.edge(b, s))
                    .collect()
            })
            .collect();
        Self { freq }
    }
}

/// Computes the hot path of a region: greedy walk from the header along
/// the most frequent in-region edges, stopping at a revisit or exit.
fn hot_path(func: &Function, ef: &EdgeFreq, spec: &RegionSpec) -> Vec<BlockId> {
    let mut path = vec![spec.header];
    let mut seen: BTreeSet<BlockId> = [spec.header].into_iter().collect();
    let mut cur = spec.header;
    loop {
        let next = func
            .block(cur)
            .successors()
            .into_iter()
            .enumerate()
            .filter(|(_, s)| spec.blocks.contains(s) && !seen.contains(s))
            .max_by_key(|(k, s)| (ef.freq[cur.index()][*k], std::cmp::Reverse(s.index())))
            .map(|(_, s)| s);
        match next {
            Some(n) => {
                seen.insert(n);
                path.push(n);
                cur = n;
            }
            None => break,
        }
    }
    path
}

/// Costs a region given its analysis.
fn cost_region(
    func: &Function,
    fp: &FuncProfile,
    ef: &EdgeFreq,
    liveness: &Liveness,
    spec: &RegionSpec,
    analysis: &RegionAnalysis,
    total_dyn: u64,
) -> RegionCosting {
    let path = hot_path(func, ef, spec);
    let path_set: BTreeSet<BlockId> = path.iter().copied().collect();
    let hot_path_len: u64 = path
        .iter()
        .map(|b| {
            let blk = func.block(*b);
            (blk.insts.len() + usize::from(blk.term.is_some())) as u64
        })
        .sum();

    let reg_ckpt_set: Vec<Reg> = liveness
        .clobbered_live_ins(spec.header, analysis.live_blocks.iter().copied())
        .into_iter()
        .collect();
    let reg_ckpts = reg_ckpt_set.len();
    let mem_ckpts = analysis.cp.len();
    let mem_ckpts_hot = analysis
        .cp
        .iter()
        .filter(|s| path_set.contains(&s.at.block))
        .count() as u64;
    // Hot-path instrumentation: 2 per memory checkpoint on the path,
    // 1 per register checkpoint, 1 recovery-pointer store at the header.
    let ckpt_insts_hot = 2 * mem_ckpts_hot + reg_ckpts as u64 + 1;

    let activations = fp.count(spec.header);
    let dyn_insts: u64 = spec
        .blocks
        .iter()
        .map(|b| {
            let blk = func.block(*b);
            fp.count(*b) * (blk.insts.len() + usize::from(blk.term.is_some())) as u64
        })
        .sum();
    let exec_fraction = if total_dyn == 0 {
        0.0
    } else {
        dyn_insts as f64 / total_dyn as f64
    };
    let dyn_ckpt: u64 = analysis
        .cp
        .iter()
        .map(|s| 2 * fp.count(s.at.block))
        .sum::<u64>()
        + activations * (reg_ckpts as u64 + 1);
    let est_overhead = if total_dyn == 0 {
        0.0
    } else {
        dyn_ckpt as f64 / total_dyn as f64
    };
    let avg_activation_len = if activations == 0 {
        0.0
    } else {
        dyn_insts as f64 / activations as f64
    };

    RegionCosting {
        hot_path: path,
        hot_path_len,
        ckpt_insts_hot,
        reg_ckpts,
        reg_ckpt_set,
        mem_ckpts,
        activations,
        dyn_insts,
        exec_fraction,
        est_overhead,
        avg_activation_len,
    }
}

impl RegionPartition {
    /// Forms the region partition of function `fid`: level-0 intervals,
    /// then η-driven bottom-up merging along the interval hierarchy.
    pub fn form(
        module: &Module,
        fid: FuncId,
        analyzer: &IdempotenceAnalyzer<'_>,
        profile: &Profile,
        config: &EncoreConfig,
    ) -> Self {
        let func = module.func(fid);
        let fp = profile.func(fid);
        let liveness = Liveness::compute(func);
        let edge_freq = EdgeFreq::new(func, fp);
        let hierarchy = IntervalHierarchy::compute(func);
        let total_dyn = profile.total_dyn_insts;

        let make_candidate = |header: BlockId, blocks: &BTreeSet<BlockId>| -> CandidateRegion {
            let spec = RegionSpec { func: fid, header, blocks: blocks.clone() };
            let prune = prune_fn(fp, header, config);
            let analysis = analyzer.analyze_region(&spec, &prune);
            let costing =
                cost_region(func, fp, &edge_freq, &liveness, &spec, &analysis, total_dyn);
            CandidateRegion { spec, analysis, costing }
        };

        // children_of[k][p] = level-k interval indices inside level-(k+1)
        // interval p.
        let depth = hierarchy.levels.len();
        let mut children_of: Vec<Vec<Vec<usize>>> = Vec::new();
        for (k, parent_map) in hierarchy.parent.iter().enumerate() {
            let mut c = vec![Vec::new(); hierarchy.levels[k + 1].len()];
            for (i, &p) in parent_map.iter().enumerate() {
                c[p].push(i);
            }
            children_of.push(c);
        }

        let mut merges = 0usize;

        /// Shared read-only inputs of the recursive merge walk.
        struct WalkCtx<'w> {
            hierarchy: &'w IntervalHierarchy,
            children_of: &'w [Vec<Vec<usize>>],
            make: &'w dyn Fn(BlockId, &BTreeSet<BlockId>) -> CandidateRegion,
            fp: &'w FuncProfile,
            config: &'w EncoreConfig,
        }

        // Recursive bottom-up walk: the partition of interval (k, i) is
        // either the single merged region (when Eq. 5 approves) or the
        // concatenation of its children's partitions.
        fn walk(ctx: &WalkCtx<'_>, k: usize, i: usize, merges: &mut usize) -> Vec<CandidateRegion> {
            let WalkCtx { hierarchy, children_of, make, fp, config } = *ctx;
            if k == 0 {
                let iv = &hierarchy.levels[0][i];
                return vec![make(iv.header, &iv.blocks)];
            }
            let kids = &children_of[k - 1][i];
            let mut parts: Vec<Vec<CandidateRegion>> = kids
                .iter()
                .map(|&j| walk(ctx, k - 1, j, merges))
                .collect();
            // Trivial promotion: one child that itself stayed whole.
            if parts.len() == 1 {
                return parts.pop().expect("one part");
            }
            // Only consider merging when every child resolved to a single
            // region (the paper merges adjacent *regions*, not fragments).
            if parts.iter().all(|p| p.len() == 1) {
                let iv = &hierarchy.levels[k][i];
                let merged = make(iv.header, &iv.blocks);
                let kid_regions: Vec<&CandidateRegion> =
                    parts.iter().map(|p| &p[0]).collect();
                // A merge must not absorb protectable children into an
                // unprotectable whole, must respect the fixed-slot
                // constraint — a checkpointed store that runs several
                // times per activation of the merged region (i.e. ends up
                // inside a loop relative to the new header) cannot be
                // undone from a single reserved stack slot — and must
                // stay under the optional size cap.
                let fixed_slot_ok = merged.analysis.cp.iter().all(|s| {
                    fp.count(s.at.block) <= fp.count(merged.spec.header).max(1)
                });
                let mergeable = (merged.analysis.verdict.is_protectable()
                    || kid_regions.iter().all(|r| !r.analysis.verdict.is_protectable()))
                    && fixed_slot_ok
                    && merged.costing.avg_activation_len <= config.max_region_len;
                if mergeable {
                    let max_cov = kid_regions
                        .iter()
                        .map(|r| r.coverage())
                        .fold(0.0_f64, f64::max)
                        .max(1.0);
                    // ΔCoverage per Eq. 5: preferring similarly sized
                    // siblings over large+small merges.
                    let delta_coverage = merged.coverage() / max_cov;
                    // ΔCost: checkpointing instructions the merge *adds*
                    // on the hot path beyond what the children already
                    // paid — merging one region's exposed loads with
                    // another's stores manufactures new WAR hazards, and
                    // those extra checkpoints are the true price of the
                    // bigger region (the children's intrinsic checkpoints
                    // exist either way). Floored at 0.5 so cost-free
                    // merges (a single shared recovery-pointer update
                    // instead of one per child) are strongly favored.
                    let kids_ckpt: u64 =
                        kid_regions.iter().map(|r| r.costing.ckpt_insts_hot).sum();
                    let delta_cost =
                        (merged.costing.ckpt_insts_hot as f64 - kids_ckpt as f64).max(0.5);
                    if delta_coverage / delta_cost > config.eta {
                        *merges += 1;
                        return vec![merged];
                    }
                }
            }
            parts.into_iter().flatten().collect()
        }

        let top = depth - 1;
        let ctx = WalkCtx {
            hierarchy: &hierarchy,
            children_of: &children_of,
            make: &make_candidate,
            fp,
            config,
        };
        let mut regions: Vec<CandidateRegion> = (0..hierarchy.levels[top].len())
            .flat_map(|i| walk(&ctx, top, i, &mut merges))
            .collect();
        // Deterministic order: by header block id.
        regions.sort_by_key(|r| r.spec.header);

        Self { func: fid, regions, merges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idempotence::Verdict;
    use encore_analysis::StaticAlias;
    use encore_ir::{AddrExpr, BinOp, ModuleBuilder, Operand};

    fn form(
        m: &Module,
        fid: FuncId,
        profile: &Profile,
        config: &EncoreConfig,
    ) -> RegionPartition {
        let oracle = StaticAlias;
        let analyzer = IdempotenceAnalyzer::new(m, &oracle);
        RegionPartition::form(m, fid, &analyzer, profile, config)
    }

    fn flat_profile(m: &Module, fid: FuncId, count: u64) -> Profile {
        let mut p = Profile::empty_for(m);
        let func = m.func(fid);
        let mut dyn_insts = 0u64;
        for (b, blk) in func.iter_blocks() {
            p.func_mut(fid).block_counts.insert(b, count);
            dyn_insts += count * (blk.insts.len() + 1) as u64;
            for s in blk.successors() {
                p.func_mut(fid).edge_counts.insert((b, s), count);
            }
        }
        p.func_mut(fid).invocations = count;
        p.func_mut(fid).dyn_insts = dyn_insts;
        p.total_dyn_insts = dyn_insts;
        p
    }

    #[test]
    fn partition_covers_all_blocks_once() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        let fid = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.load(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0));
                let v2 = f.bin(BinOp::Add, v.into(), Operand::ImmI(1));
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 4), v2.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let profile = flat_profile(&m, fid, 10);
        let part = form(&m, fid, &profile, &EncoreConfig::default());
        let mut seen = BTreeSet::new();
        for r in &part.regions {
            for b in &r.spec.blocks {
                assert!(seen.insert(*b), "block {b} in two regions");
            }
        }
        assert_eq!(seen.len(), m.func(fid).blocks.len());
    }

    #[test]
    fn low_eta_merges_into_one_region() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        let fid = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0), i.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let profile = flat_profile(&m, fid, 10);
        let eager = EncoreConfig::default().with_eta(0.0);
        let part = form(&m, fid, &profile, &eager);
        assert_eq!(part.regions.len(), 1, "eta=0 should merge everything");
        assert!(part.merges >= 1);
        assert_eq!(part.regions[0].spec.header, m.func(fid).entry());
    }

    #[test]
    fn high_eta_keeps_regions_separate() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        let fid = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0), i.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let profile = flat_profile(&m, fid, 10);
        let stingy = EncoreConfig::default().with_eta(1e12);
        let part = form(&m, fid, &profile, &stingy);
        assert!(part.regions.len() > 1, "huge eta should prevent merging");
        assert_eq!(part.merges, 0);
    }

    #[test]
    fn costing_counts_checkpoints() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let fid = mb.function("f", 0, |f| {
            let v = f.load(AddrExpr::global(g, 0));
            let v2 = f.bin(BinOp::Add, v.into(), Operand::ImmI(1));
            f.store(AddrExpr::global(g, 0), v2.into());
            f.ret(None);
        });
        let m = mb.finish();
        let profile = flat_profile(&m, fid, 100);
        let part = form(&m, fid, &profile, &EncoreConfig::default());
        assert_eq!(part.regions.len(), 1);
        let r = &part.regions[0];
        assert_eq!(r.analysis.verdict, Verdict::NonIdempotent { checkpointable: true });
        assert_eq!(r.costing.mem_ckpts, 1);
        assert!(r.costing.est_overhead > 0.0);
        assert!(r.cost() > 0.0);
        assert!(r.gamma_ratio().is_finite());
    }

    #[test]
    fn idempotent_region_has_infinite_gamma_ratio_without_reg_ckpts() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 2);
        let fid = mb.function("f", 0, |f| {
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::global(g, 1), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let profile = flat_profile(&m, fid, 100);
        let part = form(&m, fid, &profile, &EncoreConfig::default());
        let r = &part.regions[0];
        assert!(r.analysis.verdict.is_idempotent());
        // Cost is 1 SetRecovery / hot-path len: small but nonzero.
        assert!(r.cost() > 0.0 && r.cost() < 0.5);
    }

    #[test]
    fn exec_fraction_sums_to_one_over_partition() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        let fid = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0), i.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let profile = flat_profile(&m, fid, 10);
        let part = form(&m, fid, &profile, &EncoreConfig::default().with_eta(1e12));
        let total: f64 = part.regions.iter().map(|r| r.costing.exec_fraction).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
    }
}
