//! Encore configuration knobs (the "programmable heuristics" of the
//! paper's Figure 3).

use encore_analysis::AliasMode;

/// Tuning parameters for an Encore compilation.
///
/// The defaults reproduce the paper's evaluation setup: `Pmin = 0.0`
/// (prune only never-executed code), a 20 % runtime-overhead budget used
/// to derive γ empirically per application, η = 1.0, conservative static
/// alias analysis, and `Dmax = 100` instructions of detection latency
/// (the Shoestring/ReStore regime).
///
/// # Examples
///
/// ```
/// use encore_core::EncoreConfig;
///
/// let config = EncoreConfig::default()
///     .with_pmin(Some(0.1))
///     .with_overhead_budget(0.15);
/// assert_eq!(config.pmin, Some(0.1));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct EncoreConfig {
    /// `Pmin` (§3.4.1): blocks with execution probability `≤ Pmin`
    /// relative to their region header are pruned from the idempotence
    /// analysis. `None` disables pruning (the paper's `∅` column).
    pub pmin: Option<f64>,
    /// γ (§3.4.2): a region is instrumented only when
    /// `Coverage/Cost > γ`. When [`Self::overhead_budget`] is set the
    /// effective γ is derived per application instead (the paper's
    /// "empirically derived" values); this field then acts as a floor.
    pub gamma: f64,
    /// η (§3.4.2): regions are merged only when `ΔCoverage/ΔCost > η`.
    /// Small η favours large regions (reliability); large η favours low
    /// overhead.
    pub eta: f64,
    /// Target maximum runtime overhead (fraction of dynamic
    /// instructions); the paper used ~0.20. `None` disables
    /// budget-driven selection and uses raw γ.
    pub overhead_budget: Option<f64>,
    /// Which alias oracle to use (Figure 7a compares the two).
    pub alias: AliasMode,
    /// Maximum fault-detection latency in dynamic instructions (`Dmax`
    /// of Eq. 6); detection latency is uniform over `[0, Dmax]`.
    pub dmax: u64,
    /// Hardware masking rate used by the full-system model (the paper
    /// measured ≈0.91 on an ARM926 Verilog model via SFI).
    pub masking_rate: f64,
    /// **Ablation knob (unsound!):** skip the live-in register
    /// checkpoints at region headers. The paper inserts them "to ensure
    /// that no WAR register dependencies violate idempotence" (§3.2);
    /// eliding them shows, via fault injection, how many recoveries
    /// silently corrupt state without them.
    pub elide_reg_ckpts: bool,
    /// Optional upper bound on a region's expected dynamic length per
    /// activation (header execution); merges that would exceed it are
    /// refused. Defaults to `f64::INFINITY` (no cap): the structural
    /// fixed-slot constraint (a checkpointed store may execute at most
    /// once per activation) already bounds merging where it matters.
    /// Exposed as an ablation knob for the region-granularity study.
    pub max_region_len: f64,
    /// Worker threads for the per-function analysis loop of the pipeline
    /// (`0` = one per available core). Functions are sharded in
    /// contiguous index ranges and results merged in function order, so
    /// the pipeline output is bit-identical for any worker count.
    pub analysis_workers: usize,
}

impl Default for EncoreConfig {
    fn default() -> Self {
        Self {
            pmin: Some(0.0),
            gamma: 0.0,
            eta: 1.0,
            overhead_budget: Some(0.20),
            alias: AliasMode::Static,
            dmax: 100,
            masking_rate: 0.91,
            elide_reg_ckpts: false,
            max_region_len: f64::INFINITY,
            analysis_workers: 0,
        }
    }
}

impl EncoreConfig {
    /// Creates the default configuration (same as [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `Pmin` (`None` = no pruning, the paper's `∅`).
    pub fn with_pmin(mut self, pmin: Option<f64>) -> Self {
        self.pmin = pmin;
        self
    }

    /// Sets the γ selection threshold.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Sets the η merge threshold.
    pub fn with_eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Sets the runtime-overhead budget (fraction, e.g. `0.20`).
    pub fn with_overhead_budget(mut self, budget: f64) -> Self {
        self.overhead_budget = Some(budget);
        self
    }

    /// Disables budget-driven selection (use raw γ only).
    pub fn without_overhead_budget(mut self) -> Self {
        self.overhead_budget = None;
        self
    }

    /// Selects the alias oracle.
    pub fn with_alias(mut self, alias: AliasMode) -> Self {
        self.alias = alias;
        self
    }

    /// Sets the maximum detection latency `Dmax`.
    pub fn with_dmax(mut self, dmax: u64) -> Self {
        self.dmax = dmax;
        self
    }

    /// Sets the hardware masking rate for the full-system model.
    pub fn with_masking_rate(mut self, rate: f64) -> Self {
        self.masking_rate = rate;
        self
    }

    /// Sets the per-activation region length cap (see
    /// [`Self::max_region_len`]).
    pub fn with_max_region_len(mut self, len: f64) -> Self {
        self.max_region_len = len;
        self
    }

    /// Enables the unsound register-checkpoint-elision ablation.
    pub fn with_elided_reg_ckpts(mut self) -> Self {
        self.elide_reg_ckpts = true;
        self
    }

    /// Sets the analysis worker-thread count (`0` = all cores).
    pub fn with_analysis_workers(mut self, workers: usize) -> Self {
        self.analysis_workers = workers;
        self
    }

    /// Should block `b_prob` (execution probability relative to its
    /// region header) be pruned?
    pub fn should_prune(&self, prob: f64) -> bool {
        match self.pmin {
            None => false,
            Some(pmin) => prob <= pmin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = EncoreConfig::default();
        assert_eq!(c.pmin, Some(0.0));
        assert_eq!(c.overhead_budget, Some(0.20));
        assert_eq!(c.dmax, 100);
        assert!((c.masking_rate - 0.91).abs() < 1e-12);
        assert_eq!(c.alias, AliasMode::Static);
    }

    #[test]
    fn pruning_semantics() {
        let none = EncoreConfig::default().with_pmin(None);
        assert!(!none.should_prune(0.0));
        let zero = EncoreConfig::default().with_pmin(Some(0.0));
        assert!(zero.should_prune(0.0)); // never-executed code is pruned
        assert!(!zero.should_prune(0.001));
        let ten = EncoreConfig::default().with_pmin(Some(0.1));
        assert!(ten.should_prune(0.05));
        assert!(ten.should_prune(0.1));
        assert!(!ten.should_prune(0.2));
    }

    #[test]
    fn builder_chains() {
        let c = EncoreConfig::new()
            .with_gamma(2.0)
            .with_eta(0.5)
            .with_dmax(1000)
            .without_overhead_budget();
        assert_eq!(c.gamma, 2.0);
        assert_eq!(c.eta, 0.5);
        assert_eq!(c.dmax, 1000);
        assert_eq!(c.overhead_budget, None);
    }
}
