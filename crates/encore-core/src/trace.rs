//! Dynamic trace idempotence (the analysis behind Figure 1).
//!
//! A window of a dynamic memory-event trace is *inherently idempotent*
//! when no cell is read (while still carrying its pre-window value) and
//! later overwritten inside the window — re-running the window would then
//! reproduce the same final state. Figure 1 of the paper plots the
//! fraction of such windows against window length, motivating Encore: the
//! fraction falls quickly with length, but most non-idempotent windows
//! contain only a handful of offending stores ("statistically
//! idempotent"), which is what the *Idempotence Target* curve captures.

use encore_ir::{AccessKind, Cell, MemEvent};
use std::collections::HashMap;

/// Number of distinct stores in `events` that complete a WAR hazard:
/// stores overwriting a cell whose first access in the window was a load.
///
/// This is exactly the number of checkpoints Encore would need to make
/// the window re-executable.
pub fn window_violation_count(events: &[MemEvent]) -> usize {
    #[derive(Clone, Copy, PartialEq)]
    enum First {
        Load,
        Store,
    }
    let mut first: HashMap<Cell, First> = HashMap::new();
    let mut violating = 0usize;
    let mut counted: HashMap<Cell, bool> = HashMap::new();
    for ev in events {
        match ev.kind {
            AccessKind::Load => {
                first.entry(ev.cell).or_insert(First::Load);
            }
            AccessKind::Store => {
                match first.get(&ev.cell) {
                    Some(First::Load) => {
                        // Exposed-load cell being overwritten: every such
                        // store needs a checkpoint, but count a cell once
                        // (one checkpoint of the pre-window value
                        // suffices conceptually; the paper checkpoints per
                        // store, we report the cheaper cell-granular
                        // figure and the per-store one coincides for the
                        // common case of a single update).
                        let c = counted.entry(ev.cell).or_insert(false);
                        if !*c {
                            *c = true;
                            violating += 1;
                        }
                    }
                    Some(First::Store) => {}
                    None => {
                        first.insert(ev.cell, First::Store);
                    }
                }
            }
        }
    }
    violating
}

/// Is the window inherently idempotent (no WAR hazard at all)?
pub fn trace_window_idempotent(events: &[MemEvent]) -> bool {
    window_violation_count(events) == 0
}

/// Aggregated Figure 1 statistics for one window length.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct TraceIdempotence {
    /// Number of windows sampled.
    pub windows: usize,
    /// Windows with zero WAR hazards ("Fully Idempotent" curve).
    pub fully_idempotent: usize,
    /// Windows whose hazards are few enough to checkpoint cheaply
    /// (the "Idempotence Target" curve; see [`Self::target_threshold`]).
    pub nearly_idempotent: usize,
    /// Window length used (memory events are grouped by dynamic
    /// instruction distance).
    pub window_len: u64,
}

impl TraceIdempotence {
    /// Hazard budget for the target curve: a window counts as *nearly*
    /// idempotent when checkpointing at most `max(1, len/64)` cells makes
    /// it re-executable — i.e. instrumentation overhead stays under a few
    /// percent of the window. This models the paper's "only a few
    /// offending instructions, often on unlikely paths" observation.
    pub fn target_threshold(window_len: u64) -> usize {
        ((window_len / 64).max(1)) as usize
    }

    /// Scans `events` (a full-program trace, ordered by `at`) with
    /// non-overlapping windows of `window_len` dynamic instructions.
    pub fn measure(events: &[MemEvent], window_len: u64) -> Self {
        let mut stats = TraceIdempotence { window_len, ..Default::default() };
        if events.is_empty() || window_len == 0 {
            return stats;
        }
        let threshold = Self::target_threshold(window_len);
        let end = events.last().expect("nonempty").at;
        let mut window_start = events[0].at;
        let mut lo = 0usize;
        while window_start <= end {
            let window_end = window_start + window_len;
            let mut hi = lo;
            while hi < events.len() && events[hi].at < window_end {
                hi += 1;
            }
            let violations = window_violation_count(&events[lo..hi]);
            stats.windows += 1;
            if violations == 0 {
                stats.fully_idempotent += 1;
            }
            if violations <= threshold {
                stats.nearly_idempotent += 1;
            }
            lo = hi;
            window_start = window_end;
        }
        stats
    }

    /// Fraction of fully idempotent windows.
    pub fn fully_fraction(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.fully_idempotent as f64 / self.windows as f64
    }

    /// Fraction of windows meeting the idempotence target.
    pub fn target_fraction(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.nearly_idempotent as f64 / self.windows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::ObjKind;

    fn cell(i: u64) -> Cell {
        Cell { obj: ObjKind::Global(0), index: i }
    }

    #[test]
    fn empty_window_is_idempotent() {
        assert!(trace_window_idempotent(&[]));
    }

    #[test]
    fn load_then_store_same_cell_violates() {
        let ev = [MemEvent::load(cell(0), 0), MemEvent::store(cell(0), 1)];
        assert!(!trace_window_idempotent(&ev));
        assert_eq!(window_violation_count(&ev), 1);
    }

    #[test]
    fn store_then_load_same_cell_is_fine() {
        let ev = [MemEvent::store(cell(0), 0), MemEvent::load(cell(0), 1)];
        assert!(trace_window_idempotent(&ev));
    }

    #[test]
    fn disjoint_cells_are_fine() {
        let ev = [
            MemEvent::load(cell(0), 0),
            MemEvent::store(cell(1), 1),
            MemEvent::load(cell(2), 2),
            MemEvent::store(cell(3), 3),
        ];
        assert!(trace_window_idempotent(&ev));
    }

    #[test]
    fn violations_counted_per_cell() {
        let ev = [
            MemEvent::load(cell(0), 0),
            MemEvent::load(cell(1), 1),
            MemEvent::store(cell(0), 2),
            MemEvent::store(cell(0), 3), // same cell again: still 1
            MemEvent::store(cell(1), 4),
        ];
        assert_eq!(window_violation_count(&ev), 2);
    }

    #[test]
    fn store_then_load_then_store_is_guarded() {
        // First access is a store, so the cell's pre-window value is never
        // observed: re-execution is safe.
        let ev = [
            MemEvent::store(cell(0), 0),
            MemEvent::load(cell(0), 1),
            MemEvent::store(cell(0), 2),
        ];
        assert!(trace_window_idempotent(&ev));
    }

    #[test]
    fn measure_windows_split_correctly() {
        // 20 instructions of trace, windows of 10: first window violates,
        // second does not.
        let mut ev = vec![MemEvent::load(cell(0), 0), MemEvent::store(cell(0), 5)];
        ev.push(MemEvent::store(cell(1), 12));
        ev.push(MemEvent::load(cell(1), 15));
        let stats = TraceIdempotence::measure(&ev, 10);
        assert_eq!(stats.windows, 2);
        assert_eq!(stats.fully_idempotent, 1);
        assert!((stats.fully_fraction() - 0.5).abs() < 1e-12);
        // Single violation is within every target threshold.
        assert_eq!(stats.nearly_idempotent, 2);
    }

    #[test]
    fn target_threshold_scales() {
        assert_eq!(TraceIdempotence::target_threshold(10), 1);
        assert_eq!(TraceIdempotence::target_threshold(64), 1);
        assert_eq!(TraceIdempotence::target_threshold(640), 10);
    }
}
