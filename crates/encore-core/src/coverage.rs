//! The recoverability coverage model (paper §4.2).
//!
//! A fault at hot-path instruction `s` of a region with hot-path length
//! `n` is recoverable iff it is detected before control leaves the region:
//! `s + l < n`, with detection latency `l ~ U[0, Dmax]` and fault site
//! `s ~ U[0, n]`. Integrating (Eq. 7) gives the latency scaling factor
//!
//! ```text
//! α = 1 − Dmax/(2n)   if n ≥ Dmax
//! α = n/(2 Dmax)      if n < Dmax
//! ```
//!
//! Full-system coverage (Figure 8) composes hardware masking with the
//! α-scaled recoverable execution fractions.

/// Latency scaling factor α of Eq. 7 for a region with hot-path length
/// `n` (dynamic instructions) under maximum detection latency `dmax`.
///
/// Edge cases: `n == 0` yields `0.0` (an empty region can recover
/// nothing); `dmax == 0` yields `1.0` (instant detection always lands
/// inside the region).
///
/// # Examples
///
/// ```
/// use encore_core::alpha;
///
/// assert!((alpha(1000, 100) - 0.95).abs() < 1e-12); // 1 - 100/2000
/// assert!((alpha(50, 100) - 0.25).abs() < 1e-12);   // 50/200
/// ```
pub fn alpha(n: u64, dmax: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if dmax == 0 {
        return 1.0;
    }
    let (n, d) = (n as f64, dmax as f64);
    if n >= d {
        1.0 - d / (2.0 * n)
    } else {
        n / (2.0 * d)
    }
}

/// The point version of Eq. 6: probability that a fault at a uniform
/// hot-path site of a region with hot-path length `n` is detected
/// before control leaves the region, given a **fixed** detection
/// latency `l` (instead of Eq. 7's uniform average over `[0, Dmax]`):
/// `P(s + l < n) = max(0, (n − l)/n)`.
///
/// This is what an SFI campaign's per-latency-bin recovery rates
/// empirically estimate, so the campaign report uses it to
/// cross-validate the analytic model against measured histograms.
///
/// # Examples
///
/// ```
/// use encore_core::alpha_at_latency;
///
/// assert_eq!(alpha_at_latency(100, 0), 1.0);   // instant detection
/// assert_eq!(alpha_at_latency(100, 50), 0.5);  // half the sites escape
/// assert_eq!(alpha_at_latency(100, 200), 0.0); // always escapes
/// ```
pub fn alpha_at_latency(n: u64, l: u64) -> f64 {
    if n == 0 || l >= n {
        return 0.0;
    }
    (n - l) as f64 / n as f64
}

/// How execution time divides among region protection classes
/// (Figure 6's stack, as fractions of total dynamic instructions).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ExecutionBreakdown {
    /// Fraction spent in inherently idempotent, instrumented regions.
    pub idempotent: f64,
    /// Fraction spent in non-idempotent regions instrumented with
    /// selective checkpointing.
    pub checkpointed: f64,
    /// Fraction spent in regions left unprotected (too costly, unknown,
    /// or unprotectable) — lost recoverability coverage.
    pub unprotected: f64,
}

impl ExecutionBreakdown {
    /// Total protected fraction.
    pub fn protected_fraction(&self) -> f64 {
        self.idempotent + self.checkpointed
    }
}

/// The per-application coverage model: α-weighted recoverable fractions.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CoverageModel {
    /// Fraction of execution recoverable inside idempotent regions
    /// (α already applied).
    pub recoverable_idempotent: f64,
    /// Fraction recoverable inside checkpointed regions (α applied).
    pub recoverable_checkpointed: f64,
    /// Fraction not recoverable (unprotected + escapes past region
    /// boundaries).
    pub not_recoverable: f64,
}

impl CoverageModel {
    /// Builds the model from per-region data: each entry is
    /// `(exec_fraction, hot_path_len, is_idempotent)` for a *protected*
    /// region; `unprotected` is the remaining execution fraction.
    pub fn from_regions(
        regions: impl IntoIterator<Item = (f64, u64, bool)>,
        unprotected: f64,
        dmax: u64,
    ) -> Self {
        let mut idem = 0.0;
        let mut ckpt = 0.0;
        let mut escaped = 0.0;
        for (frac, n, is_idem) in regions {
            let a = alpha(n, dmax);
            if is_idem {
                idem += frac * a;
            } else {
                ckpt += frac * a;
            }
            escaped += frac * (1.0 - a);
        }
        Self {
            recoverable_idempotent: idem,
            recoverable_checkpointed: ckpt,
            not_recoverable: unprotected + escaped,
        }
    }

    /// Total recoverable fraction of (unmasked) faults.
    pub fn recoverable(&self) -> f64 {
        self.recoverable_idempotent + self.recoverable_checkpointed
    }
}

/// Figure 8's stacked full-system fault coverage.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FullSystemCoverage {
    /// Faults masked by the hardware (no intervention needed).
    pub masked: f64,
    /// Faults recovered via inherent idempotence.
    pub recovered_idempotent: f64,
    /// Faults recovered via Encore checkpointing.
    pub recovered_checkpointed: f64,
    /// Faults that escape recovery.
    pub not_recoverable: f64,
}

impl FullSystemCoverage {
    /// Composes hardware masking with the per-application coverage model.
    pub fn compose(masking_rate: f64, model: &CoverageModel) -> Self {
        let unmasked = 1.0 - masking_rate;
        Self {
            masked: masking_rate,
            recovered_idempotent: unmasked * model.recoverable_idempotent,
            recovered_checkpointed: unmasked * model.recoverable_checkpointed,
            not_recoverable: unmasked * model.not_recoverable,
        }
    }

    /// Total fault coverage (masked + recovered) — the paper's headline
    /// "97 % of transient faults".
    pub fn total(&self) -> f64 {
        self.masked + self.recovered_idempotent + self.recovered_checkpointed
    }

    /// Reduction in unmasked failures relative to masking alone, the
    /// paper's "66 % reduction in transient events that cause failures".
    pub fn failure_reduction(&self) -> f64 {
        let before = 1.0 - self.masked;
        if before <= 0.0 {
            return 0.0;
        }
        1.0 - self.not_recoverable / before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_regimes() {
        // n == Dmax: both formulas agree at 1/2.
        assert!((alpha(100, 100) - 0.5).abs() < 1e-12);
        // Long region, short latency: nearly everything recovered.
        assert!(alpha(10_000, 10) > 0.999);
        // Short region, long latency: nearly nothing recovered.
        assert!(alpha(10, 10_000) < 0.001);
    }

    #[test]
    fn alpha_edge_cases() {
        assert_eq!(alpha(0, 100), 0.0);
        assert_eq!(alpha(100, 0), 1.0);
    }

    #[test]
    fn alpha_at_latency_is_eq6_pointwise() {
        // Averaging the point version over l ~ U[0, Dmax] recovers
        // Eq. 7's α (up to the discretization of the sum).
        let (n, dmax) = (1000u64, 100u64);
        let mean: f64 =
            (0..=dmax).map(|l| alpha_at_latency(n, l)).sum::<f64>() / (dmax + 1) as f64;
        assert!((mean - alpha(n, dmax)).abs() < 1e-3, "mean {mean} vs α {}", alpha(n, dmax));
        // Monotone non-increasing in latency.
        let mut prev = 1.0;
        for l in [0u64, 1, 10, 100, 999, 1000, 2000] {
            let a = alpha_at_latency(n, l);
            assert!(a <= prev);
            prev = a;
        }
    }

    #[test]
    fn alpha_monotone_in_n() {
        let mut prev = 0.0;
        for n in [1u64, 10, 50, 100, 200, 1000, 10_000] {
            let a = alpha(n, 100);
            assert!(a >= prev, "alpha not monotone at n={n}");
            prev = a;
        }
    }

    #[test]
    fn coverage_model_composition() {
        // One idempotent region covering 60% with long hot path, one
        // checkpointed region covering 30%, 10% unprotected.
        let model = CoverageModel::from_regions(
            [(0.6, 10_000, true), (0.3, 10_000, false)],
            0.1,
            100,
        );
        assert!(model.recoverable_idempotent > 0.59);
        assert!(model.recoverable_checkpointed > 0.29);
        let total = model.recoverable() + model.not_recoverable;
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_system_matches_paper_shape() {
        // ~91% masking + strong recovery => ~97%+ total coverage.
        let model = CoverageModel::from_regions([(0.9, 1000, true)], 0.1, 100);
        let fs = FullSystemCoverage::compose(0.91, &model);
        assert!(fs.total() > 0.96, "total = {}", fs.total());
        assert!(fs.failure_reduction() > 0.6);
        let sum = fs.masked + fs.recovered_idempotent + fs.recovered_checkpointed
            + fs.not_recoverable;
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
