//! The instrumentation pass (paper §3.2).
//!
//! For every *selected* region the pass:
//!
//! 1. prepends `SetRecovery` to the region header — the paper's "simple
//!    store that updates a dedicated memory location with the address of
//!    the corresponding recovery block";
//! 2. prepends one `CheckpointReg` per live-in register the region
//!    overwrites;
//! 3. inserts `CheckpointMem` immediately before every store in the
//!    checkpoint set CP (saving the cell's pre-store value and address);
//! 4. appends a *recovery block* — `Restore` followed by a jump back to
//!    the region header — the destination of all rollbacks initiated
//!    while the region is active.
//!
//! The pass returns the instrumented module plus a [`RegionMap`] the
//! simulator uses to resolve recovery targets and to attribute dynamic
//! execution to regions, and a [`StorageReport`] reproducing Figure 7b's
//! bytes-per-region accounting (memory checkpoints store value + address
//! = 16 bytes; register checkpoints store one value = 8 bytes).

use crate::region::CandidateRegion;
use encore_ir::{BlockId, FuncId, Inst, Module, Reg, RegionId, Terminator};
use std::collections::BTreeMap;

/// Metadata about one region in the final partition (instrumented or
/// not).
#[derive(Clone, PartialEq, Debug)]
pub struct RegionInfo {
    /// Region id (dense across the module).
    pub id: RegionId,
    /// Function containing the region.
    pub func: FuncId,
    /// Region header block (in the instrumented module the header keeps
    /// its id; only instruction indices shift).
    pub header: BlockId,
    /// Member blocks.
    pub blocks: Vec<BlockId>,
    /// The recovery block appended for this region (`None` when the
    /// region was not instrumented).
    pub recovery_block: Option<BlockId>,
    /// Whether the region was selected for protection.
    pub protected: bool,
    /// Whether the region was memory-idempotent (needed no memory
    /// checkpoints).
    pub idempotent: bool,
    /// Memory checkpoints inserted.
    pub mem_ckpts: usize,
    /// Register checkpoints inserted at the header.
    pub reg_ckpts: usize,
    /// Average dynamic instructions per activation (Eq. 7's `n`).
    pub avg_activation_len: f64,
    /// Share of profiled execution spent in this region.
    pub exec_fraction: f64,
}

/// Region lookup tables for the simulator.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RegionMap {
    /// All regions, indexed by [`RegionId`].
    pub regions: Vec<RegionInfo>,
    /// Per function: block → region id.
    block_to_region: BTreeMap<FuncId, BTreeMap<BlockId, RegionId>>,
}

impl RegionMap {
    /// The region containing block `b` of function `f`, if any.
    pub fn region_of(&self, f: FuncId, b: BlockId) -> Option<RegionId> {
        self.block_to_region.get(&f)?.get(&b).copied()
    }

    /// Info for region `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn info(&self, id: RegionId) -> &RegionInfo {
        &self.regions[id.index()]
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` when the map holds no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// Figure 7b storage accounting.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct StorageReport {
    /// Per instrumented region: `(memory bytes, register bytes)`.
    pub per_region: Vec<(u64, u64)>,
}

impl StorageReport {
    /// Bytes per memory checkpoint (data + address).
    pub const MEM_CKPT_BYTES: u64 = 16;
    /// Bytes per register checkpoint (data only).
    pub const REG_CKPT_BYTES: u64 = 8;

    /// Average memory-checkpoint bytes per instrumented region.
    pub fn avg_mem_bytes(&self) -> f64 {
        if self.per_region.is_empty() {
            return 0.0;
        }
        self.per_region.iter().map(|(m, _)| *m as f64).sum::<f64>()
            / self.per_region.len() as f64
    }

    /// Average register-checkpoint bytes per instrumented region.
    pub fn avg_reg_bytes(&self) -> f64 {
        if self.per_region.is_empty() {
            return 0.0;
        }
        self.per_region.iter().map(|(_, r)| *r as f64).sum::<f64>()
            / self.per_region.len() as f64
    }

    /// Average total checkpoint bytes per instrumented region (the
    /// paper's headline "24 bytes per region").
    pub fn avg_total_bytes(&self) -> f64 {
        self.avg_mem_bytes() + self.avg_reg_bytes()
    }
}

/// An instrumented module with its recovery metadata.
#[derive(Clone, PartialEq, Debug)]
pub struct InstrumentedModule {
    /// The rewritten module.
    pub module: Module,
    /// Region metadata and lookup tables.
    pub map: RegionMap,
    /// Storage accounting for Figure 7b.
    pub storage: StorageReport,
}

/// Applies the instrumentation pass.
///
/// `candidates` is the final region partition of the whole module, each
/// paired with its selection decision (`true` = instrument). Regions must
/// be disjoint per function; headers must be unique.
pub fn instrument_module(
    module: &Module,
    candidates: &[(CandidateRegion, bool)],
) -> InstrumentedModule {
    instrument_module_with(module, candidates, false)
}

/// [`instrument_module`] with the register-checkpoint-elision ablation
/// knob (`elide_reg_ckpts = true` skips the live-in saves — unsound, for
/// the ablation study only).
pub fn instrument_module_with(
    module: &Module,
    candidates: &[(CandidateRegion, bool)],
    elide_reg_ckpts: bool,
) -> InstrumentedModule {
    let mut out = module.clone();
    let mut map = RegionMap::default();
    let mut storage = StorageReport::default();

    for (idx, (cand, selected)) in candidates.iter().enumerate() {
        let rid = RegionId::new(idx as u32);
        let fid = cand.spec.func;
        let header = cand.spec.header;
        let protected = *selected && cand.analysis.verdict.is_protectable();

        let mut recovery_block = None;
        let mut reg_ckpts_inserted = 0usize;
        let mut mem_ckpts_inserted = 0usize;

        if protected {
            let func = out.func_mut(fid);

            // 3. CheckpointMem before every CP store. Group by block and
            //    apply in descending index order so indices stay valid.
            let mut by_block: BTreeMap<BlockId, Vec<(usize, encore_ir::AddrExpr)>> =
                BTreeMap::new();
            for site in &cand.analysis.cp {
                by_block
                    .entry(site.at.block)
                    .or_default()
                    .push((site.at.index, site.addr));
            }
            for (b, mut sites) in by_block {
                sites.sort_by_key(|(i, _)| std::cmp::Reverse(*i));
                for (i, addr) in sites {
                    func.block_mut(b)
                        .insts
                        .insert(i, Inst::CheckpointMem { addr });
                    mem_ckpts_inserted += 1;
                }
            }

            // 1–2. Header prologue: SetRecovery then register
            //      checkpoints, in deterministic (register id) order.
            //      The clobbered set was computed with the candidate's
            //      costing; no liveness pass runs here.
            let clobbered: Vec<Reg> = if elide_reg_ckpts {
                Vec::new()
            } else {
                cand.costing.reg_ckpt_set.clone()
            };
            reg_ckpts_inserted = clobbered.len();
            let mut prologue = Vec::with_capacity(1 + clobbered.len());
            prologue.push(Inst::SetRecovery { region: rid });
            prologue.extend(clobbered.into_iter().map(|reg| Inst::CheckpointReg { reg }));
            let hdr = func.block_mut(header);
            for inst in prologue.into_iter().rev() {
                hdr.insts.insert(0, inst);
            }

            // 4. Recovery block: Restore + jump back to the header.
            let rb = func.add_block();
            func.block_mut(rb).insts.push(Inst::Restore { region: rid });
            func.block_mut(rb).term = Some(Terminator::Jump(header));
            recovery_block = Some(rb);

            storage.per_region.push((
                mem_ckpts_inserted as u64 * StorageReport::MEM_CKPT_BYTES,
                reg_ckpts_inserted as u64 * StorageReport::REG_CKPT_BYTES,
            ));
        }

        let info = RegionInfo {
            id: rid,
            func: fid,
            header,
            blocks: cand.spec.blocks.iter().copied().collect(),
            recovery_block,
            protected,
            idempotent: cand.analysis.verdict.is_idempotent(),
            mem_ckpts: mem_ckpts_inserted,
            reg_ckpts: reg_ckpts_inserted,
            avg_activation_len: cand.costing.avg_activation_len,
            exec_fraction: cand.costing.exec_fraction,
        };
        for b in &cand.spec.blocks {
            map.block_to_region.entry(fid).or_default().insert(*b, rid);
        }
        map.regions.push(info);
    }

    InstrumentedModule { module: out, map, storage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoreConfig;
    use crate::idempotence::IdempotenceAnalyzer;
    use crate::region::RegionPartition;
    use encore_analysis::{Profile, StaticAlias};
    use encore_ir::{verify_module, AddrExpr, BinOp, ModuleBuilder, Operand};

    fn build_and_instrument() -> (Module, InstrumentedModule) {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 4);
        let fid = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, _i| {
                let v = f.load(AddrExpr::global(g, 0));
                let v2 = f.bin(BinOp::Add, v.into(), Operand::ImmI(1));
                f.store(AddrExpr::global(g, 0), v2.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        // Flat profile so nothing is pruned.
        let mut profile = Profile::empty_for(&m);
        let mut dyn_insts = 0u64;
        for (b, blk) in m.func(fid).iter_blocks() {
            profile.func_mut(fid).block_counts.insert(b, 10);
            dyn_insts += 10 * (blk.insts.len() + 1) as u64;
            for s in blk.successors() {
                profile.func_mut(fid).edge_counts.insert((b, s), 10);
            }
        }
        profile.total_dyn_insts = dyn_insts;

        let oracle = StaticAlias;
        let analyzer = IdempotenceAnalyzer::new(&m, &oracle);
        let config = EncoreConfig::default().with_eta(0.0);
        let part = RegionPartition::form(&m, fid, &analyzer, &profile, &config);
        let cands: Vec<_> = part.regions.into_iter().map(|r| (r, true)).collect();
        let inst = instrument_module(&m, &cands);
        (m, inst)
    }

    #[test]
    fn instrumented_module_verifies() {
        let (_, inst) = build_and_instrument();
        verify_module(&inst.module).expect("instrumented module is valid IR");
    }

    #[test]
    fn header_gets_setrecovery_first() {
        let (_, inst) = build_and_instrument();
        let protected: Vec<_> =
            inst.map.regions.iter().filter(|r| r.protected).collect();
        assert!(!protected.is_empty());
        for r in protected {
            let func = inst.module.func(r.func);
            let first = &func.block(r.header).insts[0];
            assert!(
                matches!(first, Inst::SetRecovery { region } if *region == r.id),
                "header of {} starts with {first:?}",
                r.id
            );
        }
    }

    #[test]
    fn recovery_block_restores_and_jumps_home() {
        let (_, inst) = build_and_instrument();
        for r in inst.map.regions.iter().filter(|r| r.protected) {
            let rb = r.recovery_block.expect("protected region has recovery block");
            let func = inst.module.func(r.func);
            let block = func.block(rb);
            assert!(matches!(block.insts[0], Inst::Restore { region } if region == r.id));
            assert_eq!(block.terminator(), &Terminator::Jump(r.header));
        }
    }

    #[test]
    fn checkpoint_precedes_every_cp_store() {
        let (_, inst) = build_and_instrument();
        // Every CheckpointMem must be immediately followed (possibly after
        // other checkpoints) by a store to the same address.
        for func in &inst.module.funcs {
            for block in &func.blocks {
                for (i, inst_) in block.insts.iter().enumerate() {
                    if let Inst::CheckpointMem { addr } = inst_ {
                        let next_store = block.insts[i + 1..]
                            .iter()
                            .find_map(|x| x.store_addr());
                        assert_eq!(
                            next_store,
                            Some(addr),
                            "checkpoint without matching downstream store"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn storage_report_counts_bytes() {
        let (_, inst) = build_and_instrument();
        assert!(!inst.storage.per_region.is_empty());
        // The in-place counter loop forces one memory checkpoint (16 B)
        // and at least one register checkpoint (loop counter, 8 B).
        assert!(inst.storage.avg_total_bytes() >= 16.0);
    }

    #[test]
    fn unselected_regions_left_untouched() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let fid = mb.function("f", 0, |f| {
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::global(g, 0), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let profile = Profile::empty_for(&m);
        let oracle = StaticAlias;
        let analyzer = IdempotenceAnalyzer::new(&m, &oracle);
        let config = EncoreConfig::default().with_pmin(None);
        let part = RegionPartition::form(&m, fid, &analyzer, &profile, &config);
        let cands: Vec<_> = part.regions.into_iter().map(|r| (r, false)).collect();
        let inst = instrument_module(&m, &cands);
        assert_eq!(inst.module, m, "unselected regions must not change code");
        assert!(inst.map.regions.iter().all(|r| !r.protected));
        assert!(inst.storage.per_region.is_empty());
    }

    #[test]
    fn block_to_region_lookup() {
        let (_, inst) = build_and_instrument();
        for r in &inst.map.regions {
            for b in &r.blocks {
                assert_eq!(inst.map.region_of(r.func, *b), Some(r.id));
            }
        }
    }
}
