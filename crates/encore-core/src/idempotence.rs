//! The Encore idempotence analysis (paper §3.1).
//!
//! For a SEME region the analysis computes, per basic block:
//!
//! * **RS** — *reachable stores* (Eq. 1): stores that could still execute
//!   once control has passed through the block (self-inclusive, matching
//!   Figure 4 of the paper);
//! * **GA** — *guarded addresses* (Eq. 2): cells guaranteed to have been
//!   overwritten on every path from the region entry to the block;
//! * **EA** — *exposed addresses* (Eq. 3): loads that may have read a cell
//!   not previously overwritten.
//!
//! The region is idempotent iff `EA(bb) ∩ RS(bb) = ∅` for every block
//! (Eq. 4), where the intersection is resolved through a conservative
//! alias oracle. Each offending store lands in the *checkpoint set* CP
//! (§3.2).
//!
//! ## Loops
//!
//! The paper summarizes loops hierarchically and notes the sets are built
//! with "multiple post-order traversals" — i.e. an iterative dataflow.
//! This implementation runs the equivalent *fixpoint* directly on the
//! region's (possibly cyclic) induced subgraph: around a cycle the RS
//! fixpoint makes every block in a loop reach every store of the loop
//! (`RS = ASˡ`, §3.1.2's cross-iteration rule), and GA/EA propagate
//! through back edges, which is exactly what the loop meta-data achieves.
//! [`IdempotenceAnalyzer::summarize_loop`] additionally exposes the paper's per-loop
//! `RSˡ`/`GAˡ`/`EAˡ` meta-data for inspection and testing.
//!
//! ## Engine
//!
//! The three fixpoints run on [`encore_analysis::BitSet`] dense sets over
//! function-level site universes, driven by the generic
//! [`solve_worklist`] solver (RS backward, seeded in postorder; GA/EA
//! forward, seeded in reverse postorder). Per-function inputs — block
//! effects, site tables, guard universe — are computed once per
//! [`IdempotenceAnalyzer`] and shared by every region over the same
//! function; Eq. 4 alias answers are memoized for the analyzer's
//! lifetime. The naive round-robin solver is retained as
//! [`IdempotenceAnalyzer::analyze_region_reference`] and the two are held
//! equal by differential property tests.
//!
//! ## Profile pruning (§3.4.1)
//!
//! Blocks whose execution probability (relative to the region header) is
//! `≤ Pmin` are pruned from the analysis: their memory effects vanish and
//! edges through them disappear, yielding *statistical* idempotence.

use crate::memref::{
    is_imprecise_summary, summary_addr_expr, AbsAddr, GuardAddr, GuardSet, LoadSite, StoreSite,
};
use encore_analysis::{solve_worklist, AddrSet, AliasOracle, BitSet, MemSummary};
use encore_ir::{BlockId, FuncId, Function, Inst, InstRef, Module};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

/// A candidate recovery region: a SEME subgraph of one function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegionSpec {
    /// Function containing the region.
    pub func: FuncId,
    /// Region header (single entry; dominates all members).
    pub header: BlockId,
    /// All member blocks, header included.
    pub blocks: BTreeSet<BlockId>,
}

/// Outcome of the idempotence test for one region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// No WAR hazard on any live path: re-executable for free.
    Idempotent,
    /// WAR hazards exist.
    NonIdempotent {
        /// `true` if every hazard can be neutralized by checkpointing the
        /// offending stores; `false` when a live block allocates memory
        /// (re-execution would observably re-allocate).
        checkpointable: bool,
    },
    /// The region contains calls the analysis cannot see through
    /// (opaque externals / impure internals) on live paths.
    Unknown,
}

impl Verdict {
    /// `true` for [`Verdict::Idempotent`].
    pub fn is_idempotent(&self) -> bool {
        matches!(self, Verdict::Idempotent)
    }

    /// `true` when the region can be instrumented for recovery (either
    /// already idempotent or checkpointable).
    pub fn is_protectable(&self) -> bool {
        matches!(
            self,
            Verdict::Idempotent | Verdict::NonIdempotent { checkpointable: true }
        )
    }
}

/// A WAR hazard: an exposed load whose cell a reachable store may
/// overwrite.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Violation {
    /// The overwriting store (checkpoint candidate).
    pub store: StoreSite,
    /// The exposed load.
    pub load: LoadSite,
}

/// Full result of analyzing one region.
#[derive(Clone, PartialEq, Debug)]
pub struct RegionAnalysis {
    /// The verdict (Eq. 4 plus call/alloc handling).
    pub verdict: Verdict,
    /// Checkpoint set CP: stores that must be checkpointed to make the
    /// region re-executable (empty for idempotent regions).
    pub cp: Vec<StoreSite>,
    /// All WAR hazards found (one store may appear in several).
    pub violations: Vec<Violation>,
    /// Blocks that participated in the analysis after pruning, in
    /// ascending id order.
    pub live_blocks: Vec<BlockId>,
    /// Blocks pruned by the `Pmin` heuristic (or unreachable from the
    /// header once pruned blocks were removed).
    pub pruned_blocks: BTreeSet<BlockId>,
}

/// Per-block effects extracted once per function.
#[derive(Clone, Debug, Default)]
struct BlockEffects {
    may_stores: Vec<StoreSite>,
    must_guards: GuardSet,
    exposed: Vec<LoadSite>,
    unknown: bool,
    alloc: bool,
}

/// The paper's loop-wide meta-data (§3.1.2), exposed for inspection.
#[derive(Clone, PartialEq, Debug)]
pub struct LoopSummary {
    /// `RSˡ = ASˡ`: every store in the loop.
    pub reachable_stores: Vec<StoreSite>,
    /// `GAˡ`: cells guaranteed overwritten whenever the loop executes.
    pub guarded: GuardSet,
    /// `EAˡ`: loads exposed across all paths through the loop.
    pub exposed: Vec<LoadSite>,
    /// Whether the loop body itself passes Eq. 4.
    pub idempotent: bool,
}

/// The idempotence analyzer: module-wide immutable inputs plus an alias
/// oracle, and lazily built per-function tables ([`FuncCache`]) shared by
/// every region analysis over the same function — including across the
/// sharded pipeline's worker threads.
pub struct IdempotenceAnalyzer<'a> {
    module: &'a Module,
    memsum: MemSummary,
    oracle: &'a dyn AliasOracle,
    caches: Vec<OnceLock<FuncCache>>,
}

impl std::fmt::Debug for IdempotenceAnalyzer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdempotenceAnalyzer")
            .field("module", &self.module.name)
            .finish_non_exhaustive()
    }
}

impl<'a> IdempotenceAnalyzer<'a> {
    /// Creates an analyzer over `module` using `oracle` for alias
    /// queries. Inter-procedural memory summaries ([`MemSummary`]) are
    /// computed up front so call sites can be treated as bundles of
    /// loads/stores instead of pessimistic Unknowns.
    pub fn new(module: &'a Module, oracle: &'a dyn AliasOracle) -> Self {
        Self {
            module,
            memsum: MemSummary::compute(module),
            oracle,
            caches: module.funcs.iter().map(|_| OnceLock::new()).collect(),
        }
    }

    /// Returns the per-function tables, building them on first use.
    fn func_cache(&self, fid: FuncId) -> &FuncCache {
        self.caches[fid.index()].get_or_init(|| self.build_func_cache(fid))
    }

    /// Builds [`FuncCache`]: block effects, the function-level load/store
    /// site tables, the guard universe, and per-block must-guard bitsets.
    fn build_func_cache(&self, fid: FuncId) -> FuncCache {
        let func = self.module.func(fid);
        let n = func.blocks.len();
        let mut effects: Vec<BlockEffects> = vec![BlockEffects::default(); n];
        for b in func.block_ids() {
            effects[b.index()] = self.block_effects(func, b);
        }

        // Site tables: every load/store occurrence gets a dense key (a
        // call site may contribute several summarized sites, so InstRefs
        // alone are not unique keys). Indices are assigned in ascending
        // (BlockId, position-in-block) order — the same order the old
        // per-region tables followed — so ascending-index iteration
        // preserves the historical violation/CP emission order exactly.
        let mut load_table: Vec<LoadSite> = Vec::new();
        let mut store_table: Vec<StoreSite> = Vec::new();
        let mut block_loads: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut block_stores: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut guard_universe: BTreeSet<GuardAddr> = BTreeSet::new();
        for b in func.block_ids() {
            let i = b.index();
            for l in &effects[i].exposed {
                block_loads[i].push(load_table.len());
                load_table.push(*l);
            }
            for s in &effects[i].may_stores {
                block_stores[i].push(store_table.len());
                store_table.push(*s);
            }
            guard_universe.extend(effects[i].must_guards.iter().copied());
        }

        let guard_table: Vec<GuardAddr> = guard_universe.into_iter().collect();
        let guard_index: BTreeMap<GuardAddr, usize> =
            guard_table.iter().enumerate().map(|(k, g)| (*g, k)).collect();
        let must_bits: Vec<BitSet> = (0..n)
            .map(|i| {
                let mut bs = BitSet::new(guard_table.len());
                for g in effects[i].must_guards.iter() {
                    bs.insert(guard_index[g]);
                }
                bs
            })
            .collect();
        // A load is exposed unconditionally (`None`) when its address is
        // opaque or names a cell no block in the function ever guards —
        // GA ranges over the guard universe and can never cover it.
        let load_guard: Vec<Option<usize>> = load_table
            .iter()
            .map(|l| match l.addr {
                AbsAddr::Top => None,
                AbsAddr::Expr(a) => {
                    GuardAddr::of(&a).and_then(|g| guard_index.get(&g).copied())
                }
            })
            .collect();

        let conflict_rows = load_table.iter().map(|_| OnceLock::new()).collect();
        let succs: Vec<Vec<BlockId>> =
            func.block_ids().map(|b| func.block(b).successors()).collect();
        FuncCache {
            effects,
            succs,
            load_table,
            store_table,
            block_loads,
            block_stores,
            guard_table,
            must_bits,
            load_guard,
            conflict_rows,
        }
    }

    /// The stores that may conflict with load `lat` of `func` (Eq. 4
    /// resolved through the alias oracle), memoized for the analyzer's
    /// lifetime.
    fn conflict_row<'c>(&self, cache: &'c FuncCache, func: FuncId, lat: usize) -> &'c BitSet {
        cache.conflict_rows[lat].get_or_init(|| {
            let l = cache.load_table[lat];
            let mut row = BitSet::new(cache.store_table.len());
            for (sat, s) in cache.store_table.iter().enumerate() {
                if self.conflicts(func, &l, s) {
                    row.insert(sat);
                }
            }
            row
        })
    }

    /// Extracts the local effects of block `b` in `func`.
    fn block_effects(&self, func: &Function, b: BlockId) -> BlockEffects {
        let mut fx = BlockEffects::default();
        let mut local_guards: GuardSet = GuardSet::new();
        for (i, inst) in func.block(b).insts.iter().enumerate() {
            let at = InstRef::new(b, i);
            match inst {
                Inst::Load { addr, .. } => {
                    let guarded = GuardAddr::of(addr)
                        .map(|g| local_guards.contains(&g))
                        .unwrap_or(false);
                    if !guarded {
                        fx.exposed.push(LoadSite { at, addr: AbsAddr::Expr(*addr) });
                    }
                }
                Inst::Store { addr, .. } => {
                    fx.may_stores.push(StoreSite { at, addr: *addr });
                    if let Some(g) = GuardAddr::of(addr) {
                        local_guards.insert(g);
                        fx.must_guards.insert(g);
                    }
                }
                Inst::Alloc { .. } => fx.alloc = true,
                Inst::Call { callee, .. } => {
                    // A call is a bundle of its callee's (transitive)
                    // caller-visible effects. Re-executing the region
                    // re-executes the call, so callee loads are exposed
                    // loads and callee stores are may-stores at the call
                    // site; callee-internal WARs then surface naturally
                    // as call-site load/store conflicts.
                    let fx_callee = self.memsum.effects(*callee);
                    if fx_callee.allocates {
                        fx.alloc = true;
                    }
                    match &fx_callee.stores {
                        AddrSet::Top => fx.unknown = true,
                        AddrSet::Set(stores) => {
                            match &fx_callee.loads {
                                AddrSet::Top => {
                                    fx.exposed.push(LoadSite { at, addr: AbsAddr::Top })
                                }
                                AddrSet::Set(_) => {
                                    for a in fx_callee.loads.iter() {
                                        fx.exposed.push(LoadSite {
                                            at,
                                            addr: AbsAddr::Expr(summary_addr_expr(a)),
                                        });
                                    }
                                }
                            }
                            for a in stores {
                                fx.may_stores
                                    .push(StoreSite { at, addr: summary_addr_expr(a) });
                            }
                        }
                    }
                }
                Inst::CallExt { effect, .. } => match effect {
                    encore_ir::ExtEffect::Pure => {}
                    encore_ir::ExtEffect::ReadOnly => {
                        fx.exposed.push(LoadSite { at, addr: AbsAddr::Top })
                    }
                    encore_ir::ExtEffect::Opaque => fx.unknown = true,
                },
                // Encore's own instrumentation never participates: it
                // exists to preserve, not change, region semantics.
                Inst::SetRecovery { .. }
                | Inst::CheckpointMem { .. }
                | Inst::CheckpointReg { .. }
                | Inst::Restore { .. } => {}
                _ => {}
            }
        }
        fx
    }

    /// May the exposed load `l` read the cell the store `s` writes?
    /// Site-aware so profile-guided oracles can consult observed
    /// footprints.
    fn conflicts(&self, func: FuncId, l: &LoadSite, s: &StoreSite) -> bool {
        match l.addr {
            AbsAddr::Top => true,
            AbsAddr::Expr(a) => {
                let la = encore_analysis::SiteRef { func, at: l.at };
                let sa = encore_analysis::SiteRef { func, at: s.at };
                self.oracle.alias_at(Some(la), &a, Some(sa), &s.addr)
                    != encore_analysis::AliasResult::No
            }
        }
    }

    /// Analyzes `spec`, pruning blocks for which `prune` returns `true`
    /// (the header is never pruned).
    pub fn analyze_region(
        &self,
        spec: &RegionSpec,
        prune: &dyn Fn(BlockId) -> bool,
    ) -> RegionAnalysis {
        let state = self.dataflow(spec, prune);
        self.check(spec, state)
    }

    /// Runs the RS/GA/EA fixpoints over the live subgraph of `spec` on the
    /// bitset worklist engine: RS backward, seeded in postorder; GA then
    /// EA forward, seeded in reverse postorder. All three fixpoints are
    /// monotone over finite lattices, so the worklist reaches the same
    /// (unique) fixpoint as the round-robin iteration it replaces.
    fn dataflow<'c>(
        &'c self,
        spec: &RegionSpec,
        prune: &dyn Fn(BlockId) -> bool,
    ) -> DataflowState<'c> {
        let func = self.module.func(spec.func);
        let cache = self.func_cache(spec.func);

        // 1. Live set: member blocks that survive pruning *and* remain
        //    reachable from the header inside the region. One DFS over
        //    the cached successor lists yields both the live set and its
        //    postorder (Eqs. 1–3 are phrased as post-order passes; the
        //    worklist only needs the order as seeds). The traversal
        //    visits children in successor order, exactly as
        //    `order::postorder_from` does.
        let nblocks = func.blocks.len();
        let mut allowed = vec![false; nblocks];
        for &b in &spec.blocks {
            allowed[b.index()] = b == spec.header || !prune(b);
        }
        let mut visited = vec![false; nblocks];
        let mut po_blocks: Vec<BlockId> = Vec::with_capacity(spec.blocks.len());
        if allowed[spec.header.index()] {
            let mut stack: Vec<(BlockId, usize)> = vec![(spec.header, 0)];
            visited[spec.header.index()] = true;
            while let Some((b, cursor)) = stack.last_mut() {
                let succ = &cache.succs[b.index()];
                if *cursor < succ.len() {
                    let s = succ[*cursor];
                    *cursor += 1;
                    if allowed[s.index()] && !visited[s.index()] {
                        visited[s.index()] = true;
                        stack.push((s, 0));
                    }
                } else {
                    po_blocks.push(*b);
                    stack.pop();
                }
            }
        }

        // Live blocks in ascending id order — the emission order `check`
        // iterates — with a dense id → live-index map.
        let mut index_of = vec![usize::MAX; nblocks];
        let mut live_vec: Vec<BlockId> = Vec::with_capacity(po_blocks.len());
        for b in func.block_ids() {
            if visited[b.index()] {
                index_of[b.index()] = live_vec.len();
                live_vec.push(b);
            }
        }
        let n = live_vec.len();
        let pruned: BTreeSet<BlockId> =
            spec.blocks.iter().copied().filter(|b| !visited[b.index()]).collect();

        // 2. Induced edges over live indices, stored CSR-style: one flat
        //    edge array plus offsets per direction, instead of one heap
        //    `Vec` per block.
        let mut succ_off = vec![0usize; n + 1];
        let mut pred_off = vec![0usize; n + 1];
        for (i, b) in live_vec.iter().enumerate() {
            for s in &cache.succs[b.index()] {
                let j = index_of[s.index()];
                if j != usize::MAX {
                    succ_off[i + 1] += 1;
                    pred_off[j + 1] += 1;
                }
            }
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        let mut succ_edges = vec![0usize; succ_off[n]];
        let mut pred_edges = vec![0usize; pred_off[n]];
        let mut pred_cur = pred_off.clone();
        let mut sc = 0;
        for (i, b) in live_vec.iter().enumerate() {
            for s in &cache.succs[b.index()] {
                let j = index_of[s.index()];
                if j != usize::MAX {
                    succ_edges[sc] = j;
                    sc += 1;
                    pred_edges[pred_cur[j]] = i;
                    pred_cur[j] += 1;
                }
            }
        }
        let succs = |i: usize| &succ_edges[succ_off[i]..succ_off[i + 1]];
        let preds = |i: usize| &pred_edges[pred_off[i]..pred_off[i + 1]];

        let unknown = live_vec.iter().any(|b| cache.effects[b.index()].unknown);
        let alloc = live_vec.iter().any(|b| cache.effects[b.index()].alloc);

        let po: Vec<usize> =
            po_blocks.iter().map(|b| index_of[b.index()]).collect();
        let rpo: Vec<usize> = po.iter().rev().copied().collect();

        let nstores = cache.store_table.len();
        let nloads = cache.load_table.len();
        let nguards = cache.guard_table.len();

        // 3. RS fixpoint (Eq. 1, self-inclusive): RS(b) = AS(b) ∪ ⋃ RS(succ).
        //    Backward: a block's RS feeds its predecessors.
        let mut rs: Vec<BitSet> = live_vec
            .iter()
            .map(|b| {
                let mut s = BitSet::new(nstores);
                for &k in &cache.block_stores[b.index()] {
                    s.insert(k);
                }
                s
            })
            .collect();
        // An empty site universe is already at fixpoint — every set is
        // and stays empty — so the solve (and its queue allocations) can
        // be skipped outright. Same below for GA and EA.
        if nstores > 0 {
            solve_worklist(&po, n, preds, |i| {
                let mut acc = std::mem::take(&mut rs[i]);
                let mut grown = false;
                for &j in succs(i) {
                    // A self-loop contributes nothing new to a union.
                    if j != i {
                        grown |= acc.union_with(&rs[j]);
                    }
                }
                rs[i] = acc;
                grown
            });
        }

        // 4. GA fixpoint (Eq. 2, must): GA(b) = ⋂_{p∈preds} (GA(p) ∪ MUST(p)),
        //    header = ∅ (nothing is guarded at region entry). `None`
        //    encodes the ⊤ initializer of a must-analysis; the transfer
        //    recomputes from the predecessors' current values.
        let entry_idx = index_of[spec.header.index()];
        let mut ga: Vec<Option<BitSet>> = vec![None; n];
        ga[entry_idx] = Some(BitSet::new(nguards));
        if nguards > 0 {
            solve_worklist(&rpo, n, succs, |i| {
                if i == entry_idx {
                    return false;
                }
                let mut acc: Option<BitSet> = None;
                for &p in preds(i) {
                    let Some(gp) = &ga[p] else { continue };
                    let must = &cache.must_bits[live_vec[p].index()];
                    match &mut acc {
                        None => {
                            let mut contrib = gp.clone();
                            contrib.union_with(must);
                            acc = Some(contrib);
                        }
                        // `cur ∩ (gp ∪ must)`; when MUST(p) is empty the
                        // union is `gp` itself and the clone is skipped.
                        Some(cur) if must.is_empty() => {
                            cur.intersect_with(gp);
                        }
                        Some(cur) => {
                            let mut contrib = gp.clone();
                            contrib.union_with(must);
                            cur.intersect_with(&contrib);
                        }
                    }
                }
                match acc {
                    Some(new) if ga[i].as_ref() != Some(&new) => {
                        ga[i] = Some(new);
                        true
                    }
                    _ => false,
                }
            });
        }

        // 5. EA fixpoint (Eq. 3, may): EA(b) = ⋃_{p} EA(p) ∪ (EAˡᵒᶜ(b) − GA(b)).
        //    Seeded with the locally exposed loads under the *final* GA,
        //    which is why GA must complete first.
        let mut ea: Vec<BitSet> = (0..n)
            .map(|i| {
                let mut s = BitSet::new(nloads);
                for &li in &cache.block_loads[live_vec[i].index()] {
                    let exposed = match cache.load_guard[li] {
                        None => true,
                        Some(g) => {
                            !ga[i].as_ref().map(|bits| bits.contains(g)).unwrap_or(false)
                        }
                    };
                    if exposed {
                        s.insert(li);
                    }
                }
                s
            })
            .collect();
        if nloads > 0 {
            solve_worklist(&rpo, n, succs, |i| {
                let mut acc = std::mem::take(&mut ea[i]);
                let mut grown = false;
                for &p in preds(i) {
                    if p != i {
                        grown |= acc.union_with(&ea[p]);
                    }
                }
                ea[i] = acc;
                grown
            });
        }

        DataflowState {
            live_vec,
            index_of,
            cache,
            rs,
            ga,
            ea,
            unknown,
            alloc,
            pruned,
        }
    }

    /// Applies the Eq. 4 emptiness check to a completed dataflow.
    fn check(&self, spec: &RegionSpec, state: DataflowState<'_>) -> RegionAnalysis {
        let DataflowState { live_vec, cache, rs, ea, unknown, alloc, pruned, .. } = state;
        let n = live_vec.len();
        let load_table = &cache.load_table;
        let store_table = &cache.store_table;

        // Eq. 4 check per block, recording CP. Conflict answers are pure
        // function-level facts, so each load's row of conflicting stores
        // is memoized for the analyzer's lifetime and shared across
        // every region over this function; the per-block probe is then a
        // word-level walk of `row ∩ RS`.
        let mut violations: Vec<Violation> = Vec::new();
        let mut seen_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut cp_sites: BTreeSet<usize> = BTreeSet::new();
        let mut imprecise_violation = false;
        for i in 0..n {
            for lat in ea[i].iter() {
                let l = load_table[lat];
                let row = self.conflict_row(cache, spec.func, lat);
                for sat in row.iter_and(&rs[i]) {
                    if seen_pairs.insert((sat, lat)) {
                        violations.push(Violation { store: store_table[sat], load: l });
                        cp_sites.insert(sat);
                        // A "some cell of g" callee-summary store cannot
                        // be checkpointed from a single slot.
                        if is_imprecise_summary(&store_table[sat].addr) {
                            imprecise_violation = true;
                        }
                    }
                }
            }
        }

        let mut cp: Vec<StoreSite> = Vec::new();
        for &s in &cp_sites {
            let site = store_table[s];
            if !cp.iter().any(|e| e.at == site.at && e.addr == site.addr) {
                cp.push(site);
            }
        }
        let verdict = if unknown {
            Verdict::Unknown
        } else if alloc || imprecise_violation {
            // Re-executing an allocation observably re-allocates, and a
            // dynamic-offset callee store cannot be checkpointed from a
            // single reserved slot: either way the region is
            // unprotectable.
            Verdict::NonIdempotent { checkpointable: false }
        } else if cp.is_empty() {
            Verdict::Idempotent
        } else {
            Verdict::NonIdempotent { checkpointable: true }
        };

        RegionAnalysis {
            verdict,
            cp,
            violations,
            live_blocks: live_vec,
            pruned_blocks: pruned,
        }
    }

    /// Computes the paper's loop-wide meta-data (§3.1.2) for the loop made
    /// of `blocks` with header `header`: `RSˡ = ASˡ`,
    /// `GAˡ = ⋂ exits (GA ∪ MUST)`, `EAˡ = ⋃ exits EA`, and the loop-body
    /// idempotence verdict.
    pub fn summarize_loop(
        &self,
        func_id: FuncId,
        header: BlockId,
        blocks: &BTreeSet<BlockId>,
    ) -> LoopSummary {
        let func = self.module.func(func_id);
        let spec = RegionSpec { func: func_id, header, blocks: blocks.clone() };
        let state = self.dataflow(&spec, &|_| false);
        let cache = state.cache;

        // RSˡ = ASˡ: every store inside the loop.
        let reachable_stores: Vec<StoreSite> = state
            .live_vec
            .iter()
            .flat_map(|b| {
                cache.block_stores[b.index()].iter().map(|&s| cache.store_table[s])
            })
            .collect();

        // Exits: blocks with a successor outside the loop.
        let exits: Vec<BlockId> = blocks
            .iter()
            .copied()
            .filter(|b| func.block(*b).successors().iter().any(|s| !blocks.contains(s)))
            .collect();

        let nguards = cache.guard_table.len();
        let mut guarded_bits: Option<BitSet> = None;
        let mut exposed_sites: BTreeSet<usize> = BTreeSet::new();
        for &e in &exits {
            let i = state.index_of[e.index()];
            if i == usize::MAX {
                continue;
            }
            let mut g = state.ga[i].clone().unwrap_or_else(|| BitSet::new(nguards));
            g.union_with(&cache.must_bits[e.index()]);
            guarded_bits = Some(match guarded_bits {
                None => g,
                Some(mut cur) => {
                    cur.intersect_with(&g);
                    cur
                }
            });
            exposed_sites.extend(state.ea[i].iter());
        }
        let guarded: GuardSet = guarded_bits
            .map(|bs| bs.iter().map(|k| cache.guard_table[k]).collect())
            .unwrap_or_default();
        let exposed: Vec<LoadSite> =
            exposed_sites.iter().map(|&s| cache.load_table[s]).collect();

        let analysis = self.check(&spec, state);
        LoopSummary {
            reachable_stores,
            guarded,
            exposed,
            idempotent: analysis.verdict.is_idempotent(),
        }
    }

    /// The naive reference solver the worklist engine replaced: the same
    /// RS/GA/EA equations iterated round-robin over per-region
    /// `BTreeSet`s, with no function-level caching or memoization.
    ///
    /// Kept (and exercised by the differential property tests in
    /// `tests/analysis_properties.rs`) as an executable specification:
    /// [`IdempotenceAnalyzer::analyze_region`] must agree with it
    /// bit-for-bit on every region.
    pub fn analyze_region_reference(
        &self,
        spec: &RegionSpec,
        prune: &dyn Fn(BlockId) -> bool,
    ) -> RegionAnalysis {
        let func = self.module.func(spec.func);

        let unpruned: BTreeSet<BlockId> = spec
            .blocks
            .iter()
            .copied()
            .filter(|b| *b == spec.header || !prune(*b))
            .collect();
        let live: BTreeSet<BlockId> =
            encore_analysis::order::reachable_from(func, spec.header, Some(&unpruned));
        let pruned: BTreeSet<BlockId> =
            spec.blocks.difference(&live).copied().collect();

        let live_vec: Vec<BlockId> = live.iter().copied().collect();
        let index_of: BTreeMap<BlockId, usize> =
            live_vec.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let n = live_vec.len();

        let effects: Vec<BlockEffects> =
            live_vec.iter().map(|b| self.block_effects(func, *b)).collect();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, b) in live_vec.iter().enumerate() {
            for s in func.block(*b).successors() {
                if let Some(&j) = index_of.get(&s) {
                    succs[i].push(j);
                    preds[j].push(i);
                }
            }
        }

        let unknown = effects.iter().any(|e| e.unknown);
        let alloc = effects.iter().any(|e| e.alloc);

        let mut load_table: Vec<LoadSite> = Vec::new();
        let mut store_table: Vec<StoreSite> = Vec::new();
        let mut block_loads: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut block_stores: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for l in &effects[i].exposed {
                block_loads[i].push(load_table.len());
                load_table.push(*l);
            }
            for s in &effects[i].may_stores {
                block_stores[i].push(store_table.len());
                store_table.push(*s);
            }
        }

        // RS: round-robin to a fixpoint.
        let mut rs: Vec<BTreeSet<usize>> =
            (0..n).map(|i| block_stores[i].iter().copied().collect()).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let mut grown = false;
                let snapshot: Vec<usize> = succs[i]
                    .iter()
                    .flat_map(|&j| rs[j].iter().copied().collect::<Vec<_>>())
                    .collect();
                for site in snapshot {
                    grown |= rs[i].insert(site);
                }
                changed |= grown;
            }
        }

        // GA: round-robin must-analysis, `None` = ⊤.
        let entry_idx = index_of[&spec.header];
        let mut ga: Vec<Option<GuardSet>> = vec![None; n];
        ga[entry_idx] = Some(GuardSet::new());
        changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                if i == entry_idx {
                    continue;
                }
                let mut acc: Option<GuardSet> = None;
                for &p in &preds[i] {
                    let Some(gp) = &ga[p] else { continue };
                    let mut contrib = gp.clone();
                    contrib.extend(effects[p].must_guards.iter().copied());
                    acc = Some(match acc {
                        None => contrib,
                        Some(cur) => cur.intersection(&contrib).copied().collect(),
                    });
                }
                if let Some(new) = acc {
                    if ga[i].as_ref() != Some(&new) {
                        ga[i] = Some(new);
                        changed = true;
                    }
                }
            }
        }

        // EA: locally exposed under final GA, then round-robin union.
        let locally_exposed = |i: usize| -> Vec<usize> {
            let guards = ga[i].clone().unwrap_or_default();
            block_loads[i]
                .iter()
                .copied()
                .filter(|&li| match load_table[li].addr {
                    AbsAddr::Top => true,
                    AbsAddr::Expr(a) => GuardAddr::of(&a)
                        .map(|g| !guards.contains(&g))
                        .unwrap_or(true),
                })
                .collect()
        };
        let mut ea: Vec<BTreeSet<usize>> =
            (0..n).map(|i| locally_exposed(i).into_iter().collect()).collect();
        changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let mut grown = false;
                let snapshot: Vec<usize> = preds[i]
                    .iter()
                    .flat_map(|&p| ea[p].iter().copied().collect::<Vec<_>>())
                    .collect();
                for site in snapshot {
                    grown |= ea[i].insert(site);
                }
                changed |= grown;
            }
        }

        // Eq. 4 with a region-local pair cache.
        let mut pair_cache: BTreeMap<(usize, usize), bool> = BTreeMap::new();
        let mut violations: Vec<Violation> = Vec::new();
        let mut seen_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut cp_sites: BTreeSet<usize> = BTreeSet::new();
        let mut imprecise_violation = false;
        for i in 0..n {
            for &lat in &ea[i] {
                let l = load_table[lat];
                for &sat in &rs[i] {
                    let conflict = *pair_cache
                        .entry((lat, sat))
                        .or_insert_with(|| self.conflicts(spec.func, &l, &store_table[sat]));
                    if conflict && seen_pairs.insert((sat, lat)) {
                        violations.push(Violation { store: store_table[sat], load: l });
                        cp_sites.insert(sat);
                        if is_imprecise_summary(&store_table[sat].addr) {
                            imprecise_violation = true;
                        }
                    }
                }
            }
        }

        let mut cp: Vec<StoreSite> = Vec::new();
        for &s in &cp_sites {
            let site = store_table[s];
            if !cp.iter().any(|e| e.at == site.at && e.addr == site.addr) {
                cp.push(site);
            }
        }
        let verdict = if unknown {
            Verdict::Unknown
        } else if alloc || imprecise_violation {
            Verdict::NonIdempotent { checkpointable: false }
        } else if cp.is_empty() {
            Verdict::Idempotent
        } else {
            Verdict::NonIdempotent { checkpointable: true }
        };

        RegionAnalysis {
            verdict,
            cp,
            violations,
            live_blocks: live.iter().copied().collect(),
            pruned_blocks: pruned,
        }
    }
}

/// Per-function tables built lazily, once per [`IdempotenceAnalyzer`],
/// and shared by every region analysis over the same function.
///
/// Site indices are assigned scanning blocks in ascending `BlockId`
/// order, positions in program order within a block — the same
/// `(block, position)` order the old per-region tables followed, so
/// ascending-index iteration over the function-level tables visits sites
/// in the identical relative order within any region.
struct FuncCache {
    /// Local effects, indexed by block.
    effects: Vec<BlockEffects>,
    /// Per-block successor lists, precomputed once so region traversals
    /// never re-materialize them from terminators.
    succs: Vec<Vec<BlockId>>,
    /// Every exposed-load occurrence in the function.
    load_table: Vec<LoadSite>,
    /// Every may-store occurrence in the function.
    store_table: Vec<StoreSite>,
    /// Per-block indices into `load_table`.
    block_loads: Vec<Vec<usize>>,
    /// Per-block indices into `store_table`.
    block_stores: Vec<Vec<usize>>,
    /// Sorted universe of guard addresses (any block's `must_guards`).
    guard_table: Vec<GuardAddr>,
    /// Per-block MUST sets over `guard_table`.
    must_bits: Vec<BitSet>,
    /// Per load: `Some(g)` when the load reads guardable cell
    /// `guard_table[g]` (exposed unless GA covers `g`); `None` when it is
    /// exposed unconditionally.
    load_guard: Vec<Option<usize>>,
    /// Memoized Eq. 4 conflict answers: `conflict_rows[l]` is the set of
    /// store sites that may alias load `l`, built lazily per load and
    /// retained for the analyzer's lifetime (replacing the old
    /// per-region pair cache). Dense rows turn the per-block hazard
    /// probe into a word-level `EA ∩ RS` intersection walk.
    conflict_rows: Vec<OnceLock<BitSet>>,
}

/// Completed dataflow over a region's live subgraph. The RS/GA/EA sets
/// are dense bitsets over the owning function's site/guard universes.
struct DataflowState<'c> {
    live_vec: Vec<BlockId>,
    /// Block index → live index, `usize::MAX` for non-live blocks.
    index_of: Vec<usize>,
    cache: &'c FuncCache,
    rs: Vec<BitSet>,
    ga: Vec<Option<BitSet>>,
    ea: Vec<BitSet>,
    unknown: bool,
    alloc: bool,
    pruned: BTreeSet<BlockId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_analysis::StaticAlias;
    use encore_ir::{AddrExpr, BinOp, ModuleBuilder, Operand};

    fn analyze(m: &Module, spec: &RegionSpec) -> RegionAnalysis {
        let oracle = StaticAlias;
        let az = IdempotenceAnalyzer::new(m, &oracle);
        az.analyze_region(spec, &|_| false)
    }

    fn whole_function_region(m: &Module, f: FuncId) -> RegionSpec {
        RegionSpec {
            func: f,
            header: m.func(f).entry(),
            blocks: m.func(f).block_ids().collect(),
        }
    }

    #[test]
    fn read_only_region_is_idempotent() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 4);
        let f = mb.function("f", 0, |f| {
            let a = f.load(AddrExpr::global(g, 0));
            let b = f.load(AddrExpr::global(g, 1));
            let s = f.bin(BinOp::Add, a.into(), b.into());
            f.ret(Some(s.into()));
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::Idempotent);
        assert!(r.cp.is_empty());
    }

    #[test]
    fn war_in_single_block_detected() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let f = mb.function("f", 0, |f| {
            let v = f.load(AddrExpr::global(g, 0));
            let v2 = f.bin(BinOp::Add, v.into(), Operand::ImmI(1));
            f.store(AddrExpr::global(g, 0), v2.into());
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::NonIdempotent { checkpointable: true });
        assert_eq!(r.cp.len(), 1);
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn store_then_load_is_idempotent() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let f = mb.function("f", 0, |f| {
            f.store(AddrExpr::global(g, 0), Operand::ImmI(7));
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::global(g, 0), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::Idempotent);
    }

    #[test]
    fn guard_on_one_path_does_not_guard_the_other() {
        // entry branches; only the then-arm stores g[0]; join loads g[0];
        // a later store to g[0] completes the WAR on the else path.
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let f = mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_else(
                p.into(),
                |f| f.store(AddrExpr::global(g, 0), Operand::ImmI(1)),
                |_| {},
            );
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::global(g, 0), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::NonIdempotent { checkpointable: true });
    }

    #[test]
    fn guard_on_all_paths_guards_the_join() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let f = mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_else(
                p.into(),
                |f| f.store(AddrExpr::global(g, 0), Operand::ImmI(1)),
                |f| f.store(AddrExpr::global(g, 0), Operand::ImmI(2)),
            );
            let v = f.load(AddrExpr::global(g, 0));
            f.store(AddrExpr::global(g, 0), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::Idempotent);
    }

    #[test]
    fn cross_iteration_war_detected() {
        // for i in 0..n { t = g[0]; g[0] = t + i }  — WAR across iterations
        // and within one iteration.
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let f = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let t = f.load(AddrExpr::global(g, 0));
                let t2 = f.bin(BinOp::Add, t.into(), i.into());
                f.store(AddrExpr::global(g, 0), t2.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::NonIdempotent { checkpointable: true });
        assert_eq!(r.cp.len(), 1);
    }

    #[test]
    fn streaming_loop_is_idempotent() {
        // for i in 0..n { out[i] = in_[i] * 2 } — no WAR: reads and writes
        // go to different globals.
        let mut mb = ModuleBuilder::new("m");
        let src = mb.global("src", 64);
        let dst = mb.global("dst", 64);
        let f = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.load(AddrExpr::indexed(encore_ir::MemBase::Global(src), i, 1, 0));
                let v2 = f.bin(BinOp::Mul, v.into(), Operand::ImmI(2));
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(dst), i, 1, 0), v2.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::Idempotent);
    }

    #[test]
    fn in_place_update_loop_may_conflict() {
        // for i in 0..n { a[i] = a[j] + 1 } with dynamic indices: the
        // conservative oracle must flag a potential cross-iteration WAR.
        let mut mb = ModuleBuilder::new("m");
        let a = mb.global("a", 64);
        let f = mb.function("f", 2, |f| {
            let n = f.param(0);
            let j = f.param(1);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.load(AddrExpr::indexed(encore_ir::MemBase::Global(a), j, 1, 0));
                let v2 = f.bin(BinOp::Add, v.into(), Operand::ImmI(1));
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(a), i, 1, 0), v2.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::NonIdempotent { checkpointable: true });
    }

    #[test]
    fn opaque_call_makes_region_unknown() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.function("f", 0, |f| {
            f.call_ext_void("syscall", &[], encore_ir::ExtEffect::Opaque);
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::Unknown);
    }

    #[test]
    fn alloc_makes_region_uncheckpointable() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.function("f", 0, |f| {
            let p = f.alloc(Operand::ImmI(8));
            f.ret(Some(p.into()));
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::NonIdempotent { checkpointable: false });
        assert!(!r.verdict.is_protectable());
    }

    #[test]
    fn pruning_cold_alloc_restores_idempotence() {
        // Mirrors the 175.vpr try_swap example (paper Fig. 2c): a one-time
        // allocation path poisons the region unless it is pruned away.
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("data", 8);
        let f = mb.function("f", 1, |f| {
            let first = f.param(0);
            f.if_then(first.into(), |f| {
                let p = f.alloc(Operand::ImmI(64));
                f.store(AddrExpr::global(g, 0), p.into());
            });
            let v = f.load(AddrExpr::global(g, 1));
            f.store(AddrExpr::global(g, 2), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let spec = whole_function_region(&m, f);
        // Without pruning: alloc poisons the region.
        let r = analyze(&m, &spec);
        assert_eq!(r.verdict, Verdict::NonIdempotent { checkpointable: false });
        // Pruning the cold then-arm (bb1): region becomes idempotent.
        let oracle = StaticAlias;
        let az = IdempotenceAnalyzer::new(&m, &oracle);
        let cold = BlockId::new(1);
        let r2 = az.analyze_region(&spec, &|b| b == cold);
        assert_eq!(r2.verdict, Verdict::Idempotent);
        assert!(r2.pruned_blocks.contains(&cold));
    }

    #[test]
    fn readonly_call_exposes_everything() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let f = mb.function("f", 0, |f| {
            let v = f.call_ext("peek", &[], encore_ir::ExtEffect::ReadOnly);
            f.store(AddrExpr::global(g, 0), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::NonIdempotent { checkpointable: true });
        assert_eq!(r.cp.len(), 1);
    }

    #[test]
    fn pure_internal_call_is_transparent() {
        let mut mb = ModuleBuilder::new("m");
        let sq = mb.function("sq", 1, |f| {
            let p = f.param(0);
            let r = f.bin(BinOp::Mul, p.into(), p.into());
            f.ret(Some(r.into()));
        });
        let g = mb.global("g", 1);
        let f = mb.function("f", 0, |f| {
            let v = f.call(sq, &[Operand::ImmI(3)]);
            f.store(AddrExpr::global(g, 0), v.into());
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::Idempotent);
    }

    /// The worked example from Figure 4 of the paper: eight blocks, four
    /// syntactic WAR pairs, of which exactly one (instructions 7 and 10,
    /// the ⋆ pair on addresses "B") survives the path-sensitive-ish
    /// analysis — instruction 10 is the only store needing a checkpoint.
    #[test]
    fn paper_figure_4_example() {
        let mut mb = ModuleBuilder::new("m");
        let ga = mb.global("A", 1);
        let gb = mb.global("B", 1);
        let gc = mb.global("C", 1);
        let a = AddrExpr::global(ga, 0);
        let b = AddrExpr::global(gb, 0);
        let c = AddrExpr::global(gc, 0);
        let f = mb.function("fig4", 1, |f| {
            let p = f.param(0);
            // bb1: 1: Store A
            let bb2 = f.add_block();
            let bb3 = f.add_block();
            let bb4 = f.add_block();
            let bb5 = f.add_block();
            let bb6 = f.add_block();
            let bb7 = f.add_block();
            let bb8 = f.add_block();
            f.store(a, Operand::ImmI(1));
            f.branch(p.into(), bb2, bb3);
            // bb2: 2: Store B ; 3: Store C
            f.switch_to(bb2);
            f.store(b, Operand::ImmI(2));
            f.store(c, Operand::ImmI(3));
            f.jump(bb5);
            // bb3: 4: Load A ; 5: Store C
            f.switch_to(bb3);
            let v4 = f.load(a);
            f.store(c, v4.into());
            f.jump(bb4);
            // bb4: 6: Load B
            f.switch_to(bb4);
            let v6 = f.load(b);
            f.branch(v6.into(), bb5, bb6);
            // bb5: 7: Load B
            f.switch_to(bb5);
            let v7 = f.load(b);
            f.branch(v7.into(), bb7, bb8);
            // bb6: 8: Load C
            f.switch_to(bb6);
            let v8 = f.load(c);
            f.branch(v8.into(), bb7, bb8);
            // bb7: 9: Store A ; 10: Store B ; 11: Load C
            f.switch_to(bb7);
            f.store(a, Operand::ImmI(9));
            f.store(b, Operand::ImmI(10));
            let v11 = f.load(c);
            let _ = v11;
            f.ret(None);
            // bb8: 12: Store C
            f.switch_to(bb8);
            f.store(c, Operand::ImmI(12));
            f.ret(None);
        });
        let m = mb.finish();
        let r = analyze(&m, &whole_function_region(&m, f));
        assert_eq!(r.verdict, Verdict::NonIdempotent { checkpointable: true });
        // Exactly one checkpoint: instruction 10 (the store to B in bb7),
        // matching the paper's "single dependency that actually requires
        // checkpointing".
        assert_eq!(r.cp.len(), 1, "CP = {:?}", r.cp);
        let cp = &r.cp[0];
        assert_eq!(cp.addr, b);
        assert_eq!(cp.at.block, BlockId::new(6)); // bb7 in paper = block 6 here
        // Hazard pairs: loads 6 (bb4) and 7 (bb5) of B are both exposed
        // (the paper's Figure 4b shows EA = {B} at both blocks) and both
        // conflict with store 10 — two pairs, one store.
        assert_eq!(r.violations.len(), 2);
        assert!(r.violations.iter().all(|v| v.store.at == cp.at));
        // The other syntactic WARs never materialize:
        // #: 4 loads A but A is guarded by 1 (entry store) on all paths.
        // @: 8 loads C but C is guarded by 3 or 5 on both paths to bb6.
        // +: 11 loads C but 12 (store C) is not reachable from bb7.
    }

    #[test]
    fn loop_summary_reports_all_stores() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        let f = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0), i.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let func = m.func(f);
        let dom = encore_analysis::DomTree::compute(func);
        let forest = encore_analysis::LoopForest::compute(func, &dom);
        assert_eq!(forest.loops.len(), 1);
        let oracle = StaticAlias;
        let az = IdempotenceAnalyzer::new(&m, &oracle);
        let l = &forest.loops[0];
        let summary = az.summarize_loop(f, l.header, &l.blocks);
        assert_eq!(summary.reachable_stores.len(), 1);
        assert!(summary.idempotent);
    }
}
