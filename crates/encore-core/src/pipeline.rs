//! The end-to-end Encore compilation pipeline (paper Figure 3).
//!
//! `partition → analyze → select → instrument`, with selection driven by
//! the γ threshold and/or the runtime-overhead budget (the paper derives
//! γ and η "empirically for each application to target ~20 % overhead";
//! here the budget-driven selection performs that derivation
//! deterministically: regions are admitted in decreasing
//! benefit-per-overhead order until the budget is spent, and the implied
//! γ is reported).

use crate::config::EncoreConfig;
use crate::coverage::{CoverageModel, ExecutionBreakdown, FullSystemCoverage};
use crate::idempotence::{IdempotenceAnalyzer, Verdict};
use crate::instrument::{instrument_module_with, InstrumentedModule};
use crate::region::{CandidateRegion, RegionPartition};
use encore_analysis::Profile;
use encore_ir::{FuncId, Module};

/// Per-region one-line summary for reports.
#[derive(Clone, PartialEq, Debug)]
pub struct RegionReport {
    /// Function containing the region.
    pub func: FuncId,
    /// Function name (for printing).
    pub func_name: String,
    /// Region header.
    pub header: encore_ir::BlockId,
    /// Number of member blocks.
    pub block_count: usize,
    /// Idempotence verdict.
    pub verdict: Verdict,
    /// Whether the region was selected for instrumentation.
    pub protected: bool,
    /// Share of profiled execution.
    pub exec_fraction: f64,
    /// Memory checkpoints required.
    pub mem_ckpts: usize,
    /// Register checkpoints required.
    pub reg_ckpts: usize,
}

/// Region verdict tallies (Figure 5's stacks).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VerdictCounts {
    /// Inherently idempotent regions.
    pub idempotent: usize,
    /// Non-idempotent (checkpointable or not) regions.
    pub non_idempotent: usize,
    /// Regions the analysis could not see through.
    pub unknown: usize,
}

impl VerdictCounts {
    /// Total regions.
    pub fn total(&self) -> usize {
        self.idempotent + self.non_idempotent + self.unknown
    }

    /// Fraction helpers for the Figure 5 stacks.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.idempotent as f64 / t,
            self.non_idempotent as f64 / t,
            self.unknown as f64 / t,
        )
    }
}

/// Everything the pipeline produces for one module.
#[derive(Debug)]
pub struct EncoreOutcome {
    /// Final candidate regions with their selection decision, in the
    /// order matching [`encore_ir::RegionId`] assignment.
    pub candidates: Vec<(CandidateRegion, bool)>,
    /// The instrumented module plus recovery metadata.
    pub instrumented: InstrumentedModule,
    /// The γ implied by budget-driven selection (the ratio of the best
    /// rejected region; `config.gamma` when nothing was rejected).
    pub derived_gamma: f64,
    /// Estimated runtime overhead of the selected instrumentation
    /// (fraction of dynamic instructions).
    pub est_overhead: f64,
    /// Figure 6's execution breakdown.
    pub breakdown: ExecutionBreakdown,
    /// Figure 8's per-application coverage model (before masking).
    pub coverage: CoverageModel,
    /// Figure 8's full-system stack (after masking).
    pub full_system: FullSystemCoverage,
    /// Figure 5's verdict tallies.
    pub verdicts: VerdictCounts,
    /// Per-region one-liners.
    pub reports: Vec<RegionReport>,
    /// Total η-driven merges across functions.
    pub merges: usize,
}

/// The Encore compiler driver.
#[derive(Clone, PartialEq, Debug)]
pub struct Encore {
    config: EncoreConfig,
}

impl Encore {
    /// Creates a driver with the given configuration.
    pub fn new(config: EncoreConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EncoreConfig {
        &self.config
    }

    /// Runs the full pipeline on `module` with training `profile`.
    pub fn run(&self, module: &Module, profile: &Profile) -> EncoreOutcome {
        let oracle = self
            .config
            .alias
            .oracle_with(Some(std::sync::Arc::new(profile.mem.clone())));
        let analyzer = IdempotenceAnalyzer::new(module, oracle.as_ref());

        // 1. Partition every function, sharded across worker threads in
        //    contiguous function-index ranges (the same deterministic
        //    pattern as the SFI campaign): each function's partition is
        //    independent of the others, and shard results are merged in
        //    function order, so the outcome is bit-identical to a
        //    sequential run for any worker count.
        let fids: Vec<FuncId> = module.iter_funcs().map(|(fid, _)| fid).collect();
        let n = fids.len();
        let workers = match self.config.analysis_workers {
            0 => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
            w => w,
        }
        .clamp(1, n.max(1));
        let form = |fid: FuncId| {
            RegionPartition::form(module, fid, &analyzer, profile, &self.config)
        };
        let parts: Vec<RegionPartition> = if workers <= 1 {
            fids.iter().copied().map(form).collect()
        } else {
            let per = n.div_ceil(workers);
            let fids = &fids;
            let form = &form;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let (lo, hi) = (w * per, ((w + 1) * per).min(n));
                        scope.spawn(move || {
                            fids[lo..hi].iter().copied().map(form).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("analysis worker panicked"))
                    .collect()
            })
        };
        let mut candidates: Vec<CandidateRegion> = Vec::new();
        let mut merges = 0usize;
        for part in parts {
            merges += part.merges;
            candidates.extend(part.regions);
        }

        // 2. Selection.
        let (selected_flags, derived_gamma, est_overhead) = self.select(&candidates);
        let candidates: Vec<(CandidateRegion, bool)> = candidates
            .into_iter()
            .zip(selected_flags)
            .collect();

        // 3. Instrumentation.
        let instrumented =
            instrument_module_with(module, &candidates, self.config.elide_reg_ckpts);

        // 4. Models and reports.
        let mut verdicts = VerdictCounts::default();
        let mut breakdown = ExecutionBreakdown::default();
        let mut covered_exec = 0.0;
        let mut model_regions: Vec<(f64, u64, bool)> = Vec::new();
        let mut reports = Vec::new();
        for (cand, selected) in &candidates {
            match cand.analysis.verdict {
                Verdict::Idempotent => verdicts.idempotent += 1,
                Verdict::NonIdempotent { .. } => verdicts.non_idempotent += 1,
                Verdict::Unknown => verdicts.unknown += 1,
            }
            covered_exec += cand.costing.exec_fraction;
            if *selected {
                if cand.analysis.verdict.is_idempotent() {
                    breakdown.idempotent += cand.costing.exec_fraction;
                } else {
                    breakdown.checkpointed += cand.costing.exec_fraction;
                }
                model_regions.push((
                    cand.costing.exec_fraction,
                    cand.costing.avg_activation_len.round() as u64,
                    cand.analysis.verdict.is_idempotent(),
                ));
            }
            reports.push(RegionReport {
                func: cand.spec.func,
                func_name: module.func(cand.spec.func).name.clone(),
                header: cand.spec.header,
                block_count: cand.spec.blocks.len(),
                verdict: cand.analysis.verdict,
                protected: *selected,
                exec_fraction: cand.costing.exec_fraction,
                mem_ckpts: cand.analysis.cp.len(),
                reg_ckpts: cand.costing.reg_ckpts,
            });
        }
        // Execution not attributed to any candidate (unreachable blocks,
        // rounding) plus unselected regions is unprotected.
        breakdown.unprotected =
            (1.0 - breakdown.idempotent - breakdown.checkpointed).max(0.0);
        let _ = covered_exec;

        let coverage = CoverageModel::from_regions(
            model_regions,
            breakdown.unprotected,
            self.config.dmax,
        );
        let full_system = FullSystemCoverage::compose(self.config.masking_rate, &coverage);

        EncoreOutcome {
            candidates,
            instrumented,
            derived_gamma,
            est_overhead,
            breakdown,
            coverage,
            full_system,
            verdicts,
            reports,
            merges,
        }
    }

    /// Greedy budget-driven selection; returns per-candidate flags, the
    /// implied γ, and the estimated total overhead of the selection.
    fn select(&self, candidates: &[CandidateRegion]) -> (Vec<bool>, f64, f64) {
        let mut flags = vec![false; candidates.len()];
        // Rank protectable candidates by benefit per unit overhead.
        let mut ranked: Vec<usize> = (0..candidates.len())
            .filter(|&i| {
                let c = &candidates[i];
                c.analysis.verdict.is_protectable()
                    && c.gamma_ratio() > self.config.gamma
            })
            .collect();
        let benefit = |c: &CandidateRegion| -> f64 {
            c.costing.exec_fraction
                * crate::coverage::alpha(
                    c.costing.avg_activation_len.round() as u64,
                    self.config.dmax,
                )
        };
        let score = |c: &CandidateRegion| -> f64 {
            let b = benefit(c);
            let o = c.costing.est_overhead;
            if o <= 0.0 {
                f64::INFINITY
            } else {
                b / o
            }
        };
        ranked.sort_by(|&a, &b| {
            score(&candidates[b])
                .partial_cmp(&score(&candidates[a]))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(candidates[a].spec.header.cmp(&candidates[b].spec.header))
        });

        let budget = self.config.overhead_budget.unwrap_or(f64::INFINITY);
        let mut spent = 0.0;
        let mut derived_gamma = self.config.gamma;
        for &i in &ranked {
            let c = &candidates[i];
            if spent + c.costing.est_overhead <= budget {
                flags[i] = true;
                spent += c.costing.est_overhead;
            } else if derived_gamma == self.config.gamma {
                // First rejection fixes the empirically derived γ.
                derived_gamma = c.gamma_ratio();
            }
        }
        (flags, derived_gamma, spent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{AddrExpr, BinOp, ModuleBuilder, Operand};

    /// A module with one hot idempotent streaming loop and one hot
    /// WAR-carrying accumulation loop.
    fn sample_module() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("m");
        let src = mb.global("src", 64);
        let dst = mb.global("dst", 64);
        let acc = mb.global("acc", 1);
        let fid = mb.function("kernel", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.load(AddrExpr::indexed(encore_ir::MemBase::Global(src), i, 1, 0));
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(dst), i, 1, 0), v.into());
            });
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let a = f.load(AddrExpr::global(acc, 0));
                let a2 = f.bin(BinOp::Add, a.into(), i.into());
                f.store(AddrExpr::global(acc, 0), a2.into());
            });
            f.ret(None);
        });
        (mb.finish(), fid)
    }

    fn flat_profile(m: &Module, fid: FuncId, count: u64) -> Profile {
        let mut p = Profile::empty_for(m);
        let mut dyn_insts = 0u64;
        for (b, blk) in m.func(fid).iter_blocks() {
            p.func_mut(fid).block_counts.insert(b, count);
            dyn_insts += count * (blk.insts.len() + 1) as u64;
            for s in blk.successors() {
                p.func_mut(fid).edge_counts.insert((b, s), count);
            }
        }
        p.total_dyn_insts = dyn_insts;
        p
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let (m, fid) = sample_module();
        let profile = flat_profile(&m, fid, 100);
        let outcome = Encore::new(EncoreConfig::default()).run(&m, &profile);
        assert!(!outcome.candidates.is_empty());
        encore_ir::verify_module(&outcome.instrumented.module)
            .expect("instrumented module verifies");
        // Both loops should be protectable; at least one idempotent
        // region and one checkpointed region in the breakdown.
        assert!(outcome.breakdown.protected_fraction() > 0.0);
        assert!(outcome.full_system.total() > outcome.full_system.masked);
    }

    #[test]
    fn budget_zero_selects_nothing() {
        let (m, fid) = sample_module();
        let profile = flat_profile(&m, fid, 100);
        let config = EncoreConfig::default().with_overhead_budget(0.0);
        let outcome = Encore::new(config).run(&m, &profile);
        // Regions with zero estimated overhead (never-executed) may still
        // be selected; everything with real overhead must not be.
        for (cand, sel) in &outcome.candidates {
            if *sel {
                assert_eq!(cand.costing.est_overhead, 0.0);
            }
        }
        assert_eq!(outcome.est_overhead, 0.0);
    }

    #[test]
    fn est_overhead_within_budget() {
        let (m, fid) = sample_module();
        let profile = flat_profile(&m, fid, 100);
        let config = EncoreConfig::default().with_overhead_budget(0.2);
        let outcome = Encore::new(config).run(&m, &profile);
        assert!(outcome.est_overhead <= 0.2 + 1e-9);
    }

    #[test]
    fn breakdown_fractions_form_a_partition() {
        let (m, fid) = sample_module();
        let profile = flat_profile(&m, fid, 100);
        let outcome = Encore::new(EncoreConfig::default()).run(&m, &profile);
        let b = outcome.breakdown;
        let sum = b.idempotent + b.checkpointed + b.unprotected;
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn verdict_counts_cover_all_regions() {
        let (m, fid) = sample_module();
        let profile = flat_profile(&m, fid, 100);
        let outcome = Encore::new(EncoreConfig::default()).run(&m, &profile);
        assert_eq!(outcome.verdicts.total(), outcome.candidates.len());
        assert_eq!(outcome.reports.len(), outcome.candidates.len());
    }

    #[test]
    fn optimistic_alias_never_increases_checkpoints() {
        let (m, fid) = sample_module();
        let profile = flat_profile(&m, fid, 100);
        let static_out =
            Encore::new(EncoreConfig::default()).run(&m, &profile);
        let opt_out = Encore::new(
            EncoreConfig::default().with_alias(encore_analysis::AliasMode::Optimistic),
        )
        .run(&m, &profile);
        let static_cp: usize =
            static_out.candidates.iter().map(|(c, _)| c.analysis.cp.len()).sum();
        let opt_cp: usize =
            opt_out.candidates.iter().map(|(c, _)| c.analysis.cp.len()).sum();
        assert!(opt_cp <= static_cp, "optimistic {opt_cp} > static {static_cp}");
    }
}
