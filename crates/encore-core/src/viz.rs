//! Region-overlay visualization: render a function's CFG with its Encore
//! region partition as Graphviz clusters, colored by verdict — the
//! reproduction's version of the paper's Figure 2 diagrams.

use crate::idempotence::Verdict;
use crate::pipeline::EncoreOutcome;
use encore_ir::dot::{function_to_dot, DotOptions};
use encore_ir::{FuncId, Module};

/// Fill color for a region verdict (+ protection status).
fn verdict_color(verdict: Verdict, protected: bool) -> &'static str {
    match (verdict, protected) {
        (Verdict::Idempotent, true) => "palegreen",
        (Verdict::NonIdempotent { .. }, true) => "khaki",
        (Verdict::Unknown, _) => "lightgray",
        (_, false) => "lightcoral",
    }
}

/// Renders function `func` of the analyzed module with its final region
/// partition: one cluster per region, labeled with the verdict and
/// protection decision, members colored accordingly.
///
/// Write the output to a `.dot` file and render with
/// `dot -Tsvg regions.dot -o regions.svg`.
pub fn dot_regions(module: &Module, outcome: &EncoreOutcome, func: FuncId) -> String {
    let mut options = DotOptions { show_insts: false, ..Default::default() };
    for (cand, selected) in &outcome.candidates {
        if cand.spec.func != func {
            continue;
        }
        let label = format!(
            "header {} — {:?}{}",
            cand.spec.header,
            cand.analysis.verdict,
            if *selected { " [protected]" } else { " [unprotected]" }
        );
        let members: Vec<_> = cand.spec.blocks.iter().copied().collect();
        let color = verdict_color(cand.analysis.verdict, *selected);
        for &b in &members {
            options.fills.push((b, color.to_string()));
        }
        options.clusters.push((label, members));
    }
    function_to_dot(module.func(func), &options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Encore, EncoreConfig};
    use encore_analysis::Profile;
    use encore_ir::{AddrExpr, BinOp, ModuleBuilder, Operand};

    #[test]
    fn overlay_mentions_every_region() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        let fid = mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.load(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0));
                let v2 = f.bin(BinOp::Add, v.into(), Operand::ImmI(1));
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0), v2.into());
            });
            f.ret(None);
        });
        let m = mb.finish();
        let mut profile = Profile::empty_for(&m);
        for (b, blk) in m.func(fid).iter_blocks() {
            profile.func_mut(fid).block_counts.insert(b, 5);
            profile.total_dyn_insts += 5 * (blk.insts.len() + 1) as u64;
        }
        let outcome = Encore::new(EncoreConfig::default()).run(&m, &profile);
        let dot = dot_regions(&m, &outcome, fid);
        let clusters = dot.matches("subgraph cluster_").count();
        assert_eq!(clusters, outcome.candidates.len());
        assert!(dot.contains("header"));
        // Every block is filled with some verdict color.
        for b in m.func(fid).block_ids() {
            assert!(dot.contains(&format!("{b} [label=")), "{dot}");
        }
    }

    #[test]
    fn colors_cover_all_verdict_cases() {
        assert_eq!(verdict_color(Verdict::Idempotent, true), "palegreen");
        assert_eq!(
            verdict_color(Verdict::NonIdempotent { checkpointable: true }, true),
            "khaki"
        );
        assert_eq!(verdict_color(Verdict::Unknown, false), "lightgray");
        assert_eq!(verdict_color(Verdict::Idempotent, false), "lightcoral");
    }
}
