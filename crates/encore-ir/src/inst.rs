//! Instructions, operands and terminators.
//!
//! A basic block holds a list of straight-line [`Inst`]s followed by exactly
//! one [`Terminator`]. Calls are ordinary instructions (not terminators),
//! which keeps the CFG intra-procedural — the shape Encore's analyses
//! expect.
//!
//! Besides the usual mid-level operations, the instruction set contains the
//! four *instrumentation* opcodes Encore inserts (`SetRecovery`,
//! `CheckpointMem`, `CheckpointReg`, `Restore`). In the paper these lower to
//! plain stores/loads against a reserved stack area; here they are dedicated
//! opcodes with an explicit dynamic-instruction cost, so that the simulator
//! both *charges* for them (runtime-overhead experiments) and can implement
//! rollback exactly.

use crate::addr::AddrExpr;
use crate::ids::{BlockId, FuncId, HeapId, Reg, RegionId};
use std::fmt;

/// A value operand: a register read or an immediate.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Operand {
    /// Read a virtual register.
    Reg(Reg),
    /// Integer immediate.
    ImmI(i64),
    /// Floating-point immediate.
    ImmF(f64),
}

impl Operand {
    /// Returns the register read by this operand, if any.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::ImmI(v)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::ImmF(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ImmI(v) => write!(f, "{v}"),
            Operand::ImmF(v) => write!(f, "{v:?}f"),
        }
    }
}

/// Binary operations. Integer comparisons yield `0`/`1` integers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division (defined as 0 on division by zero).
    Div,
    /// Integer remainder (defined as 0 on division by zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (shift amount masked to 63).
    Shl,
    /// Arithmetic shift right (shift amount masked to 63).
    Shr,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
    /// Integer equality.
    Eq,
    /// Integer inequality.
    Ne,
    /// Integer signed less-than.
    Lt,
    /// Integer signed less-or-equal.
    Le,
    /// Float less-than.
    FLt,
    /// Float less-or-equal.
    FLe,
    /// Integer minimum.
    Min,
    /// Integer maximum.
    Max,
}

impl BinOp {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::FLt => "flt",
            BinOp::FLe => "fle",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    /// All binary operations, for exhaustive testing.
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::FAdd,
            BinOp::FSub,
            BinOp::FMul,
            BinOp::FDiv,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::FLt,
            BinOp::FLe,
            BinOp::Min,
            BinOp::Max,
        ]
    }
}

/// Unary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Float negation.
    FNeg,
    /// Convert integer to float.
    IToF,
    /// Convert float to integer (truncating; saturates at i64 bounds).
    FToI,
    /// Float square root (of the absolute value).
    FSqrt,
    /// Integer absolute value.
    Abs,
}

impl UnOp {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::FNeg => "fneg",
            UnOp::IToF => "itof",
            UnOp::FToI => "ftoi",
            UnOp::FSqrt => "fsqrt",
            UnOp::Abs => "abs",
        }
    }

    /// All unary operations, for exhaustive testing.
    pub fn all() -> &'static [UnOp] {
        &[
            UnOp::Neg,
            UnOp::Not,
            UnOp::FNeg,
            UnOp::IToF,
            UnOp::FToI,
            UnOp::FSqrt,
            UnOp::Abs,
        ]
    }
}

/// How the idempotence analysis must treat an external call.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExtEffect {
    /// No memory access at all (e.g. math intrinsics).
    Pure,
    /// May read arbitrary memory, never writes.
    ReadOnly,
    /// May read and write arbitrary memory: regions containing such a call
    /// become `Unknown` — the paper's un-analyzable library/system calls.
    Opaque,
}

impl fmt::Display for ExtEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExtEffect::Pure => "pure",
            ExtEffect::ReadOnly => "readonly",
            ExtEffect::Opaque => "opaque",
        };
        f.write_str(s)
    }
}

/// A straight-line (non-terminator) instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// `dst = op(lhs, rhs)`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = op(src)`.
    Un {
        /// Operation.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = mem[addr]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address read.
        addr: AddrExpr,
    },
    /// `mem[addr] = src`.
    Store {
        /// Address written.
        addr: AddrExpr,
        /// Value stored.
        src: Operand,
    },
    /// `dst = &addr` — materialize a pointer.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address whose pointer is taken.
        addr: AddrExpr,
    },
    /// `dst = allocate(size)` — a fresh object tagged with allocation
    /// site `site`.
    Alloc {
        /// Destination register (receives the pointer).
        dst: Reg,
        /// Static allocation site id (alias-analysis abstraction).
        site: HeapId,
        /// Number of cells to allocate.
        size: Operand,
    },
    /// Call an internal function.
    Call {
        /// Callee.
        callee: FuncId,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// Call an external (host-provided) function.
    CallExt {
        /// External symbol name, resolved by the simulator.
        name: Box<str>,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
        /// Argument operands.
        args: Vec<Operand>,
        /// Memory effect the analysis must assume.
        effect: ExtEffect,
    },
    /// Encore instrumentation: announce that control entered region
    /// `region`, making its recovery block the rollback destination and
    /// resetting the region's checkpoint log. Lowered to one store in the
    /// paper; costs one dynamic instruction.
    SetRecovery {
        /// The region whose header this instruction sits in.
        region: RegionId,
    },
    /// Encore instrumentation: log the current value at `addr` (value and
    /// address, 16 bytes) before an idempotence-violating store. Costs two
    /// dynamic instructions.
    CheckpointMem {
        /// Address whose pre-store value is saved.
        addr: AddrExpr,
    },
    /// Encore instrumentation: log the current value of a live-in register
    /// that the region overwrites (8 bytes). Costs one dynamic instruction.
    CheckpointReg {
        /// Register saved.
        reg: Reg,
    },
    /// Encore instrumentation: undo the region's checkpoint log (restores
    /// memory cells and registers in reverse order). Only ever executed on
    /// the recovery path.
    Restore {
        /// The region being rolled back.
        region: RegionId,
    },
}

impl Inst {
    /// Register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Lea { dst, .. }
            | Inst::Alloc { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } | Inst::CallExt { dst, .. } => *dst,
            Inst::Store { .. }
            | Inst::SetRecovery { .. }
            | Inst::CheckpointMem { .. }
            | Inst::CheckpointReg { .. }
            | Inst::Restore { .. } => None,
        }
    }

    /// Registers read by this instruction, in evaluation order.
    pub fn uses(&self) -> Vec<Reg> {
        fn op(out: &mut Vec<Reg>, o: &Operand) {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        }
        let mut out = Vec::new();
        match self {
            Inst::Bin { lhs, rhs, .. } => {
                op(&mut out, lhs);
                op(&mut out, rhs);
            }
            Inst::Un { src, .. } | Inst::Mov { dst: _, src } => op(&mut out, src),
            Inst::Load { addr, .. } | Inst::Lea { addr, .. } => {
                out.extend(addr.used_regs());
            }
            Inst::Store { addr, src } => {
                out.extend(addr.used_regs());
                op(&mut out, src);
            }
            Inst::Alloc { size, .. } => op(&mut out, size),
            Inst::Call { args, .. } | Inst::CallExt { args, .. } => {
                args.iter().for_each(|a| op(&mut out, a));
            }
            Inst::SetRecovery { .. } | Inst::Restore { .. } => {}
            Inst::CheckpointMem { addr } => out.extend(addr.used_regs()),
            Inst::CheckpointReg { reg } => out.push(*reg),
        }
        out
    }

    /// The address this instruction loads from, if it is a memory read.
    pub fn load_addr(&self) -> Option<&AddrExpr> {
        match self {
            Inst::Load { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// The address this instruction stores to, if it is a memory write.
    /// `CheckpointMem` reads (not writes) program-visible memory, so it is
    /// *not* a store for analysis purposes.
    pub fn store_addr(&self) -> Option<&AddrExpr> {
        match self {
            Inst::Store { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// Dynamic-instruction cost charged by the simulator, matching how the
    /// paper's instrumentation lowers to real instructions: a memory
    /// checkpoint stores value + address (2), a register checkpoint stores
    /// one word (1), the recovery-pointer update is one store (1).
    pub fn cost(&self) -> u64 {
        match self {
            Inst::CheckpointMem { .. } => 2,
            Inst::Restore { .. } => 0,
            _ => 1,
        }
    }

    /// Returns `true` for Encore-inserted instrumentation opcodes.
    pub fn is_instrumentation(&self) -> bool {
        matches!(
            self,
            Inst::SetRecovery { .. }
                | Inst::CheckpointMem { .. }
                | Inst::CheckpointReg { .. }
                | Inst::Restore { .. }
        )
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// Condition operand (integer; nonzero takes `then_bb`).
        cond: Operand,
        /// Successor on true.
        then_bb: BlockId,
        /// Successor on false.
        else_bb: BlockId,
    },
    /// Return from the function.
    Ret(Option<Operand>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Registers read by this terminator.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Terminator::Branch { cond, .. } => cond.as_reg().into_iter().collect(),
            Terminator::Ret(Some(op)) => op.as_reg().into_iter().collect(),
            _ => vec![],
        }
    }

    /// Rewrites successor block ids through `f` (used by instrumentation
    /// when splitting edges / inserting headers).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(t) => *t = f(*t),
            Terminator::Branch { then_bb, else_bb, .. } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::Ret(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalId;

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg::new(0),
            lhs: Operand::Reg(Reg::new(1)),
            rhs: Operand::ImmI(3),
        };
        assert_eq!(i.def(), Some(Reg::new(0)));
        assert_eq!(i.uses(), vec![Reg::new(1)]);
    }

    #[test]
    fn store_has_no_def_and_reports_addr() {
        let a = AddrExpr::global(GlobalId::new(0), 1);
        let s = Inst::Store { addr: a, src: Operand::Reg(Reg::new(2)) };
        assert_eq!(s.def(), None);
        assert_eq!(s.store_addr(), Some(&a));
        assert_eq!(s.load_addr(), None);
        assert_eq!(s.uses(), vec![Reg::new(2)]);
    }

    #[test]
    fn checkpoint_mem_is_not_a_store() {
        let a = AddrExpr::global(GlobalId::new(0), 1);
        let c = Inst::CheckpointMem { addr: a };
        assert_eq!(c.store_addr(), None);
        assert!(c.is_instrumentation());
        assert_eq!(c.cost(), 2);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::Reg(Reg::new(0)),
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(2),
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
    }

    #[test]
    fn map_successors_rewrites() {
        let mut t = Terminator::Jump(BlockId::new(1));
        t.map_successors(|_| BlockId::new(9));
        assert_eq!(t.successors(), vec![BlockId::new(9)]);
    }

    #[test]
    fn indexed_load_uses_index_reg() {
        let a = AddrExpr::indexed(MemBase::Global(GlobalId::new(0)), Reg::new(5), 1, 0);
        let l = Inst::Load { dst: Reg::new(6), addr: a };
        assert_eq!(l.uses(), vec![Reg::new(5)]);
        assert_eq!(l.def(), Some(Reg::new(6)));
    }

    use crate::addr::MemBase;
}
