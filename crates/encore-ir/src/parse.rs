//! Parsing of the textual IR format produced by the `Display` impls.
//!
//! [`parse_module`] is the inverse of `Module::to_string()`; a property
//! test asserts the round trip. The parser is a hand-written
//! tokenizer + recursive descent, with positions reported in
//! [`ParseError`]s.

use crate::addr::{AddrExpr, MemBase, Offset};
use crate::function::Function;
use crate::ids::{BlockId, FuncId, GlobalId, HeapId, Reg, RegionId, SlotId};
use crate::inst::{BinOp, ExtEffect, Inst, Operand, Terminator, UnOp};
use crate::module::Module;
use std::error::Error;
use std::fmt;

/// A parse failure with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Punct(char),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0, line: 1 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, message: message.into() }
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek_char() {
            if c.is_whitespace() {
                self.bump();
            } else if c == '#' {
                while let Some(c) = self.bump() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn next_tok(&mut self) -> Result<Option<Tok>, ParseError> {
        self.skip_ws();
        let Some(c) = self.peek_char() else { return Ok(None) };
        if c == '"' {
            self.bump();
            let mut s = String::new();
            loop {
                match self.bump() {
                    Some('"') => break,
                    Some(c) => s.push(c),
                    None => return Err(self.error("unterminated string literal")),
                }
            }
            return Ok(Some(Tok::Str(s)));
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = self.pos;
            while let Some(c) = self.peek_char() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(Some(Tok::Ident(self.src[start..self.pos].to_string())));
        }
        if c.is_ascii_digit() || c == '-' {
            let start = self.pos;
            self.bump();
            let mut is_float = false;
            while let Some(c) = self.peek_char() {
                if c.is_ascii_digit() {
                    self.bump();
                } else if c == '.' && !is_float {
                    is_float = true;
                    self.bump();
                } else if (c == 'e' || c == 'E') && is_float {
                    self.bump();
                    if matches!(self.peek_char(), Some('+') | Some('-')) {
                        self.bump();
                    }
                } else {
                    break;
                }
            }
            let text = &self.src[start..self.pos];
            // A trailing `f` marks a float immediate even without a dot.
            if self.peek_char() == Some('f') {
                self.bump();
                let v: f64 = text
                    .parse()
                    .map_err(|_| self.error(format!("bad float literal `{text}`")))?;
                return Ok(Some(Tok::Float(v)));
            }
            if is_float {
                return Err(self.error(format!("float literal `{text}` missing `f` suffix")));
            }
            let v: i64 = text
                .parse()
                .map_err(|_| self.error(format!("bad integer literal `{text}`")))?;
            return Ok(Some(Tok::Int(v)));
        }
        self.bump();
        Ok(Some(Tok::Punct(c)))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<Tok>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let lookahead = lexer.next_tok()?;
        Ok(Self { lexer, lookahead })
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        self.lexer.error(message)
    }

    fn peek(&self) -> Option<&Tok> {
        self.lookahead.as_ref()
    }

    fn advance(&mut self) -> Result<Option<Tok>, ParseError> {
        let next = self.lexer.next_tok()?;
        Ok(std::mem::replace(&mut self.lookahead, next))
    }

    fn expect_punct(&mut self, p: char) -> Result<(), ParseError> {
        match self.advance()? {
            Some(Tok::Punct(c)) if c == p => Ok(()),
            other => Err(self.error(format!("expected `{p}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance()? {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found `{id}`")))
        }
    }

    fn expect_str(&mut self) -> Result<String, ParseError> {
        match self.advance()? {
            Some(Tok::Str(s)) => Ok(s),
            other => Err(self.error(format!("expected string literal, found {other:?}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.advance()? {
            Some(Tok::Int(v)) => Ok(v),
            other => Err(self.error(format!("expected integer, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, p: char) -> Result<bool, ParseError> {
        if matches!(self.peek(), Some(Tok::Punct(c)) if *c == p) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// `key=<int>`
    fn expect_kv_int(&mut self, key: &str) -> Result<i64, ParseError> {
        self.expect_keyword(key)?;
        self.expect_punct('=')?;
        self.expect_int()
    }

    /// `key=[int,int,...]`
    fn expect_kv_int_list(&mut self, key: &str) -> Result<Vec<i64>, ParseError> {
        self.expect_keyword(key)?;
        self.expect_punct('=')?;
        self.expect_punct('[')?;
        let mut out = Vec::new();
        if !self.eat_punct(']')? {
            loop {
                out.push(self.expect_int()?);
                if self.eat_punct(']')? {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        Ok(out)
    }

    fn parse_id_with_prefix(&mut self, id: &str, prefix: &str) -> Result<u32, ParseError> {
        id.strip_prefix(prefix)
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| self.error(format!("expected `{prefix}N` id, found `{id}`")))
    }

    fn parse_reg_ident(&mut self, id: &str) -> Result<Reg, ParseError> {
        Ok(Reg::new(self.parse_id_with_prefix(id, "r")?))
    }

    fn expect_reg(&mut self) -> Result<Reg, ParseError> {
        let id = self.expect_ident()?;
        self.parse_reg_ident(&id)
    }

    fn expect_block_id(&mut self) -> Result<BlockId, ParseError> {
        let id = self.expect_ident()?;
        Ok(BlockId::new(self.parse_id_with_prefix(&id, "bb")?))
    }

    fn expect_region_id(&mut self) -> Result<RegionId, ParseError> {
        let id = self.expect_ident()?;
        Ok(RegionId::new(self.parse_id_with_prefix(&id, "region")?))
    }

    fn parse_operand(&mut self) -> Result<Operand, ParseError> {
        match self.advance()? {
            Some(Tok::Int(v)) => Ok(Operand::ImmI(v)),
            Some(Tok::Float(v)) => Ok(Operand::ImmF(v)),
            Some(Tok::Ident(id)) => Ok(Operand::Reg(self.parse_reg_ident(&id)?)),
            other => Err(self.error(format!("expected operand, found {other:?}"))),
        }
    }

    /// Parses `base[offset]` where base is `gN`/`sN`/`hN`/`[rN]` and offset
    /// is `C` or `rN*S+D`.
    fn parse_addr(&mut self) -> Result<AddrExpr, ParseError> {
        let base = if self.eat_punct('[')? {
            let r = self.expect_reg()?;
            self.expect_punct(']')?;
            MemBase::Reg(r)
        } else {
            let id = self.expect_ident()?;
            if let Some(n) = id.strip_prefix('g').and_then(|n| n.parse().ok()) {
                MemBase::Global(GlobalId::new(n))
            } else if let Some(n) = id.strip_prefix('s').and_then(|n| n.parse().ok()) {
                MemBase::Slot(SlotId::new(n))
            } else if let Some(n) = id.strip_prefix('h').and_then(|n| n.parse().ok()) {
                MemBase::Heap(HeapId::new(n))
            } else {
                return Err(self.error(format!("expected memory base, found `{id}`")));
            }
        };
        self.expect_punct('[')?;
        let offset = match self.peek() {
            Some(Tok::Int(_)) => Offset::Const(self.expect_int()?),
            _ => {
                let index = self.expect_reg()?;
                self.expect_punct('*')?;
                let scale = self.expect_int()?;
                // `+disp`: the lexer folds the sign into the integer
                // when disp is negative, so the `+` is optional — skip it
                // if present, then read the (possibly negative) integer.
                self.eat_punct('+')?;
                let disp = self.expect_int()?;
                Offset::Scaled { index, scale, disp }
            }
        };
        self.expect_punct(']')?;
        Ok(AddrExpr::new(base, offset))
    }

    fn parse_call_args(&mut self) -> Result<Vec<Operand>, ParseError> {
        self.expect_punct('(')?;
        let mut args = Vec::new();
        if !self.eat_punct(')')? {
            loop {
                args.push(self.parse_operand()?);
                if self.eat_punct(')')? {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        Ok(args)
    }

    fn lookup_binop(name: &str) -> Option<BinOp> {
        BinOp::all().iter().copied().find(|op| op.mnemonic() == name)
    }

    fn lookup_unop(name: &str) -> Option<UnOp> {
        UnOp::all().iter().copied().find(|op| op.mnemonic() == name)
    }

    /// Parses one instruction or terminator line.
    fn parse_line(&mut self) -> Result<Line, ParseError> {
        // Either `rN = <op> ...`, or a no-result opcode.
        let first = self.expect_ident()?;
        if first.starts_with('r') && matches!(self.peek(), Some(Tok::Punct('='))) {
            let dst = self.parse_reg_ident(&first)?;
            self.expect_punct('=')?;
            let op = self.expect_ident()?;
            let inst = match op.as_str() {
                "mov" => Inst::Mov { dst, src: self.parse_operand()? },
                "load" => Inst::Load { dst, addr: self.parse_addr()? },
                "lea" => Inst::Lea { dst, addr: self.parse_addr()? },
                "alloc" => {
                    let site = self.expect_ident()?;
                    let site = HeapId::new(self.parse_id_with_prefix(&site, "h")?);
                    self.expect_punct(',')?;
                    Inst::Alloc { dst, site, size: self.parse_operand()? }
                }
                "call" => {
                    let callee = self.expect_ident()?;
                    let callee = FuncId::new(self.parse_id_with_prefix(&callee, "fn")?);
                    Inst::Call { callee, dst: Some(dst), args: self.parse_call_args()? }
                }
                "callext" => {
                    let name = self.expect_str()?;
                    let effect = self.parse_effect()?;
                    Inst::CallExt {
                        name: name.into(),
                        dst: Some(dst),
                        args: self.parse_call_args()?,
                        effect,
                    }
                }
                other => {
                    if let Some(b) = Self::lookup_binop(other) {
                        let lhs = self.parse_operand()?;
                        self.expect_punct(',')?;
                        let rhs = self.parse_operand()?;
                        Inst::Bin { op: b, dst, lhs, rhs }
                    } else if let Some(u) = Self::lookup_unop(other) {
                        Inst::Un { op: u, dst, src: self.parse_operand()? }
                    } else {
                        return Err(self.error(format!("unknown opcode `{other}`")));
                    }
                }
            };
            return Ok(Line::Inst(inst));
        }
        match first.as_str() {
            "store" => {
                let addr = self.parse_addr()?;
                self.expect_punct(',')?;
                Ok(Line::Inst(Inst::Store { addr, src: self.parse_operand()? }))
            }
            "call" => {
                let callee = self.expect_ident()?;
                let callee = FuncId::new(self.parse_id_with_prefix(&callee, "fn")?);
                Ok(Line::Inst(Inst::Call { callee, dst: None, args: self.parse_call_args()? }))
            }
            "callext" => {
                let name = self.expect_str()?;
                let effect = self.parse_effect()?;
                Ok(Line::Inst(Inst::CallExt {
                    name: name.into(),
                    dst: None,
                    args: self.parse_call_args()?,
                    effect,
                }))
            }
            "setrecovery" => Ok(Line::Inst(Inst::SetRecovery { region: self.expect_region_id()? })),
            "ckptmem" => Ok(Line::Inst(Inst::CheckpointMem { addr: self.parse_addr()? })),
            "ckptreg" => Ok(Line::Inst(Inst::CheckpointReg { reg: self.expect_reg()? })),
            "restore" => Ok(Line::Inst(Inst::Restore { region: self.expect_region_id()? })),
            "jmp" => Ok(Line::Term(Terminator::Jump(self.expect_block_id()?))),
            "br" => {
                let cond = self.parse_operand()?;
                self.expect_punct(',')?;
                let then_bb = self.expect_block_id()?;
                self.expect_punct(',')?;
                let else_bb = self.expect_block_id()?;
                Ok(Line::Term(Terminator::Branch { cond, then_bb, else_bb }))
            }
            "ret" => {
                // `ret` with optional operand: an operand follows if the
                // next token is an int/float/register ident.
                let has_val = match self.peek() {
                    Some(Tok::Int(_)) | Some(Tok::Float(_)) => true,
                    Some(Tok::Ident(s)) => {
                        s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit())
                    }
                    _ => false,
                };
                let val = if has_val { Some(self.parse_operand()?) } else { None };
                Ok(Line::Term(Terminator::Ret(val)))
            }
            other => Err(self.error(format!("unknown statement `{other}`"))),
        }
    }

    fn parse_effect(&mut self) -> Result<ExtEffect, ParseError> {
        let e = self.expect_ident()?;
        match e.as_str() {
            "pure" => Ok(ExtEffect::Pure),
            "readonly" => Ok(ExtEffect::ReadOnly),
            "opaque" => Ok(ExtEffect::Opaque),
            other => Err(self.error(format!("unknown effect `{other}`"))),
        }
    }

    fn parse_function(&mut self) -> Result<Function, ParseError> {
        let name = self.expect_str()?;
        let params = self.expect_kv_int("params")? as u32;
        let regs = self.expect_kv_int("regs")? as u32;
        let slots = self.expect_kv_int_list("slots")?;
        self.expect_punct('{')?;
        let mut func = Function::new(name, params);
        func.reg_count = regs;
        for cells in slots {
            func.add_slot(cells as u32);
        }
        func.blocks.clear();
        // blocks: `bbN:` then lines until next `bbN:` or `}`
        loop {
            if self.eat_punct('}')? {
                break;
            }
            let label = self.expect_ident()?;
            let n = self.parse_id_with_prefix(&label, "bb")?;
            if n as usize != func.blocks.len() {
                return Err(self.error(format!(
                    "block label bb{n} out of order (expected bb{})",
                    func.blocks.len()
                )));
            }
            self.expect_punct(':')?;
            let bid = func.add_block();
            loop {
                // End of block: next token is `}` or a `bbN` label followed
                // by `:` — detect via terminator presence instead: a block
                // ends right after its terminator line.
                if func.block(bid).term.is_some() {
                    break;
                }
                match self.parse_line()? {
                    Line::Inst(i) => func.block_mut(bid).insts.push(i),
                    Line::Term(t) => func.block_mut(bid).term = Some(t),
                }
            }
        }
        Ok(func)
    }
}

enum Line {
    Inst(Inst),
    Term(Terminator),
}

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input.
///
/// # Examples
///
/// ```
/// let text = r#"
/// module "m" {
///   heap_sites 0
///   global "g" cells=2 init=[5]
///   func "f" params=1 regs=2 slots=[] {
///   bb0:
///     r1 = load g0[0]
///     ret r1
///   }
/// }
/// "#;
/// let m = encore_ir::parse_module(text)?;
/// assert_eq!(m.funcs.len(), 1);
/// # Ok::<(), encore_ir::ParseError>(())
/// ```
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut p = Parser::new(src)?;
    p.expect_keyword("module")?;
    let name = p.expect_str()?;
    p.expect_punct('{')?;
    let mut module = Module::new(name);
    p.expect_keyword("heap_sites")?;
    module.heap_sites = p.expect_int()? as u32;
    loop {
        match p.peek() {
            Some(Tok::Punct('}')) => {
                p.advance()?;
                break;
            }
            Some(Tok::Ident(kw)) if kw == "global" => {
                p.advance()?;
                let name = p.expect_str()?;
                let cells = p.expect_kv_int("cells")? as u32;
                let init = p.expect_kv_int_list("init")?;
                module.add_global_init(name, cells, init);
            }
            Some(Tok::Ident(kw)) if kw == "func" => {
                p.advance()?;
                let f = p.parse_function()?;
                module.add_func(f);
            }
            other => return Err(p.error(format!("expected `global`, `func` or `}}`, found {other:?}"))),
        }
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::verify::verify_module;

    fn roundtrip(m: &Module) {
        let text = m.to_string();
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(&parsed, m, "round-trip mismatch for:\n{text}");
    }

    #[test]
    fn roundtrip_simple() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_init("tbl", 8, vec![3, 1, 4]);
        mb.function("f", 2, |f| {
            let a = f.param(0);
            let b = f.param(1);
            let s = f.bin(BinOp::Add, a.into(), b.into());
            let v = f.load(AddrExpr::indexed(MemBase::Global(g), s, 1, 0));
            f.store(AddrExpr::global(g, 0), v.into());
            f.ret(Some(v.into()));
        });
        roundtrip(&mb.finish());
    }

    #[test]
    fn roundtrip_control_flow() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let acc = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), p.into(), |f, i| {
                f.if_else(
                    i.into(),
                    |f| f.bin_to(acc, BinOp::Add, acc.into(), i.into()),
                    |f| f.bin_to(acc, BinOp::Sub, acc.into(), Operand::ImmI(1)),
                );
            });
            f.ret(Some(acc.into()));
        });
        roundtrip(&mb.finish());
    }

    #[test]
    fn roundtrip_calls_and_instrumentation() {
        let mut mb = ModuleBuilder::new("m");
        let leaf = mb.function("leaf", 1, |f| {
            let p = f.param(0);
            f.ret(Some(p.into()));
        });
        mb.function("main", 0, |f| {
            f.emit(Inst::SetRecovery { region: RegionId::new(0) });
            let s = f.slot(4);
            f.emit(Inst::CheckpointMem { addr: AddrExpr::slot(s, 1) });
            let r = f.call(leaf, &[Operand::ImmI(5)]);
            f.emit(Inst::CheckpointReg { reg: r });
            let x = f.call_ext("sin", &[Operand::ImmF(1.5)], ExtEffect::Pure);
            f.emit(Inst::Restore { region: RegionId::new(0) });
            let h = f.alloc(Operand::ImmI(16));
            f.store(AddrExpr::reg(h, 0), x.into());
            f.ret(None);
        });
        roundtrip(&mb.finish());
    }

    #[test]
    fn roundtrip_float_immediates() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let a = f.mov(Operand::ImmF(3.25));
            let b = f.bin(BinOp::FMul, a.into(), Operand::ImmF(-0.5));
            f.ret(Some(b.into()));
        });
        roundtrip(&mb.finish());
    }

    #[test]
    fn parse_error_has_line() {
        let text = "module \"m\" {\n  heap_sites 0\n  bogus\n}";
        let err = parse_module(text).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn parsed_module_verifies() {
        let text = r#"
module "m" {
  heap_sites 1
  global "g" cells=4 init=[]
  func "f" params=1 regs=3 slots=[2] {
  bb0:
    r1 = alloc h0, 4
    store [r1][0], r0
    r2 = load g0[r0*1+0]
    br r2, bb1, bb2
  bb1:
    ret r2
  bb2:
    ret
  }
}
"#;
        let m = parse_module(text).expect("parses");
        verify_module(&m).expect("verifies");
        roundtrip(&m);
    }

    use crate::addr::MemBase;
}
