//! Structural verification of modules.
//!
//! The verifier catches malformed IR early: unterminated blocks, dangling
//! block/register/slot/global/function references, arity mismatches on
//! calls. All analyses and the simulator assume a verified module.

use crate::addr::{AddrExpr, MemBase, Offset};
use crate::function::Function;
use crate::ids::{BlockId, FuncId, Reg};
use crate::inst::{Inst, Operand, Terminator};
use crate::module::Module;
use std::error::Error;
use std::fmt;

/// An IR structural error found by [`verify_module`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Function where the error occurred (name for readability).
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in function `{}`: {}", self.func, self.message)
    }
}

impl Error for VerifyError {}

struct Checker<'m> {
    module: &'m Module,
    func: &'m Function,
    errors: Vec<VerifyError>,
}

impl Checker<'_> {
    fn err(&mut self, message: String) {
        self.errors.push(VerifyError { func: self.func.name.clone(), message });
    }

    fn check_reg(&mut self, r: Reg, what: &str) {
        if r.raw() >= self.func.reg_count {
            self.err(format!("{what} references undeclared register {r}"));
        }
    }

    fn check_addr(&mut self, a: &AddrExpr, what: &str) {
        match a.base {
            MemBase::Global(g) => {
                if g.index() >= self.module.globals.len() {
                    self.err(format!("{what} references undeclared global {g}"));
                }
            }
            MemBase::Slot(s) => {
                if s.index() >= self.func.slots.len() {
                    self.err(format!("{what} references undeclared slot {s}"));
                }
            }
            MemBase::Heap(h) => {
                if h.raw() >= self.module.heap_sites {
                    self.err(format!("{what} references undeclared heap site {h}"));
                }
            }
            MemBase::Reg(r) => self.check_reg(r, what),
        }
        if let Offset::Scaled { index, .. } = a.offset {
            self.check_reg(index, what);
        }
    }

    fn check_block_ref(&mut self, b: BlockId, what: &str) {
        if b.index() >= self.func.blocks.len() {
            self.err(format!("{what} targets nonexistent block {b}"));
        }
    }

    fn check_call(&mut self, callee: FuncId, args: &[Operand], at: &str) {
        if callee.index() >= self.module.funcs.len() {
            self.err(format!("{at} calls nonexistent function {callee}"));
            return;
        }
        let target = &self.module.funcs[callee.index()];
        if args.len() != target.param_count as usize {
            self.err(format!(
                "{at} calls `{}` with {} args, expected {}",
                target.name,
                args.len(),
                target.param_count
            ));
        }
    }

    fn check_function(&mut self) {
        if self.func.blocks.is_empty() {
            self.err("function has no blocks".to_string());
            return;
        }
        if self.func.param_count > self.func.reg_count {
            self.err(format!(
                "param_count {} exceeds reg_count {}",
                self.func.param_count, self.func.reg_count
            ));
        }
        for (bid, block) in self.func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let at = format!("{bid}:{i}");
                if let Some(d) = inst.def() {
                    self.check_reg(d, &at);
                }
                for u in inst.uses() {
                    self.check_reg(u, &at);
                }
                match inst {
                    Inst::Load { addr, .. }
                    | Inst::Store { addr, .. }
                    | Inst::Lea { addr, .. }
                    | Inst::CheckpointMem { addr } => self.check_addr(addr, &at),
                    Inst::Alloc { site, .. } if site.raw() >= self.module.heap_sites => {
                        self.err(format!("{at} uses undeclared heap site {site}"));
                    }
                    Inst::Call { callee, args, .. } => self.check_call(*callee, args, &at),
                    _ => {}
                }
            }
            match &block.term {
                None => self.err(format!("block {bid} has no terminator")),
                Some(t) => {
                    for u in t.uses() {
                        self.check_reg(u, &format!("{bid} terminator"));
                    }
                    match t {
                        Terminator::Jump(b) => self.check_block_ref(*b, &format!("{bid} jump")),
                        Terminator::Branch { then_bb, else_bb, .. } => {
                            self.check_block_ref(*then_bb, &format!("{bid} branch"));
                            self.check_block_ref(*else_bb, &format!("{bid} branch"));
                        }
                        Terminator::Ret(_) => {}
                    }
                }
            }
        }
    }
}

/// Verifies the structural integrity of every function in `module`.
///
/// # Errors
///
/// Returns all problems found (not just the first) as a vector of
/// [`VerifyError`].
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for func in &module.funcs {
        let mut checker = Checker { module, func, errors: Vec::new() };
        checker.check_function();
        errors.extend(checker.errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ids::GlobalId;

    fn valid_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 4);
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.store(AddrExpr::global(g, 0), p.into());
            f.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn valid_module_verifies() {
        assert!(verify_module(&valid_module()).is_ok());
    }

    #[test]
    fn unterminated_block_rejected() {
        let mut m = valid_module();
        m.funcs[0].blocks[0].term = None;
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("no terminator")));
    }

    #[test]
    fn dangling_register_rejected() {
        let mut m = valid_module();
        m.funcs[0].blocks[0].insts.push(Inst::Mov {
            dst: Reg::new(99),
            src: Operand::ImmI(0),
        });
        m.funcs[0].blocks[0].term = Some(Terminator::Ret(None));
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared register")));
    }

    #[test]
    fn dangling_global_rejected() {
        let mut m = valid_module();
        m.funcs[0].blocks[0]
            .insts
            .push(Inst::Store { addr: AddrExpr::global(GlobalId::new(7), 0), src: Operand::ImmI(0) });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared global")));
    }

    #[test]
    fn dangling_branch_target_rejected() {
        let mut m = valid_module();
        m.funcs[0].blocks[0].term = Some(Terminator::Jump(BlockId::new(42)));
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("nonexistent block")));
    }

    #[test]
    fn call_arity_mismatch_rejected() {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.function("leaf", 2, |f| f.ret(None));
        mb.function("main", 0, |f| {
            f.call_void(callee, &[Operand::ImmI(1)]);
            f.ret(None);
        });
        let m = mb.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected 2")));
    }

    #[test]
    fn error_display_mentions_function() {
        let mut m = valid_module();
        m.funcs[0].blocks[0].term = None;
        let errs = verify_module(&m).unwrap_err();
        let msg = errs[0].to_string();
        assert!(msg.contains("`f`"), "message was: {msg}");
    }
}
