//! Ergonomic construction of modules and functions.
//!
//! Two layers are provided:
//!
//! * a *raw* block-level API (`add_block`, `switch_to`, explicit
//!   terminators) for irregular CFGs — used e.g. to reconstruct the paper's
//!   Figure 4 example exactly;
//! * *structured* helpers (`if_else`, `while_loop`, `for_range`) that emit
//!   reducible control flow — used by the workload suite, whose CFGs must be
//!   reducible for interval analysis, just like `-O3` LLVM output in the
//!   paper.
//!
//! # Examples
//!
//! ```
//! use encore_ir::{ModuleBuilder, Operand, BinOp, AddrExpr};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let g = mb.global("acc", 1);
//! mb.function("sum_to_n", 1, |f| {
//!     let n = f.param(0);
//!     f.for_range(Operand::ImmI(0), n.into(), |f, i| {
//!         let acc = f.load(AddrExpr::global(g, 0));
//!         let next = f.bin(BinOp::Add, acc.into(), i.into());
//!         f.store(AddrExpr::global(g, 0), next.into());
//!     });
//!     let r = f.load(AddrExpr::global(g, 0));
//!     f.ret(Some(r.into()));
//! });
//! let module = mb.finish();
//! assert_eq!(module.funcs.len(), 1);
//! ```

use crate::addr::AddrExpr;
use crate::function::Function;
use crate::ids::{BlockId, FuncId, GlobalId, HeapId, Reg, SlotId};
use crate::inst::{BinOp, ExtEffect, Inst, Operand, Terminator, UnOp};
use crate::module::Module;

/// Builder for a [`Module`].
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates a builder for an empty module named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { module: Module::new(name) }
    }

    /// Declares a zero-initialized global.
    pub fn global(&mut self, name: impl Into<String>, cells: u32) -> GlobalId {
        self.module.add_global(name, cells)
    }

    /// Declares a global with initial data.
    pub fn global_init(
        &mut self,
        name: impl Into<String>,
        cells: u32,
        init: Vec<i64>,
    ) -> GlobalId {
        self.module.add_global_init(name, cells, init)
    }

    /// Forward-declares a function so it can be called before it is defined
    /// (mutual recursion, call graphs built out of order).
    pub fn declare(&mut self, name: impl Into<String>, param_count: u32) -> FuncId {
        self.module.add_func(Function::new(name, param_count))
    }

    /// Fills in the body of a previously [`declare`](Self::declare)d
    /// function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn define(&mut self, id: FuncId, build: impl FnOnce(&mut FunctionBuilder<'_>)) {
        let func = std::mem::replace(
            &mut self.module.funcs[id.index()],
            Function::new("<defining>", 0),
        );
        let mut fb = FunctionBuilder {
            module: &mut self.module,
            func,
            cur: Some(BlockId::new(0)),
        };
        build(&mut fb);
        let func = fb.func;
        self.module.funcs[id.index()] = func;
    }

    /// Declares and defines a function in one step.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        param_count: u32,
        build: impl FnOnce(&mut FunctionBuilder<'_>),
    ) -> FuncId {
        let id = self.declare(name, param_count);
        self.define(id, build);
        id
    }

    /// Finishes construction and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Read-only view of the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Builder for a single [`Function`], handed to the closure of
/// [`ModuleBuilder::define`].
///
/// The builder tracks a *current block*. Emitting an instruction appends it
/// there; structured helpers create and wire new blocks and leave the
/// current block at the join point. After a `ret`, the current position is
/// dead until [`switch_to`](Self::switch_to) is called.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    module: &'a mut Module,
    func: Function,
    cur: Option<BlockId>,
}

impl FunctionBuilder<'_> {
    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= param_count`.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.func.param_count, "parameter index out of range");
        Reg::new(i)
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        self.func.new_reg()
    }

    /// Declares a stack slot of `cells` cells.
    pub fn slot(&mut self, cells: u32) -> SlotId {
        self.func.add_slot(cells)
    }

    /// Allocates a fresh heap allocation-site id (module-wide).
    pub fn heap_site(&mut self) -> HeapId {
        self.module.new_heap_site()
    }

    /// Creates a new empty block without switching to it.
    pub fn add_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Makes `b` the current block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    /// The current block.
    ///
    /// # Panics
    ///
    /// Panics if the current position is dead (after `ret`/`jump`).
    pub fn current(&self) -> BlockId {
        self.cur.expect("no current block: control path already terminated")
    }

    /// Appends `inst` to the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current position is dead or already terminated.
    pub fn emit(&mut self, inst: Inst) {
        let b = self.current();
        assert!(
            self.func.block(b).term.is_none(),
            "emitting into terminated block {b}"
        );
        self.func.block_mut(b).insts.push(inst);
    }

    // --- instruction conveniences -------------------------------------

    /// `dst = op(lhs, rhs)` into a fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Bin { op, dst, lhs, rhs });
        dst
    }

    /// `dst = op(lhs, rhs)` into an existing register.
    pub fn bin_to(&mut self, dst: Reg, op: BinOp, lhs: Operand, rhs: Operand) {
        self.emit(Inst::Bin { op, dst, lhs, rhs });
    }

    /// `dst = op(src)` into a fresh register.
    pub fn un(&mut self, op: UnOp, src: Operand) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Un { op, dst, src });
        dst
    }

    /// `dst = src` into a fresh register.
    pub fn mov(&mut self, src: Operand) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Mov { dst, src });
        dst
    }

    /// `dst = src` into an existing register.
    pub fn mov_to(&mut self, dst: Reg, src: Operand) {
        self.emit(Inst::Mov { dst, src });
    }

    /// Loads from `addr` into a fresh register.
    pub fn load(&mut self, addr: AddrExpr) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Load { dst, addr });
        dst
    }

    /// Loads from `addr` into an existing register.
    pub fn load_to(&mut self, dst: Reg, addr: AddrExpr) {
        self.emit(Inst::Load { dst, addr });
    }

    /// Stores `src` to `addr`.
    pub fn store(&mut self, addr: AddrExpr, src: Operand) {
        self.emit(Inst::Store { addr, src });
    }

    /// Materializes a pointer to `addr` in a fresh register.
    pub fn lea(&mut self, addr: AddrExpr) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Lea { dst, addr });
        dst
    }

    /// Allocates a heap object of `size` cells at a fresh allocation site.
    pub fn alloc(&mut self, size: Operand) -> Reg {
        let site = self.heap_site();
        let dst = self.reg();
        self.emit(Inst::Alloc { dst, site, size });
        dst
    }

    /// Calls internal function `callee`, returning the result register
    /// (always allocated; ignore it for void calls).
    pub fn call(&mut self, callee: FuncId, args: &[Operand]) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Call { callee, dst: Some(dst), args: args.to_vec() });
        dst
    }

    /// Calls internal function `callee`, discarding any result.
    pub fn call_void(&mut self, callee: FuncId, args: &[Operand]) {
        self.emit(Inst::Call { callee, dst: None, args: args.to_vec() });
    }

    /// Calls external function `name` with the given assumed effect.
    pub fn call_ext(&mut self, name: &str, args: &[Operand], effect: ExtEffect) -> Reg {
        let dst = self.reg();
        self.emit(Inst::CallExt {
            name: name.into(),
            dst: Some(dst),
            args: args.to_vec(),
            effect,
        });
        dst
    }

    /// Calls external function `name`, discarding any result.
    pub fn call_ext_void(&mut self, name: &str, args: &[Operand], effect: ExtEffect) {
        self.emit(Inst::CallExt {
            name: name.into(),
            dst: None,
            args: args.to_vec(),
            effect,
        });
    }

    // --- terminators ---------------------------------------------------

    fn seal(&mut self, term: Terminator) {
        let b = self.current();
        assert!(
            self.func.block(b).term.is_none(),
            "block {b} already terminated"
        );
        self.func.block_mut(b).term = Some(term);
        self.cur = None;
    }

    /// Terminates the current block with an unconditional jump and leaves
    /// the position dead (use [`switch_to`](Self::switch_to) to continue).
    pub fn jump(&mut self, target: BlockId) {
        self.seal(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.seal(Terminator::Branch { cond, then_bb, else_bb });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.seal(Terminator::Ret(val));
    }

    // --- structured control flow ---------------------------------------

    /// Emits `if cond { then } else { else }` and continues at the join.
    pub fn if_else(
        &mut self,
        cond: Operand,
        build_then: impl FnOnce(&mut Self),
        build_else: impl FnOnce(&mut Self),
    ) {
        let then_bb = self.add_block();
        let else_bb = self.add_block();
        let join = self.add_block();
        self.branch(cond, then_bb, else_bb);

        self.switch_to(then_bb);
        build_then(self);
        if self.cur.is_some() {
            self.jump(join);
        }

        self.switch_to(else_bb);
        build_else(self);
        if self.cur.is_some() {
            self.jump(join);
        }

        self.switch_to(join);
    }

    /// Emits `if cond { then }` and continues at the join.
    pub fn if_then(&mut self, cond: Operand, build_then: impl FnOnce(&mut Self)) {
        self.if_else(cond, build_then, |_| {});
    }

    /// Emits a while loop. `build_cond` runs in the (single) loop header and
    /// returns the continuation condition; `build_body` emits the body.
    /// Continues at the loop exit.
    pub fn while_loop(
        &mut self,
        build_cond: impl FnOnce(&mut Self) -> Operand,
        build_body: impl FnOnce(&mut Self),
    ) {
        let header = self.add_block();
        let body = self.add_block();
        let exit = self.add_block();

        self.jump(header);
        self.switch_to(header);
        let cond = build_cond(self);
        self.branch(cond, body, exit);

        self.switch_to(body);
        build_body(self);
        if self.cur.is_some() {
            self.jump(header);
        }

        self.switch_to(exit);
    }

    /// Emits `for i in start..end { body }` where `i` is a fresh register
    /// passed to `build_body`. Continues at the loop exit.
    pub fn for_range(
        &mut self,
        start: Operand,
        end: Operand,
        build_body: impl FnOnce(&mut Self, Reg),
    ) {
        let i = self.mov(start);
        // Copy the bound into a register so the loop header re-reads a
        // stable register (end may itself be a register the body mutates).
        let bound = self.mov(end);
        self.while_loop(
            |f| Operand::Reg(f.bin(BinOp::Lt, i.into(), bound.into())),
            |f| {
                build_body(f, i);
                if f.cur.is_some() {
                    f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1));
                }
            },
        );
    }

    /// Emits `for i in (start..end).step_by(step) { body }` where the
    /// loop runs while `i + step <= end` — i.e. only full strides execute,
    /// so an unrolled body may safely touch offsets `i .. i+step-1`.
    /// Trailing elements (fewer than `step`) are skipped; callers that
    /// need them handle the epilogue themselves.
    ///
    /// # Panics
    ///
    /// Panics if `step < 1`.
    pub fn for_range_by(
        &mut self,
        start: Operand,
        end: Operand,
        step: i64,
        build_body: impl FnOnce(&mut Self, Reg),
    ) {
        assert!(step >= 1, "step must be at least 1");
        let i = self.mov(start);
        let end_reg = self.mov(end);
        let bound = self.bin(BinOp::Sub, end_reg.into(), Operand::ImmI(step - 1));
        self.while_loop(
            |f| Operand::Reg(f.bin(BinOp::Lt, i.into(), bound.into())),
            |f| {
                build_body(f, i);
                if f.cur.is_some() {
                    f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(step));
                }
            },
        );
    }

    /// Materializes `cond ? then_val : else_val` into a fresh register
    /// via a diamond — the IR has no select instruction, so this is the
    /// canonical way to build branchy data flow. Continues at the join.
    pub fn select(&mut self, cond: Operand, then_val: Operand, else_val: Operand) -> Reg {
        let dst = self.reg();
        self.if_else(
            cond,
            |f| f.mov_to(dst, then_val),
            |f| f.mov_to(dst, else_val),
        );
        dst
    }

    /// Masks `raw` into `[0, len)` for use as a dynamic index into an
    /// object of `len` cells. Every dynamically indexed access in the
    /// workload suite bounds its index this way; the mask is only a
    /// bound when `len` is a power of two, which is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a positive power of two.
    pub fn bounded_index(&mut self, raw: Operand, len: i64) -> Reg {
        assert!(len > 0 && (len & (len - 1)) == 0, "len must be a power of two");
        self.bin(BinOp::And, raw, Operand::ImmI(len - 1))
    }

    /// Read-only view of the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Read-only view of the enclosing module (globals, declared funcs).
    pub fn module(&self) -> &Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn straight_line_function() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("id", 1, |f| {
            let p = f.param(0);
            f.ret(Some(p.into()));
        });
        let m = mb.finish();
        verify_module(&m).expect("verifies");
        assert_eq!(m.funcs[0].blocks.len(), 1);
    }

    #[test]
    fn if_else_produces_diamond() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let r = f.mov(Operand::ImmI(0));
            f.if_else(
                p.into(),
                |f| f.mov_to(r, Operand::ImmI(1)),
                |f| f.mov_to(r, Operand::ImmI(2)),
            );
            f.ret(Some(r.into()));
        });
        let m = mb.finish();
        verify_module(&m).expect("verifies");
        // entry + then + else + join = 4 blocks
        assert_eq!(m.funcs[0].blocks.len(), 4);
    }

    #[test]
    fn while_loop_has_single_header() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let i = f.mov(Operand::ImmI(0));
            f.while_loop(
                |f| Operand::Reg(f.bin(BinOp::Lt, i.into(), n.into())),
                |f| f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1)),
            );
            f.ret(Some(i.into()));
        });
        let m = mb.finish();
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn early_return_in_branch_arm() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_then(p.into(), |f| f.ret(Some(Operand::ImmI(1))));
            f.ret(Some(Operand::ImmI(0)));
        });
        let m = mb.finish();
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn for_range_by_runs_full_strides_only() {
        // Statically inspect: bound = end - (step-1); loop strides by 4.
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let count = f.mov(Operand::ImmI(0));
            f.for_range_by(Operand::ImmI(0), n.into(), 4, |f, _i| {
                f.bin_to(count, BinOp::Add, count.into(), Operand::ImmI(4));
            });
            f.ret(Some(count.into()));
        });
        let m = mb.finish();
        verify_module(&m).expect("verifies");
        // The increment instruction uses step 4.
        let has_step4 = m.funcs[0].iter_insts().any(|(_, i)| {
            matches!(
                i,
                crate::inst::Inst::Bin { op: BinOp::Add, rhs: Operand::ImmI(4), .. }
            )
        });
        assert!(has_step4);
    }

    #[test]
    #[should_panic(expected = "step must be at least 1")]
    fn for_range_by_rejects_zero_step() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range_by(Operand::ImmI(0), n.into(), 0, |_, _| {});
            f.ret(None);
        });
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminator_panics() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let b = f.current();
            f.ret(None);
            f.switch_to(b);
            f.ret(None);
        });
    }

    #[test]
    fn select_builds_a_diamond_into_one_register() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let r = f.select(p.into(), Operand::ImmI(7), Operand::ImmI(9));
            f.ret(Some(r.into()));
        });
        let m = mb.finish();
        verify_module(&m).expect("verifies");
        // entry + then + else + join = 4 blocks, both arms write r.
        assert_eq!(m.funcs[0].blocks.len(), 4);
    }

    #[test]
    fn bounded_index_masks_with_len_minus_one() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let i = f.bounded_index(p.into(), 16);
            f.ret(Some(i.into()));
        });
        let m = mb.finish();
        verify_module(&m).expect("verifies");
        let masked = m.funcs[0].iter_insts().any(|(_, i)| {
            matches!(
                i,
                crate::inst::Inst::Bin { op: BinOp::And, rhs: Operand::ImmI(15), .. }
            )
        });
        assert!(masked);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bounded_index_rejects_non_power_of_two() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.bounded_index(p.into(), 12);
            f.ret(None);
        });
    }

    #[test]
    fn nested_loops_and_calls() {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.function("leaf", 1, |f| {
            let p = f.param(0);
            let r = f.bin(BinOp::Mul, p.into(), p.into());
            f.ret(Some(r.into()));
        });
        mb.function("main", 0, |f| {
            let acc = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), Operand::ImmI(10), |f, i| {
                f.for_range(Operand::ImmI(0), i.into(), |f, j| {
                    let v = f.call(callee, &[j.into()]);
                    f.bin_to(acc, BinOp::Add, acc.into(), v.into());
                });
            });
            f.ret(Some(acc.into()));
        });
        let m = mb.finish();
        verify_module(&m).expect("verifies");
    }
}
