//! Textual printing of modules, functions and instructions.
//!
//! The format is round-trippable via [`crate::parse::parse_module`]; a
//! property test in the crate asserts `parse(print(m)) == m`.

use crate::function::Function;
use crate::ids::{BlockId, FuncId};
use crate::inst::{Inst, Operand, Terminator};
use crate::module::Module;
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Bin { op, dst, lhs, rhs } => {
                write!(f, "{dst} = {} {lhs}, {rhs}", op.mnemonic())
            }
            Inst::Un { op, dst, src } => write!(f, "{dst} = {} {src}", op.mnemonic()),
            Inst::Mov { dst, src } => write!(f, "{dst} = mov {src}"),
            Inst::Load { dst, addr } => write!(f, "{dst} = load {addr}"),
            Inst::Store { addr, src } => write!(f, "store {addr}, {src}"),
            Inst::Lea { dst, addr } => write!(f, "{dst} = lea {addr}"),
            Inst::Alloc { dst, site, size } => write!(f, "{dst} = alloc {site}, {size}"),
            Inst::Call { callee, dst, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call {callee}(")?;
                write_args(f, args)?;
                write!(f, ")")
            }
            Inst::CallExt { name, dst, args, effect } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "callext \"{name}\" {effect}(")?;
                write_args(f, args)?;
                write!(f, ")")
            }
            Inst::SetRecovery { region } => write!(f, "setrecovery {region}"),
            Inst::CheckpointMem { addr } => write!(f, "ckptmem {addr}"),
            Inst::CheckpointReg { reg } => write!(f, "ckptreg {reg}"),
            Inst::Restore { region } => write!(f, "restore {region}"),
        }
    }
}

fn write_args(f: &mut fmt::Formatter<'_>, args: &[Operand]) -> fmt::Result {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    Ok(())
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jmp {b}"),
            Terminator::Branch { cond, then_bb, else_bb } => {
                write!(f, "br {cond}, {then_bb}, {else_bb}")
            }
            Terminator::Ret(Some(v)) => write!(f, "ret {v}"),
            Terminator::Ret(None) => write!(f, "ret"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "  func \"{}\" params={} regs={} slots=[",
            self.name, self.param_count, self.reg_count
        )?;
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", s.cells)?;
        }
        writeln!(f, "] {{")?;
        for (bid, block) in self.iter_blocks() {
            writeln!(f, "  {bid}:")?;
            for inst in &block.insts {
                writeln!(f, "    {inst}")?;
            }
            match &block.term {
                Some(t) => writeln!(f, "    {t}")?,
                None => writeln!(f, "    <unterminated>")?,
            }
        }
        writeln!(f, "  }}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module \"{}\" {{", self.name)?;
        writeln!(f, "  heap_sites {}", self.heap_sites)?;
        for g in &self.globals {
            write!(f, "  global \"{}\" cells={} init=[", g.name, g.cells)?;
            for (i, v) in g.init.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, "]")?;
        }
        for func in &self.funcs {
            write!(f, "{func}")?;
        }
        writeln!(f, "}}")
    }
}

/// Renders a block id list compactly, e.g. `{bb0, bb3, bb4}`.
pub fn block_set_to_string(blocks: &[BlockId]) -> String {
    let mut s = String::from("{");
    for (i, b) in blocks.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&b.to_string());
    }
    s.push('}');
    s
}

/// Renders a function id for display given its module (uses the name).
pub fn func_name(module: &Module, f: FuncId) -> &str {
    &module.func(f).name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::BinOp;

    #[test]
    fn prints_module() {
        let mut mb = ModuleBuilder::new("demo");
        let g = mb.global_init("tbl", 4, vec![1, 2]);
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let v = f.bin(BinOp::Add, p.into(), Operand::ImmI(1));
            f.store(crate::AddrExpr::global(g, 0), v.into());
            f.ret(Some(v.into()));
        });
        let m = mb.finish();
        let text = m.to_string();
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("global \"tbl\" cells=4 init=[1,2]"));
        assert!(text.contains("r1 = add r0, 1"));
        assert!(text.contains("store g0[0], r1"));
        assert!(text.contains("ret r1"));
    }

    #[test]
    fn block_set_rendering() {
        let s = block_set_to_string(&[BlockId::new(0), BlockId::new(2)]);
        assert_eq!(s, "{bb0, bb2}");
    }
}
