//! Strongly-typed identifiers for IR entities.
//!
//! Every entity in the IR (virtual registers, basic blocks, functions,
//! globals, stack slots, heap allocation sites, Encore regions) is referred
//! to by a small-integer id wrapped in a dedicated newtype, per the
//! "newtypes provide static distinctions" guideline. Ids are dense and
//! allocated by the owning container ([`crate::Function`] or
//! [`crate::Module`]), so they double as vector indices.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Ids are normally allocated by the owning container; this
            /// constructor exists for tests, parsers and dense-map keys.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this id.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` backing this id.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id! {
    /// A virtual register local to a [`crate::Function`].
    ///
    /// The IR is *not* in SSA form: registers are mutable storage cells,
    /// which keeps re-execution semantics (the heart of Encore's rollback
    /// recovery) straightforward. Register `r0`, `r1`, ... are allocated by
    /// [`crate::FunctionBuilder::reg`].
    Reg, "r"
}

define_id! {
    /// A basic block within a [`crate::Function`].
    BlockId, "bb"
}

define_id! {
    /// A function within a [`crate::Module`].
    FuncId, "fn"
}

define_id! {
    /// A global memory object declared on a [`crate::Module`].
    GlobalId, "g"
}

define_id! {
    /// A stack slot local to a [`crate::Function`] activation.
    SlotId, "s"
}

define_id! {
    /// A symbolic heap allocation site (one per `Alloc` instruction).
    ///
    /// All dynamic allocations performed by a given `Alloc` site share this
    /// id for the purpose of static alias analysis, mirroring allocation-site
    /// based points-to abstractions.
    HeapId, "h"
}

define_id! {
    /// An Encore recovery region, assigned during instrumentation.
    RegionId, "region"
}

/// A position of an instruction inside a function: block + index within it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstRef {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Index of the instruction within the block body (terminator excluded).
    pub index: usize,
}

impl InstRef {
    /// Creates a reference to instruction `index` of `block`.
    pub const fn new(block: BlockId, index: usize) -> Self {
        Self { block, index }
    }
}

impl fmt::Display for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let r = Reg::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r.raw(), 7);
        assert_eq!(usize::from(r), 7);
        assert_eq!(format!("{r}"), "r7");
        assert_eq!(format!("{r:?}"), "r7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(BlockId::new(1));
        set.insert(BlockId::new(1));
        set.insert(BlockId::new(2));
        assert_eq!(set.len(), 2);
        assert!(BlockId::new(1) < BlockId::new(2));
    }

    #[test]
    fn inst_ref_display() {
        let i = InstRef::new(BlockId::new(3), 4);
        assert_eq!(format!("{i}"), "bb3:4");
    }
}
