//! Graphviz (dot) export of function CFGs.
//!
//! `encore-core` builds on this to overlay region partitions and
//! verdicts (see `encore_core::dot_regions`); figures like the paper's
//! Figure 2/4 CFG diagrams can be regenerated from any module.

use crate::function::Function;
use crate::ids::BlockId;
use crate::inst::Terminator;
use std::fmt::Write as _;

/// Options for [`function_to_dot`].
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Include instruction text inside each block node (otherwise just
    /// the block id).
    pub show_insts: bool,
    /// Optional cluster assignment: `(cluster label, members)` groups
    /// rendered as subgraphs (used for region overlays).
    pub clusters: Vec<(String, Vec<BlockId>)>,
    /// Optional fill colors per block (X11 color names).
    pub fills: Vec<(BlockId, String)>,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self { show_insts: true, clusters: Vec::new(), fills: Vec::new() }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\l")
}

/// Renders `func` as a Graphviz digraph.
///
/// # Examples
///
/// ```
/// use encore_ir::{ModuleBuilder, Operand, dot::{function_to_dot, DotOptions}};
///
/// let mut mb = ModuleBuilder::new("m");
/// mb.function("f", 1, |f| {
///     let p = f.param(0);
///     f.if_else(p.into(), |_| {}, |_| {});
///     f.ret(None);
/// });
/// let m = mb.finish();
/// let dot = function_to_dot(&m.funcs[0], &DotOptions::default());
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("bb0 -> bb1"));
/// ```
pub fn function_to_dot(func: &Function, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&func.name));
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    let fill_of = |b: BlockId| -> Option<&str> {
        options
            .fills
            .iter()
            .find(|(fb, _)| *fb == b)
            .map(|(_, c)| c.as_str())
    };
    let clustered: std::collections::BTreeSet<BlockId> = options
        .clusters
        .iter()
        .flat_map(|(_, ms)| ms.iter().copied())
        .collect();

    let emit_node = |out: &mut String, b: BlockId, indent: &str| {
        let block = func.block(b);
        let mut label = format!("{b}:\\l");
        if options.show_insts {
            for inst in &block.insts {
                let _ = write!(label, "  {}\\l", escape(&inst.to_string()));
            }
            if let Some(t) = &block.term {
                let _ = write!(label, "  {}\\l", escape(&t.to_string()));
            }
        }
        let style = match fill_of(b) {
            Some(c) => format!(", style=filled, fillcolor=\"{c}\""),
            None => String::new(),
        };
        let _ = writeln!(out, "{indent}{b} [label=\"{label}\"{style}];");
    };

    for (i, (label, members)) in options.clusters.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{i} {{");
        let _ = writeln!(out, "    label=\"{}\";", escape(label));
        for &b in members {
            emit_node(&mut out, b, "    ");
        }
        let _ = writeln!(out, "  }}");
    }
    for b in func.block_ids() {
        if !clustered.contains(&b) {
            emit_node(&mut out, b, "  ");
        }
    }

    for (b, block) in func.iter_blocks() {
        match &block.term {
            Some(Terminator::Jump(t)) => {
                let _ = writeln!(out, "  {b} -> {t};");
            }
            Some(Terminator::Branch { then_bb, else_bb, .. }) => {
                let _ = writeln!(out, "  {b} -> {then_bb} [label=\"T\"];");
                let _ = writeln!(out, "  {b} -> {else_bb} [label=\"F\"];");
            }
            _ => {}
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;

    fn sample() -> crate::module::Module {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.if_else(p.into(), |_| {}, |_| {});
            f.ret(Some(Operand::ImmI(0)));
        });
        mb.finish()
    }

    #[test]
    fn renders_nodes_and_edges() {
        let m = sample();
        let dot = function_to_dot(&m.funcs[0], &DotOptions::default());
        assert!(dot.contains("digraph \"f\""));
        for b in 0..4 {
            assert!(dot.contains(&format!("bb{b} [label=")), "{dot}");
        }
        assert!(dot.contains("bb0 -> bb1 [label=\"T\"]"));
        assert!(dot.contains("bb0 -> bb2 [label=\"F\"]"));
        assert!(dot.contains("bb1 -> bb3"));
    }

    #[test]
    fn clusters_and_fills() {
        let m = sample();
        let options = DotOptions {
            show_insts: false,
            clusters: vec![("region0".into(), vec![BlockId::new(0), BlockId::new(1)])],
            fills: vec![(BlockId::new(2), "lightcoral".into())],
        };
        let dot = function_to_dot(&m.funcs[0], &options);
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"region0\""));
        assert!(dot.contains("fillcolor=\"lightcoral\""));
    }

    #[test]
    fn labels_escape_quotes() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            f.call_ext_void("print_i64", &[Operand::ImmI(1)], crate::inst::ExtEffect::Opaque);
            f.ret(None);
        });
        let m = mb.finish();
        let dot = function_to_dot(&m.funcs[0], &DotOptions::default());
        // The callext's quoted name must be escaped inside the label.
        assert!(dot.contains("callext \\\"print_i64\\\""), "{dot}");
    }
}
