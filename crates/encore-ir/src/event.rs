//! Dynamic memory-event records shared between the simulator (producer)
//! and the trace-idempotence analysis (consumer, in `encore-core`).
//!
//! A [`MemEvent`] names a *concrete* memory cell — object plus cell index —
//! unlike the symbolic [`crate::AddrExpr`] used statically. The simulator
//! resolves addresses while executing and emits one event per dynamic load
//! and store; Figure 1 of the paper is computed over windows of these
//! events.

use std::fmt;

/// Identity of a concrete runtime memory object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ObjKind {
    /// Global number `n`.
    Global(u32),
    /// Stack slot `slot` of activation `frame` (frames numbered by call
    /// order so recursive activations stay distinct).
    Slot {
        /// Activation number.
        frame: u32,
        /// Slot index within the frame.
        slot: u32,
    },
    /// Heap object number `n` (allocation order).
    Heap(u32),
}

impl fmt::Display for ObjKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjKind::Global(n) => write!(f, "g{n}"),
            ObjKind::Slot { frame, slot } => write!(f, "f{frame}.s{slot}"),
            ObjKind::Heap(n) => write!(f, "h{n}"),
        }
    }
}

/// A concrete memory cell: object + cell index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Cell {
    /// Object containing the cell.
    pub obj: ObjKind,
    /// Cell index within the object.
    pub index: u64,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.obj, self.index)
    }
}

/// Kind of dynamic memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Load,
    /// A store.
    Store,
}

/// One dynamic memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemEvent {
    /// Load or store.
    pub kind: AccessKind,
    /// The concrete cell accessed.
    pub cell: Cell,
    /// Dynamic instruction index at which the access happened.
    pub at: u64,
}

impl MemEvent {
    /// Convenience constructor for a load event.
    pub fn load(cell: Cell, at: u64) -> Self {
        Self { kind: AccessKind::Load, cell, at }
    }

    /// Convenience constructor for a store event.
    pub fn store(cell: Cell, at: u64) -> Self {
        Self { kind: AccessKind::Store, cell, at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_compare_and_display() {
        let a = Cell { obj: ObjKind::Global(0), index: 3 };
        let b = Cell { obj: ObjKind::Heap(0), index: 3 };
        assert_ne!(a, b);
        assert_eq!(format!("{a}"), "g0[3]");
        let s = Cell { obj: ObjKind::Slot { frame: 2, slot: 1 }, index: 0 };
        assert_eq!(format!("{s}"), "f2.s1[0]");
    }

    #[test]
    fn event_constructors() {
        let c = Cell { obj: ObjKind::Global(1), index: 0 };
        assert_eq!(MemEvent::load(c, 5).kind, AccessKind::Load);
        assert_eq!(MemEvent::store(c, 6).kind, AccessKind::Store);
    }
}
