//! Basic blocks and functions.

use crate::ids::{BlockId, FuncId, InstRef, Reg, SlotId};
use crate::inst::{Inst, Terminator};
use std::collections::BTreeMap;

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// Terminator; `None` only transiently during construction.
    pub term: Option<Terminator>,
}

impl Block {
    /// Creates an empty, unterminated block.
    pub fn new() -> Self {
        Self { insts: Vec::new(), term: None }
    }

    /// Successor blocks (empty if unterminated).
    pub fn successors(&self) -> Vec<BlockId> {
        self.term.as_ref().map(|t| t.successors()).unwrap_or_default()
    }

    /// The terminator.
    ///
    /// # Panics
    ///
    /// Panics if the block is unterminated; run the verifier first.
    pub fn terminator(&self) -> &Terminator {
        self.term.as_ref().expect("block has no terminator")
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// A stack slot declaration: a fixed-size per-activation memory object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlotDecl {
    /// Size of the slot in 8-byte cells.
    pub cells: u32,
}

/// A function: an intra-procedural CFG over [`Block`]s plus register and
/// stack-slot declarations.
///
/// Blocks are stored densely and identified by [`BlockId`]; the entry block
/// is always `bb0`.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Number of formal parameters; parameters arrive in registers
    /// `r0 .. r(param_count-1)`.
    pub param_count: u32,
    /// Number of virtual registers used (registers are `r0..r(reg_count-1)`).
    pub reg_count: u32,
    /// Stack slot declarations, indexed by [`SlotId`].
    pub slots: Vec<SlotDecl>,
    /// Basic blocks, indexed by [`BlockId`]; `bb0` is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Creates an empty function with `param_count` parameters and a single
    /// empty entry block.
    pub fn new(name: impl Into<String>, param_count: u32) -> Self {
        Self {
            name: name.into(),
            param_count,
            reg_count: param_count,
            slots: Vec::new(),
            blocks: vec![Block::new()],
        }
    }

    /// The entry block id (`bb0`).
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// Shorthand for `&self.blocks[b.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable shorthand for `&mut self.blocks[b.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs in id order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i as u32), b))
    }

    /// All block ids in id order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId::new)
    }

    /// Appends a fresh empty block, returning its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg::new(self.reg_count);
        self.reg_count += 1;
        r
    }

    /// Declares a stack slot of `cells` 8-byte cells.
    pub fn add_slot(&mut self, cells: u32) -> SlotId {
        let id = SlotId::new(self.slots.len() as u32);
        self.slots.push(SlotDecl { cells });
        id
    }

    /// Predecessor map: for each block, the blocks that branch to it.
    pub fn predecessors(&self) -> BTreeMap<BlockId, Vec<BlockId>> {
        let mut preds: BTreeMap<BlockId, Vec<BlockId>> =
            self.block_ids().map(|b| (b, Vec::new())).collect();
        for (id, block) in self.iter_blocks() {
            for succ in block.successors() {
                preds.get_mut(&succ).expect("successor out of range").push(id);
            }
        }
        preds
    }

    /// Looks up an instruction by [`InstRef`].
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn inst(&self, r: InstRef) -> &Inst {
        &self.block(r.block).insts[r.index]
    }

    /// Total static instruction count (terminators included).
    pub fn static_inst_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.insts.len() + usize::from(b.term.is_some()))
            .sum()
    }

    /// Iterates over every instruction in the function with its location.
    pub fn iter_insts(&self) -> impl Iterator<Item = (InstRef, &Inst)> {
        self.iter_blocks().flat_map(|(bid, block)| {
            block
                .insts
                .iter()
                .enumerate()
                .map(move |(i, inst)| (InstRef::new(bid, i), inst))
        })
    }
}

/// A function signature reference as seen from a module: id + name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncSig {
    /// Dense id within the module.
    pub id: FuncId,
    /// Name.
    pub name: String,
    /// Parameter count.
    pub param_count: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Operand, Terminator};

    #[test]
    fn new_function_has_entry_block() {
        let f = Function::new("f", 2);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.entry(), BlockId::new(0));
        assert_eq!(f.reg_count, 2);
    }

    #[test]
    fn predecessors_computed() {
        let mut f = Function::new("f", 0);
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.block_mut(f.entry()).term = Some(Terminator::Branch {
            cond: Operand::ImmI(1),
            then_bb: b1,
            else_bb: b2,
        });
        f.block_mut(b1).term = Some(Terminator::Jump(b2));
        f.block_mut(b2).term = Some(Terminator::Ret(None));
        let preds = f.predecessors();
        assert_eq!(preds[&b2], vec![BlockId::new(0), b1]);
        assert_eq!(preds[&b1], vec![BlockId::new(0)]);
        assert!(preds[&f.entry()].is_empty());
    }

    #[test]
    fn static_inst_count_includes_terminators() {
        let mut f = Function::new("f", 0);
        let r = f.new_reg();
        f.block_mut(BlockId::new(0))
            .insts
            .push(Inst::Mov { dst: r, src: Operand::ImmI(1) });
        f.block_mut(BlockId::new(0)).term = Some(Terminator::Ret(None));
        assert_eq!(f.static_inst_count(), 2);
    }
}
