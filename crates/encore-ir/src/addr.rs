//! Symbolic memory addressing.
//!
//! Every `Load`/`Store` in the IR carries an [`AddrExpr`]: a symbolic
//! *base object* plus an *offset expression*. Keeping the base object
//! symbolic (rather than a flat integer address) is what lets the static
//! alias analysis in `encore-analysis` give useful answers, and it mirrors
//! how Encore's published implementation leaned on LLVM's object-based
//! alias queries.
//!
//! At runtime the interpreter resolves an `AddrExpr` to a concrete
//! `(object, cell index)` pair; memory is segmented per object and
//! addressed in 8-byte cells.

use crate::ids::{GlobalId, HeapId, Reg, SlotId};
use std::fmt;

/// The base object of a memory reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemBase {
    /// A module-level global object.
    Global(GlobalId),
    /// A stack slot of the current function activation.
    Slot(SlotId),
    /// A symbolic heap object identified by its allocation site.
    Heap(HeapId),
    /// A pointer held in a register; the pointee object is unknown
    /// statically (conservative alias analysis must assume `May`).
    Reg(Reg),
}

impl MemBase {
    /// Returns `true` if the base names a statically known object
    /// (global, slot or allocation site) rather than an opaque pointer.
    pub fn is_static(&self) -> bool {
        !matches!(self, MemBase::Reg(_))
    }
}

impl fmt::Display for MemBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemBase::Global(g) => write!(f, "{g}"),
            MemBase::Slot(s) => write!(f, "{s}"),
            MemBase::Heap(h) => write!(f, "{h}"),
            MemBase::Reg(r) => write!(f, "[{r}]"),
        }
    }
}

/// The offset part of a memory reference, in 8-byte cells.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Offset {
    /// A compile-time constant offset.
    Const(i64),
    /// `reg * scale + disp` — a dynamically computed offset, e.g. an array
    /// index. Statically only `May` alias answers are possible against
    /// other dynamic offsets into the same object.
    Scaled {
        /// Register holding the index.
        index: Reg,
        /// Multiplier applied to the index (in cells).
        scale: i64,
        /// Constant displacement added after scaling (in cells).
        disp: i64,
    },
}

impl Offset {
    /// A zero constant offset.
    pub const ZERO: Offset = Offset::Const(0);

    /// Returns the constant value if the offset is statically known.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Offset::Const(c) => Some(*c),
            Offset::Scaled { .. } => None,
        }
    }

    /// Returns the register the offset depends on, if any.
    pub fn index_reg(&self) -> Option<Reg> {
        match self {
            Offset::Const(_) => None,
            Offset::Scaled { index, .. } => Some(*index),
        }
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Offset::Const(c) => write!(f, "{c}"),
            Offset::Scaled { index, scale, disp } => {
                write!(f, "{index}*{scale}+{disp}")
            }
        }
    }
}

/// A symbolic memory address: base object + offset in cells.
///
/// # Examples
///
/// ```
/// use encore_ir::{AddrExpr, MemBase, Offset, GlobalId};
///
/// let a = AddrExpr::global(GlobalId::new(0), 4);
/// assert_eq!(a.base, MemBase::Global(GlobalId::new(0)));
/// assert_eq!(a.offset, Offset::Const(4));
/// assert!(a.is_static());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AddrExpr {
    /// Base object being addressed.
    pub base: MemBase,
    /// Offset into the base object, in 8-byte cells.
    pub offset: Offset,
}

impl AddrExpr {
    /// Creates an address from base and offset.
    pub const fn new(base: MemBase, offset: Offset) -> Self {
        Self { base, offset }
    }

    /// Address of cell `offset` of global `g`.
    pub const fn global(g: GlobalId, offset: i64) -> Self {
        Self::new(MemBase::Global(g), Offset::Const(offset))
    }

    /// Address of cell `offset` of stack slot `s`.
    pub const fn slot(s: SlotId, offset: i64) -> Self {
        Self::new(MemBase::Slot(s), Offset::Const(offset))
    }

    /// Address of cell `offset` of heap object `h`.
    pub const fn heap(h: HeapId, offset: i64) -> Self {
        Self::new(MemBase::Heap(h), Offset::Const(offset))
    }

    /// Address held in pointer register `r`, displaced by `disp` cells.
    pub const fn reg(r: Reg, disp: i64) -> Self {
        Self::new(MemBase::Reg(r), Offset::Const(disp))
    }

    /// Indexed address: `base[index*scale + disp]`.
    pub const fn indexed(base: MemBase, index: Reg, scale: i64, disp: i64) -> Self {
        Self::new(base, Offset::Scaled { index, scale, disp })
    }

    /// Returns `true` when both the base object and the offset are
    /// statically known, i.e. the address denotes a single fixed cell.
    pub fn is_static(&self) -> bool {
        self.base.is_static() && self.offset.as_const().is_some()
    }

    /// Registers this address expression reads when evaluated.
    pub fn used_regs(&self) -> impl Iterator<Item = Reg> {
        let base = match self.base {
            MemBase::Reg(r) => Some(r),
            _ => None,
        };
        base.into_iter().chain(self.offset.index_reg())
    }
}

impl fmt::Display for AddrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.base, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_detection() {
        let g = AddrExpr::global(GlobalId::new(1), 3);
        assert!(g.is_static());
        let dynamic = AddrExpr::indexed(MemBase::Global(GlobalId::new(1)), Reg::new(0), 1, 0);
        assert!(!dynamic.is_static());
        let ptr = AddrExpr::reg(Reg::new(2), 0);
        assert!(!ptr.is_static());
    }

    #[test]
    fn used_regs() {
        let a = AddrExpr::indexed(MemBase::Reg(Reg::new(3)), Reg::new(4), 2, 1);
        let regs: Vec<_> = a.used_regs().collect();
        assert_eq!(regs, vec![Reg::new(3), Reg::new(4)]);
        let b = AddrExpr::global(GlobalId::new(0), 0);
        assert_eq!(b.used_regs().count(), 0);
    }

    #[test]
    fn display() {
        let a = AddrExpr::indexed(MemBase::Global(GlobalId::new(2)), Reg::new(1), 8, 4);
        assert_eq!(format!("{a}"), "g2[r1*8+4]");
        let b = AddrExpr::slot(SlotId::new(0), 2);
        assert_eq!(format!("{b}"), "s0[2]");
    }
}
