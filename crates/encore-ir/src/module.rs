//! Modules: collections of functions plus global memory declarations.

use crate::function::Function;
use crate::ids::{FuncId, GlobalId, HeapId};

/// A global memory object declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct GlobalDecl {
    /// Name for printing.
    pub name: String,
    /// Size in 8-byte cells.
    pub cells: u32,
    /// Initial integer values (zero-extended to `cells`).
    pub init: Vec<i64>,
}

/// A compilation unit: functions + globals.
///
/// # Examples
///
/// ```
/// use encore_ir::Module;
///
/// let mut m = Module::new("demo");
/// let g = m.add_global("data", 16);
/// assert_eq!(m.global(g).cells, 16);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Functions indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Globals indexed by [`GlobalId`].
    pub globals: Vec<GlobalDecl>,
    /// Number of heap allocation sites handed out so far.
    pub heap_sites: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            funcs: Vec::new(),
            globals: Vec::new(),
            heap_sites: 0,
        }
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        let id = FuncId::new(self.funcs.len() as u32);
        self.funcs.push(func);
        id
    }

    /// Declares a zero-initialized global of `cells` cells.
    pub fn add_global(&mut self, name: impl Into<String>, cells: u32) -> GlobalId {
        self.add_global_init(name, cells, Vec::new())
    }

    /// Declares a global with explicit initial values.
    pub fn add_global_init(
        &mut self,
        name: impl Into<String>,
        cells: u32,
        init: Vec<i64>,
    ) -> GlobalId {
        let id = GlobalId::new(self.globals.len() as u32);
        self.globals.push(GlobalDecl { name: name.into(), cells, init });
        id
    }

    /// Allocates a fresh heap allocation-site id.
    pub fn new_heap_site(&mut self) -> HeapId {
        let id = HeapId::new(self.heap_sites);
        self.heap_sites += 1;
        id
    }

    /// Shorthand for `&self.funcs[f.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.index()]
    }

    /// Mutable shorthand for `&mut self.funcs[f.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn func_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.funcs[f.index()]
    }

    /// Shorthand for `&self.globals[g.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn global(&self, g: GlobalId) -> &GlobalDecl {
        &self.globals[g.index()]
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId::new(i as u32))
    }

    /// Iterates over `(FuncId, &Function)` in id order.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::new(i as u32), f))
    }

    /// Total static instruction count across all functions.
    pub fn static_inst_count(&self) -> usize {
        self.funcs.iter().map(Function::static_inst_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new("m");
        m.add_func(Function::new("alpha", 0));
        let beta = m.add_func(Function::new("beta", 1));
        assert_eq!(m.func_by_name("beta"), Some(beta));
        assert_eq!(m.func_by_name("gamma"), None);
        assert_eq!(m.func(beta).param_count, 1);
    }

    #[test]
    fn heap_sites_are_unique() {
        let mut m = Module::new("m");
        let a = m.new_heap_site();
        let b = m.new_heap_site();
        assert_ne!(a, b);
        assert_eq!(m.heap_sites, 2);
    }

    #[test]
    fn global_init_is_stored() {
        let mut m = Module::new("m");
        let g = m.add_global_init("tbl", 4, vec![1, 2]);
        assert_eq!(m.global(g).init, vec![1, 2]);
        assert_eq!(m.global(g).cells, 4);
    }
}
