//! # encore-ir
//!
//! Mid-level compiler IR substrate for the Encore reproduction (Feng et
//! al., *Encore: Low-Cost, Fine-Grained Transient Fault Recovery*,
//! MICRO 2011).
//!
//! The original system was built as LLVM passes; this crate provides the
//! equivalent substrate from scratch: a small, executable, analyzable IR
//! with:
//!
//! * **virtual registers** (mutable, non-SSA — rollback re-execution needs
//!   plain mutable state),
//! * **symbolic memory** ([`AddrExpr`]: global / stack-slot / heap-site /
//!   pointer-register bases with constant or scaled-index offsets), the
//!   foundation for the static alias analysis in `encore-analysis`,
//! * **intra-procedural CFGs** of [`Block`]s with explicit [`Terminator`]s,
//! * Encore's four **instrumentation opcodes** (`SetRecovery`,
//!   `CheckpointMem`, `CheckpointReg`, `Restore`) with explicit
//!   dynamic-instruction costs,
//! * a structured [`ModuleBuilder`]/[`FunctionBuilder`] API, a
//!   [verifier](verify_module), and a round-trippable
//!   [printer](std::fmt::Display)/[parser](parse_module).
//!
//! # Examples
//!
//! Build, print, parse and verify a module:
//!
//! ```
//! use encore_ir::{ModuleBuilder, Operand, BinOp, AddrExpr, verify_module, parse_module};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let g = mb.global("counter", 1);
//! mb.function("bump", 0, |f| {
//!     let v = f.load(AddrExpr::global(g, 0));
//!     let v2 = f.bin(BinOp::Add, v.into(), Operand::ImmI(1));
//!     f.store(AddrExpr::global(g, 0), v2.into());
//!     f.ret(Some(v2.into()));
//! });
//! let m = mb.finish();
//! verify_module(&m).expect("structurally valid");
//! let reparsed = parse_module(&m.to_string())?;
//! assert_eq!(reparsed, m);
//! # Ok::<(), encore_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod builder;
mod display;
pub mod dot;
mod event;
mod function;
mod ids;
mod inst;
mod module;
mod parse;
mod verify;

pub use addr::{AddrExpr, MemBase, Offset};
pub use builder::{FunctionBuilder, ModuleBuilder};
pub use display::{block_set_to_string, func_name};
pub use event::{AccessKind, Cell, MemEvent, ObjKind};
pub use function::{Block, FuncSig, Function, SlotDecl};
pub use ids::{BlockId, FuncId, GlobalId, HeapId, InstRef, Reg, RegionId, SlotId};
pub use inst::{BinOp, ExtEffect, Inst, Operand, Terminator, UnOp};
pub use module::{GlobalDecl, Module};
pub use parse::{parse_module, ParseError};
pub use verify::{verify_module, VerifyError};
