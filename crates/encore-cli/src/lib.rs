//! # encore-cli
//!
//! Command implementations for the `encore-cli` binary. Each command is a
//! plain function from parsed arguments to an output string, so the whole
//! surface is unit-testable without spawning processes.
//!
//! The textual `.eir` format is the round-trippable form produced by
//! `Module`'s `Display` and consumed by [`encore_ir::parse_module`]; the
//! `demo` command exports any suite workload so the full flow works from
//! a shell:
//!
//! ```text
//! encore-cli demo rawcaudio > rc.eir
//! encore-cli analyze rc.eir --train-arg 128
//! encore-cli protect rc.eir --train-arg 128 -o rc-protected.eir
//! encore-cli sfi rc.eir --train-arg 128 --eval-arg 256 --injections 200
//! ```

#![warn(missing_docs)]

use encore_core::{dot_regions, Encore, EncoreConfig, EncoreOutcome};
use encore_ir::{parse_module, verify_module, FuncId, Module};
use encore_sim::{
    run_function, FaultModelKind, MaskingModel, RunConfig, SfiCampaign, SfiConfig, Value,
};
use std::fmt::Write as _;

/// A CLI-level error (bad arguments, parse/verify failures, runtime
/// traps), rendered to the user verbatim.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed common options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Entry function name (default: the module's last function).
    pub entry: Option<String>,
    /// Argument for training/profiling runs.
    pub train_arg: i64,
    /// Argument for evaluation runs.
    pub eval_arg: i64,
    /// Overhead budget.
    pub budget: f64,
    /// `Pmin` (None = no pruning).
    pub pmin: Option<f64>,
    /// Injection count for `sfi`.
    pub injections: usize,
    /// Detection latency bound.
    pub dmax: u64,
    /// Campaign seed for `sfi`; with `--workers`, results are
    /// bit-identical for any worker count.
    pub seed: u64,
    /// Worker threads for `sfi` (0 = all available cores).
    pub workers: usize,
    /// Golden-run checkpoint stride for `sfi` (dynamic instructions
    /// between snapshots; 0 = run every injection from scratch).
    /// Outcomes are bit-identical at every stride.
    pub snapshot_stride: u64,
    /// Worker threads for the pipeline's per-function analysis loop
    /// (0 = all available cores); output is bit-identical at any count.
    pub analysis_workers: usize,
    /// Divergence splicing for `sfi` (on by default; `--no-splice`
    /// disables it). A pure performance knob: outcomes and latency
    /// histograms are bit-identical either way.
    pub splice: bool,
    /// Incremental O(dirty) state compare for `sfi` splice probes (on
    /// by default; `--no-incremental-diff` falls back to full-scan
    /// diffs). A pure performance knob: reports are bit-identical
    /// either way.
    pub incremental_diff: bool,
    /// Fault model `sfi` samples plans from (`--fault-model`; default
    /// `bit-flip`).
    pub fault_model: FaultModelKind,
    /// Output path for commands that write files.
    pub output: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            entry: None,
            train_arg: 16,
            eval_arg: 32,
            budget: 0.20,
            pmin: Some(0.0),
            injections: 200,
            dmax: 100,
            seed: SfiConfig::default().seed,
            workers: 0,
            snapshot_stride: SfiConfig::default().snapshot_stride,
            analysis_workers: 0,
            splice: true,
            incremental_diff: true,
            fault_model: FaultModelKind::BitFlip,
            output: None,
        }
    }
}

impl Options {
    /// Parses `--key value` style flags.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] on unknown flags or malformed values.
    pub fn parse(args: &[String]) -> Result<(Vec<String>, Options), CliError> {
        let mut opts = Options::default();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = |name: &str| -> Result<&String, CliError> {
                it.next().ok_or_else(|| err(format!("{name} needs a value")))
            };
            match a.as_str() {
                "--entry" => opts.entry = Some(take("--entry")?.clone()),
                "--train-arg" => {
                    opts.train_arg =
                        take("--train-arg")?.parse().map_err(|e| err(format!("--train-arg: {e}")))?
                }
                "--eval-arg" => {
                    opts.eval_arg =
                        take("--eval-arg")?.parse().map_err(|e| err(format!("--eval-arg: {e}")))?
                }
                "--budget" => {
                    opts.budget =
                        take("--budget")?.parse().map_err(|e| err(format!("--budget: {e}")))?
                }
                "--pmin" => {
                    let v = take("--pmin")?;
                    opts.pmin = if v == "none" {
                        None
                    } else {
                        Some(v.parse().map_err(|e| err(format!("--pmin: {e}")))?)
                    };
                }
                "--injections" => {
                    opts.injections = take("--injections")?
                        .parse()
                        .map_err(|e| err(format!("--injections: {e}")))?
                }
                "--dmax" => {
                    opts.dmax =
                        take("--dmax")?.parse().map_err(|e| err(format!("--dmax: {e}")))?
                }
                "--seed" => {
                    opts.seed =
                        take("--seed")?.parse().map_err(|e| err(format!("--seed: {e}")))?
                }
                "--workers" => {
                    opts.workers = take("--workers")?
                        .parse()
                        .map_err(|e| err(format!("--workers: {e}")))?
                }
                "--snapshot-stride" => {
                    opts.snapshot_stride = take("--snapshot-stride")?
                        .parse()
                        .map_err(|e| err(format!("--snapshot-stride: {e}")))?
                }
                "--analysis-workers" => {
                    opts.analysis_workers = take("--analysis-workers")?
                        .parse()
                        .map_err(|e| err(format!("--analysis-workers: {e}")))?
                }
                "--no-splice" => opts.splice = false,
                "--no-incremental-diff" => opts.incremental_diff = false,
                "--fault-model" => {
                    let v = take("--fault-model")?;
                    opts.fault_model = FaultModelKind::parse(v).ok_or_else(|| {
                        err(format!(
                            "--fault-model: unknown model `{v}`; available: {}",
                            FaultModelKind::ALL
                                .iter()
                                .map(|m| m.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    })?;
                }
                "-o" | "--output" => opts.output = Some(take("-o")?.clone()),
                flag if flag.starts_with('-') => {
                    return Err(err(format!("unknown flag `{flag}`")))
                }
                pos => positional.push(pos.to_string()),
            }
        }
        Ok((positional, opts))
    }

    fn config(&self) -> EncoreConfig {
        EncoreConfig::default()
            .with_overhead_budget(self.budget)
            .with_pmin(self.pmin)
            .with_dmax(self.dmax)
            .with_analysis_workers(self.analysis_workers)
    }
}

/// Loads and verifies a module from `.eir` text.
///
/// # Errors
///
/// Returns a [`CliError`] on parse or verification failure.
pub fn load_module(text: &str) -> Result<Module, CliError> {
    let module = parse_module(text).map_err(|e| err(format!("parse error: {e}")))?;
    verify_module(&module).map_err(|es| {
        err(format!(
            "verification failed:\n{}",
            es.iter().map(|e| format!("  {e}")).collect::<Vec<_>>().join("\n")
        ))
    })?;
    Ok(module)
}

fn resolve_entry(module: &Module, opts: &Options) -> Result<FuncId, CliError> {
    match &opts.entry {
        Some(name) => module
            .func_by_name(name)
            .ok_or_else(|| err(format!("no function named `{name}`"))),
        None => {
            let last = module.funcs.len().checked_sub(1).ok_or_else(|| err("empty module"))?;
            Ok(encore_ir::FuncId::new(last as u32))
        }
    }
}

fn profile_module(
    module: &Module,
    entry: FuncId,
    arg: i64,
) -> Result<encore_analysis::Profile, CliError> {
    let run = run_function(
        module,
        None,
        entry,
        &[Value::Int(arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    if !run.completed {
        return Err(err(format!("training run trapped: {:?}", run.trap)));
    }
    Ok(run.profile.expect("profile requested"))
}

fn pipeline(module: &Module, opts: &Options) -> Result<(FuncId, EncoreOutcome), CliError> {
    let entry = resolve_entry(module, opts)?;
    let profile = profile_module(module, entry, opts.train_arg)?;
    Ok((entry, Encore::new(opts.config()).run(module, &profile)))
}

/// `print`: parse, verify and pretty-print a module.
///
/// # Errors
///
/// Propagates load failures.
pub fn cmd_print(text: &str) -> Result<String, CliError> {
    Ok(load_module(text)?.to_string())
}

/// `demo`: export a suite workload as `.eir` text. Accepts either a
/// plain workload name or a size-scaled spec like `rawdaudio@10x`.
///
/// # Errors
///
/// Fails for unknown workload names or malformed specs.
pub fn cmd_demo(name: &str) -> Result<String, CliError> {
    let w = encore_workloads::by_spec(name).ok_or_else(|| {
        err(format!(
            "unknown workload `{name}`; available: {} (append `@Nx` for a scaled variant, e.g. `rawdaudio@10x`)",
            encore_workloads::names().join(", ")
        ))
    })?;
    Ok(format!(
        "# workload {} ({}): {}\n# entry: {} — run with --entry or default (last function)\n# suggested: --train-arg {} --eval-arg {}\n{}",
        w.spec(),
        w.suite,
        w.description,
        w.module.func(w.entry).name,
        w.train_arg,
        w.eval_arg,
        w.module
    ))
}

/// `run`: execute a module and report the observable outcome.
///
/// # Errors
///
/// Propagates load failures and traps.
pub fn cmd_run(text: &str, opts: &Options) -> Result<String, CliError> {
    let module = load_module(text)?;
    let entry = resolve_entry(&module, opts)?;
    let r = run_function(
        &module,
        None,
        entry,
        &[Value::Int(opts.eval_arg)],
        &RunConfig::default(),
    );
    let mut out = String::new();
    let _ = writeln!(out, "entry:            {}", module.func(entry).name);
    let _ = writeln!(out, "completed:        {}", r.completed);
    if let Some(t) = &r.trap {
        let _ = writeln!(out, "trap:             {t}");
    }
    let _ = writeln!(out, "return value:     {:?}", r.ret);
    let _ = writeln!(out, "dynamic insts:    {}", r.dyn_insts);
    let _ = writeln!(out, "output channel:   {:?}", r.output);
    Ok(out)
}

/// `analyze`: profile + region/idempotence report.
///
/// # Errors
///
/// Propagates load/profiling failures.
pub fn cmd_analyze(text: &str, opts: &Options) -> Result<String, CliError> {
    let module = load_module(text)?;
    let (_, outcome) = pipeline(&module, opts)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>7} {:>34} {:>10} {:>8} {:>6}",
        "function", "header", "blocks", "verdict", "protected", "exec%", "ckpts"
    );
    for r in &outcome.reports {
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>7} {:>34} {:>10} {:>7.1}% {:>6}",
            r.func_name,
            r.header.to_string(),
            r.block_count,
            format!("{:?}", r.verdict),
            r.protected,
            r.exec_fraction * 100.0,
            r.mem_ckpts + r.reg_ckpts,
        );
    }
    let _ = writeln!(out, "\nestimated overhead: {:.1}%", outcome.est_overhead * 100.0);
    let _ = writeln!(
        out,
        "modeled coverage (Dmax={}): {:.1}%",
        opts.dmax,
        outcome.full_system.total() * 100.0
    );
    Ok(out)
}

/// `protect`: run the pipeline and return the instrumented module text.
///
/// # Errors
///
/// Propagates load/profiling failures.
pub fn cmd_protect(text: &str, opts: &Options) -> Result<String, CliError> {
    let module = load_module(text)?;
    let (_, outcome) = pipeline(&module, opts)?;
    let mut out = String::new();
    for info in &outcome.instrumented.map.regions {
        let _ = writeln!(
            out,
            "# region{} func fn{} header {} recovery {} protected {}",
            info.id.index(),
            info.func.index(),
            info.header,
            info.recovery_block.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            info.protected
        );
    }
    let _ = write!(out, "{}", outcome.instrumented.module);
    Ok(out)
}

/// `opt`: run the scalar optimization pipeline and return the improved
/// module text with a summary comment.
///
/// # Errors
///
/// Propagates load failures.
pub fn cmd_opt(text: &str) -> Result<String, CliError> {
    let mut module = load_module(text)?;
    let stats = encore_opt::optimize_module(&mut module);
    verify_module(&module).map_err(|es| err(format!("optimizer broke the module: {es:?}")))?;
    Ok(format!(
        "# optimized: {} -> {} static instructions ({:.1}% smaller) in {} iteration(s)
{}",
        stats.insts_before,
        stats.insts_after,
        stats.shrink_fraction() * 100.0,
        stats.iterations,
        module
    ))
}

/// `sfi`: full fault-injection campaign on the protected module.
///
/// # Errors
///
/// Propagates load/profiling failures.
pub fn cmd_sfi(text: &str, opts: &Options) -> Result<String, CliError> {
    let module = load_module(text)?;
    let (entry, outcome) = pipeline(&module, opts)?;
    let sfi = SfiConfig {
        injections: opts.injections,
        dmax: opts.dmax,
        seed: opts.seed,
        workers: opts.workers,
        snapshot_stride: opts.snapshot_stride,
        splice: opts.splice,
        incremental_diff: opts.incremental_diff,
        model: opts.fault_model,
        ..Default::default()
    };
    let campaign = SfiCampaign::prepare(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        entry,
        &[Value::Int(opts.eval_arg)],
        &sfi,
    )
    .map_err(|e| err(format!("cannot run campaign: {e} (is --eval-arg valid for this workload?)")))?;
    let report = campaign.run_report(&sfi);
    let stats = report.stats;
    let composed = MaskingModel::arm926().compose(&stats);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "seed: {:#x}  workers: {}  (same seed => bit-identical stats at any \
         worker count; replay injection i from (seed, i))",
        sfi.seed,
        sfi.effective_workers()
    );
    let _ = writeln!(out, "fault model:              {}", sfi.model);
    let _ = writeln!(out, "injections:               {}", stats.injections);
    let _ = writeln!(out, "benign (sw-masked):       {}", stats.benign);
    let _ = writeln!(out, "recovered by rollback:    {}", stats.recovered);
    let _ = writeln!(out, "silent corruption:        {}", stats.silent_corruption);
    let _ = writeln!(out, "detected, unrecoverable:  {}", stats.detected_unrecoverable);
    let _ = writeln!(out, "crashed:                  {}", stats.crashed);
    let _ = writeln!(out, "hung:                     {}", stats.hung);
    let _ = writeln!(out, "safe fraction:            {:.1}%", stats.safe_fraction() * 100.0);
    if sfi.splice {
        let s = report.splice;
        let _ = writeln!(
            out,
            "spliced early exits:      {} (converged {}, dead-diff {}, sdc {}); \
             {} golden-suffix insts skipped",
            s.total(),
            s.converged,
            s.dead_diff,
            s.sdc,
            s.dyn_insts_saved
        );
        let _ = writeln!(
            out,
            "splice probe cost:        {} probes, {} pages hashed, {} words compared{}",
            s.cost.probes,
            s.cost.pages_hashed,
            s.cost.words_compared,
            if sfi.incremental_diff { "" } else { " (full-scan reference path)" }
        );
    }
    let _ = writeln!(
        out,
        "with 91% hw masking:      {:.1}% total coverage",
        composed.total() * 100.0
    );
    Ok(out)
}

/// `dot`: Graphviz region overlay for every function.
///
/// # Errors
///
/// Propagates load/profiling failures.
pub fn cmd_dot(text: &str, opts: &Options) -> Result<String, CliError> {
    let module = load_module(text)?;
    let (_, outcome) = pipeline(&module, opts)?;
    let mut out = String::new();
    for (fid, _) in module.iter_funcs() {
        out.push_str(&dot_regions(&module, &outcome, fid));
        out.push('\n');
    }
    Ok(out)
}

/// Usage text.
pub fn usage() -> String {
    "encore-cli — Encore transient-fault recovery toolchain

USAGE:
    encore-cli <command> [file.eir] [flags]

COMMANDS:
    print    <file>   parse, verify, pretty-print
    run      <file>   execute (flags: --entry NAME --eval-arg N)
    analyze  <file>   profile + idempotence/region report
    protect  <file>   emit the checkpoint-instrumented module
    opt      <file>   run constfold/copyprop/DCE/LICM/simplify-cfg
    sfi      <file>   Monte-Carlo fault-injection campaign
    dot      <file>   Graphviz CFG with region overlay
    demo     <name>   export a suite workload as .eir (name or name@Nx, e.g. rawdaudio@10x)
    list              list suite workload names

FLAGS:
    --entry NAME        entry function (default: last function)
    --train-arg N       profiling input            (default 16)
    --eval-arg N        evaluation input           (default 32)
    --budget F          overhead budget            (default 0.20)
    --pmin F|none       pruning threshold          (default 0.0)
    --injections N      sfi fault count            (default 200)
    --dmax N            detection latency bound    (default 100)
    --seed N            sfi campaign seed (same seed reproduces the
                        campaign bit-for-bit at any worker count)
    --workers N         sfi worker threads         (default 0 = all cores)
    --snapshot-stride N sfi golden-run checkpoint stride in dynamic
                        instructions; injections resume from the nearest
                        checkpoint (default 256, 0 = from scratch;
                        outcomes are bit-identical at every stride)
    --analysis-workers N  pipeline analysis worker threads
                        (default 0 = all cores; output is bit-identical
                        at any worker count)
    --no-splice         disable sfi divergence splicing (early exit for
                        runs provably converged, dead-diff recovered or
                        silently corrupt); outcomes and latencies are
                        bit-identical with or without it
    --no-incremental-diff  compare splice probes by full state scans
                        instead of the O(dirty) page-hash path; reports
                        are bit-identical either way (reference path)
    --fault-model M     sfi fault model: bit-flip (default), multi-bit,
                        address, control-flow, power-failure
    -o, --output PATH   write output to a file
"
    .to_string()
}

/// Dispatches a full command line (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, bad flags, and all
/// command-level failures.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Ok(usage());
    };
    let (positional, opts) = Options::parse(&args[1..])?;
    let need_file = || -> Result<String, CliError> {
        let path = positional
            .first()
            .ok_or_else(|| err(format!("`{cmd}` needs a file argument")))?;
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))
    };
    let result = match cmd.as_str() {
        "print" => cmd_print(&need_file()?)?,
        "run" => cmd_run(&need_file()?, &opts)?,
        "analyze" => cmd_analyze(&need_file()?, &opts)?,
        "protect" => cmd_protect(&need_file()?, &opts)?,
        "opt" => cmd_opt(&need_file()?)?,
        "sfi" => cmd_sfi(&need_file()?, &opts)?,
        "dot" => cmd_dot(&need_file()?, &opts)?,
        "demo" => {
            let name = positional.first().ok_or_else(|| err("`demo` needs a workload name"))?;
            cmd_demo(name)?
        }
        "list" => encore_workloads::names().join("\n") + "\n",
        "help" | "--help" | "-h" => usage(),
        other => return Err(err(format!("unknown command `{other}`\n\n{}", usage()))),
    };
    if let Some(path) = &opts.output {
        std::fs::write(path, &result).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        Ok(format!("wrote {path}\n"))
    } else {
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_text(name: &str) -> String {
        cmd_demo(name).expect("demo works")
    }

    #[test]
    fn demo_exports_parseable_modules() {
        for name in ["rawcaudio", "172.mgrid", "164.gzip"] {
            let text = demo_text(name);
            let module = load_module(&text).expect("round-trips");
            assert!(!module.funcs.is_empty());
        }
    }

    #[test]
    fn demo_accepts_scaled_specs() {
        let text = demo_text("rawdaudio@10x");
        assert!(text.starts_with("# workload rawdaudio@10x"));
        let module = load_module(&text).expect("round-trips");
        let base = load_module(&demo_text("rawdaudio")).expect("round-trips");
        let cells = |m: &encore_ir::Module| m.globals.iter().map(|g| u64::from(g.cells)).sum::<u64>();
        assert_eq!(cells(&module), 10 * cells(&base));

        let err = cmd_demo("rawdaudio@0x").expect_err("zero scale is invalid");
        assert!(err.to_string().contains("@Nx"));
    }

    #[test]
    fn print_round_trips() {
        let text = demo_text("rawcaudio");
        let printed = cmd_print(&text).expect("prints");
        let reparsed = load_module(&printed).expect("parses again");
        assert_eq!(reparsed, load_module(&text).unwrap());
    }

    #[test]
    fn run_reports_outcome() {
        let text = demo_text("rawcaudio");
        let (_, opts) = Options::parse(&["--eval-arg".into(), "64".into()]).unwrap();
        let out = cmd_run(&text, &opts).expect("runs");
        assert!(out.contains("completed:        true"), "{out}");
        assert!(out.contains("dynamic insts"));
    }

    #[test]
    fn analyze_reports_regions() {
        let text = demo_text("rawcaudio");
        let (_, opts) =
            Options::parse(&["--train-arg".into(), "64".into()]).unwrap();
        let out = cmd_analyze(&text, &opts).expect("analyzes");
        assert!(out.contains("NonIdempotent"), "{out}");
        assert!(out.contains("estimated overhead"));
    }

    #[test]
    fn protect_emits_instrumented_verifiable_module() {
        let text = demo_text("rawcaudio");
        let (_, opts) = Options::parse(&["--train-arg".into(), "64".into()]).unwrap();
        let out = cmd_protect(&text, &opts).expect("protects");
        assert!(out.contains("setrecovery"), "{out}");
        assert!(out.contains("ckptmem"));
        // Comments + module text must still load.
        let module = load_module(&out).expect("instrumented text parses");
        assert!(module.funcs.iter().any(|f| f
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, encore_ir::Inst::Restore { .. })))));
    }

    #[test]
    fn opt_shrinks_and_roundtrips() {
        let text = demo_text("164.gzip");
        let out = cmd_opt(&text).expect("optimizes");
        assert!(out.starts_with("# optimized:"), "{}", &out[..60]);
        let module = load_module(&out).expect("optimized text parses");
        assert!(!module.funcs.is_empty());
    }

    #[test]
    fn sfi_runs_small_campaign() {
        let text = demo_text("rawcaudio");
        let (_, opts) = Options::parse(&[
            "--train-arg".into(),
            "64".into(),
            "--eval-arg".into(),
            "96".into(),
            "--injections".into(),
            "20".into(),
        ])
        .unwrap();
        let out = cmd_sfi(&text, &opts).expect("campaign runs");
        assert!(out.contains("injections:               20"), "{out}");
        assert!(out.contains("safe fraction"));
    }

    #[test]
    fn sfi_seed_and_workers_flags_reproduce_bit_identically() {
        let text = demo_text("rawcaudio");
        let args = |workers: &str| {
            Options::parse(&[
                "--train-arg".into(),
                "64".into(),
                "--eval-arg".into(),
                "96".into(),
                "--injections".into(),
                "24".into(),
                "--seed".into(),
                "42".into(),
                "--workers".into(),
                workers.into(),
            ])
            .unwrap()
            .1
        };
        let one = cmd_sfi(&text, &args("1")).expect("sequential campaign");
        let four = cmd_sfi(&text, &args("4")).expect("parallel campaign");
        // Identical modulo the reported worker count itself.
        let strip = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(strip(&one), strip(&four));
        assert!(one.contains("seed: 0x2a"), "{one}");
    }

    #[test]
    fn sfi_no_splice_flag_changes_nothing_but_the_splice_line() {
        let text = demo_text("rawcaudio");
        let base = vec![
            "--train-arg".to_string(),
            "64".into(),
            "--eval-arg".into(),
            "96".into(),
            "--injections".into(),
            "24".into(),
            "--seed".into(),
            "42".into(),
            "--workers".into(),
            "2".into(),
        ];
        let mut with_flag = base.clone();
        with_flag.push("--no-splice".into());
        let (_, on) = Options::parse(&base).unwrap();
        let (_, off) = Options::parse(&with_flag).unwrap();
        assert!(on.splice && !off.splice);
        let spliced = cmd_sfi(&text, &on).expect("spliced campaign");
        let plain = cmd_sfi(&text, &off).expect("unspliced campaign");
        assert!(spliced.contains("spliced early exits"), "{spliced}");
        assert!(!plain.contains("spliced early exits"), "{plain}");
        // Outcome lines agree; only the splice report (engagements +
        // probe cost) differs.
        let strip = |s: &str| {
            s.lines().filter(|l| !l.starts_with("splice")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(strip(&spliced), strip(&plain));
    }

    #[test]
    fn sfi_no_incremental_diff_flag_changes_only_probe_cost() {
        let text = demo_text("rawcaudio");
        let base = vec![
            "--train-arg".to_string(),
            "64".into(),
            "--eval-arg".into(),
            "96".into(),
            "--injections".into(),
            "24".into(),
            "--seed".into(),
            "42".into(),
            "--workers".into(),
            "2".into(),
        ];
        let mut with_flag = base.clone();
        with_flag.push("--no-incremental-diff".into());
        let (_, on) = Options::parse(&base).unwrap();
        let (_, off) = Options::parse(&with_flag).unwrap();
        assert!(on.incremental_diff && !off.incremental_diff);
        let fast = cmd_sfi(&text, &on).expect("incremental campaign");
        let slow = cmd_sfi(&text, &off).expect("full-scan campaign");
        assert!(slow.contains("full-scan reference path"), "{slow}");
        assert!(!fast.contains("full-scan reference path"), "{fast}");
        // Everything but the probe-cost footprint line is identical —
        // outcomes, latencies, and the splice engagement counts.
        let strip = |s: &str| {
            s.lines().filter(|l| !l.starts_with("splice probe cost")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(strip(&fast), strip(&slow));
    }

    #[test]
    fn sfi_fault_model_flag_selects_each_model() {
        let text = demo_text("rawcaudio");
        for model in FaultModelKind::ALL {
            let (_, opts) = Options::parse(&[
                "--train-arg".into(),
                "64".into(),
                "--eval-arg".into(),
                "96".into(),
                "--injections".into(),
                "10".into(),
                "--fault-model".into(),
                model.name().into(),
            ])
            .unwrap();
            assert_eq!(opts.fault_model, model);
            let out = cmd_sfi(&text, &opts).expect("campaign runs");
            assert!(out.contains(&format!("fault model:              {model}")), "{out}");
            assert!(out.contains("injections:               10"), "{out}");
        }
        let e = Options::parse(&["--fault-model".into(), "cosmic-ray".into()]).unwrap_err();
        assert!(e.to_string().contains("unknown model"));
    }

    #[test]
    fn dot_emits_digraphs() {
        let text = demo_text("rawcaudio");
        let (_, opts) = Options::parse(&["--train-arg".into(), "64".into()]).unwrap();
        let out = cmd_dot(&text, &opts).expect("dot");
        assert!(out.contains("digraph"));
        assert!(out.contains("subgraph cluster_0"));
    }

    #[test]
    fn unknown_flag_and_command_rejected() {
        assert!(Options::parse(&["--bogus".into()]).is_err());
        let e = dispatch(&["frobnicate".into()]).unwrap_err();
        assert!(e.0.contains("unknown command"));
    }

    #[test]
    fn dispatch_list_and_help() {
        let out = dispatch(&["list".into()]).unwrap();
        assert!(out.contains("rawcaudio"));
        let help = dispatch(&[]).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn entry_resolution() {
        let text = demo_text("175.vpr"); // two functions
        let (_, mut opts) = Options::parse(&[]).unwrap();
        opts.entry = Some("place".into());
        opts.train_arg = 50;
        let out = cmd_analyze(&text, &opts).expect("analyze with explicit entry");
        assert!(out.contains("try_swap"));
        opts.entry = Some("nonexistent".into());
        assert!(cmd_analyze(&text, &opts).is_err());
    }
}
