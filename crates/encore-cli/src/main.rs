//! Thin binary wrapper around [`encore_cli::dispatch`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match encore_cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
