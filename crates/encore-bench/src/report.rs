//! Plain-text table and JSON rendering for the experiment binaries.
//!
//! The harnesses print the same rows/series the paper's figures plot; a
//! small fixed-width table keeps the output diff-able and easy to paste
//! into `EXPERIMENTS.md`. Campaign results additionally render as
//! hand-rolled JSON ([`campaign_json`]) so downstream tooling can
//! consume a full SFI campaign — outcome counts plus per-outcome
//! detection-latency histograms — without any serialization dependency.

use encore_core::alpha_at_latency;
use encore_sim::{CampaignReport, FaultOutcome, SpliceRule, SpliceStats, LATENCY_BINS};

/// A fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(0);
                // Right-align numeric-looking cells, left-align text.
                if c.chars().next().map(|ch| ch.is_ascii_digit() || ch == '-').unwrap_or(false) {
                    line.push_str(&format!("{c:>w$}"));
                } else {
                    line.push_str(&format!("{c:<w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a full SFI campaign as a JSON object: configuration
/// (including the `(seed, …)` needed to replay any injection), outcome
/// counts, derived fractions, and the per-outcome detection-latency
/// histograms.
pub fn campaign_json(workload: &str, report: &CampaignReport) -> String {
    let c = &report.config;
    let s = &report.stats;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"workload\": \"{}\",\n", json_escape(workload)));
    out.push_str(&format!(
        "  \"config\": {{\"injections\": {}, \"dmax\": {}, \"seed\": {}, \
         \"fuel_factor\": {}, \"workers\": {}, \"snapshot_stride\": {}, \
         \"splice\": {}, \"incremental_diff\": {}, \"fault_model\": \"{}\"}},\n",
        c.injections,
        c.dmax,
        c.seed,
        c.fuel_factor,
        c.workers,
        c.snapshot_stride,
        c.splice,
        c.incremental_diff,
        c.model.label()
    ));
    out.push_str("  \"outcomes\": {");
    for (i, o) in FaultOutcome::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", o.label(), s.count(*o)));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "  \"safe_fraction\": {:.6},\n  \"recovered_fraction\": {:.6},\n",
        s.safe_fraction(),
        s.recovered_fraction()
    ));
    let sp = &report.splice;
    out.push_str(&format!(
        "  \"splice\": {{\"converged\": {}, \"dead_diff\": {}, \"sdc\": {}, \
         \"total\": {}, \"dyn_insts_saved\": {}, \"probes\": {}, \
         \"pages_hashed\": {}, \"words_compared\": {}}},\n",
        sp.converged,
        sp.dead_diff,
        sp.sdc,
        sp.total(),
        sp.dyn_insts_saved,
        sp.cost.probes,
        sp.cost.pages_hashed,
        sp.cost.words_compared
    ));
    out.push_str("  \"latency_histograms\": {\n");
    for (i, o) in FaultOutcome::ALL.iter().enumerate() {
        let h = report.latency_of(*o);
        let bins: Vec<String> = h.bins.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "    \"{}\": {{\"dmax\": {}, \"bins\": [{}]}}{}\n",
            o.label(),
            h.dmax,
            bins.join(", "),
            if i + 1 < FaultOutcome::ALL.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Tabulates recovery rate per detection-latency bin, cross-validating
/// the measured campaign against Eq. 6's point prediction
/// [`alpha_at_latency`] when a representative protected-region hot-path
/// length is supplied.
pub fn latency_table(report: &CampaignReport, hot_len: Option<u64>) -> Table {
    let mut header = vec!["latency", "injections", "recovered", "measured"];
    if hot_len.is_some() {
        header.push("Eq.6 predicts");
    }
    let mut table = Table::new(&header);
    let recovered = report.latency_of(FaultOutcome::Recovered);
    for bin in 0..LATENCY_BINS {
        let (lo, hi) = recovered.bin_range(bin);
        let total: u64 = FaultOutcome::ALL
            .iter()
            .map(|o| report.latency_of(*o).bins[bin])
            .sum();
        if total == 0 {
            continue;
        }
        // Benign outcomes never needed the rollback machinery, so the
        // recovery rate is measured among injections a detector acted on.
        let benign = report.latency_of(FaultOutcome::Benign).bins[bin];
        let active = total - benign;
        let rec = recovered.bins[bin];
        let mut row = vec![
            format!("[{lo}, {})", hi),
            total.to_string(),
            rec.to_string(),
            if active == 0 { "-".to_string() } else { pct(rec as f64 / active as f64) },
        ];
        if let Some(n) = hot_len {
            row.push(pct(alpha_at_latency(n, (lo + hi.saturating_sub(1)) / 2)));
        }
        table.row(row);
    }
    table
}

/// Tabulates the per-rule splice engagement breakdown of a campaign:
/// how many runs each early-exit rule certified, their share of all
/// injections, and (bottom row) the golden-suffix work skipped.
pub fn splice_table(injections: usize, splice: &SpliceStats) -> Table {
    let mut table = Table::new(&["splice rule", "runs", "share"]);
    let share = |n: usize| {
        if injections == 0 { "-".to_string() } else { pct(n as f64 / injections as f64) }
    };
    for rule in SpliceRule::ALL {
        let n = splice.count(rule);
        table.row(vec![rule.label().to_string(), n.to_string(), share(n)]);
    }
    table.row(vec!["total".to_string(), splice.total().to_string(), share(splice.total())]);
    table.row(vec![
        "suffix insts skipped".to_string(),
        splice.dyn_insts_saved.to_string(),
        "-".to_string(),
    ]);
    // Probe-cost footprint: what the splice paid for those savings.
    for (label, n) in [
        ("probes attempted", splice.cost.probes),
        ("pages hashed", splice.cost.pages_hashed),
        ("words compared", splice.cost.words_compared),
    ] {
        table.row(vec![label.to_string(), n.to_string(), "-".to_string()]);
    }
    table
}

/// Tabulates per-model outcome rows from one campaign report per fault
/// model (as produced by `SfiCampaign::run_models`): outcome counts and
/// the safe fraction, one row per model.
pub fn model_table(reports: &[CampaignReport]) -> Table {
    let mut table = Table::new(&[
        "model", "benign", "recovered", "SDC", "unrecov", "crashed", "hung", "safe",
    ]);
    for report in reports {
        let s = &report.stats;
        table.row(vec![
            report.model().to_string(),
            s.benign.to_string(),
            s.recovered.to_string(),
            s.silent_corruption.to_string(),
            s.detected_unrecoverable.to_string(),
            s.crashed.to_string(),
            s.hung.to_string(),
            pct(s.safe_fraction()),
        ]);
    }
    table
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1.0".into()]);
        t.row(vec!["beta-longer".into(), "23.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].contains("beta-longer"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(f2(1.005), "1.00");
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    fn tiny_report() -> CampaignReport {
        use encore_sim::{FaultPlan, SfiConfig};
        let config = SfiConfig { injections: 3, dmax: 15, seed: 9, ..Default::default() };
        let mut report = CampaignReport::new(config);
        report.record(FaultPlan::bit_flip(0, 0, 0), FaultOutcome::Recovered);
        report.record(FaultPlan::bit_flip(1, 1, 7), FaultOutcome::Benign);
        report.record(FaultPlan::bit_flip(2, 2, 15), FaultOutcome::SilentCorruption);
        report
    }

    #[test]
    fn campaign_json_is_complete_and_balanced() {
        let json = campaign_json("g721encode", &tiny_report());
        for key in [
            "\"workload\": \"g721encode\"",
            "\"seed\": 9",
            "\"snapshot_stride\":",
            "\"splice\": true",
            "\"fault_model\": \"bit_flip\"",
            "\"recovered\": 1",
            "\"benign\": 1",
            "\"silent_corruption\": 1",
            "\"splice\": {\"converged\": 0, \"dead_diff\": 0, \"sdc\": 0",
            "\"dyn_insts_saved\": 0",
            "\"incremental_diff\": true",
            "\"probes\": 0",
            "\"pages_hashed\": 0",
            "\"words_compared\": 0",
            "\"latency_histograms\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Structurally balanced (cheap sanity without a JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn splice_table_breaks_down_rules() {
        use encore_sim::ProbeCost;
        let splice = SpliceStats {
            converged: 2,
            dead_diff: 1,
            sdc: 5,
            dyn_insts_saved: 900,
            cost: ProbeCost { probes: 40, pages_hashed: 320, words_compared: 128 },
        };
        let rendered = splice_table(10, &splice).render();
        assert!(rendered.contains("converged"), "{rendered}");
        assert!(rendered.contains("dead_diff"), "{rendered}");
        assert!(rendered.contains("sdc"), "{rendered}");
        assert!(rendered.contains("80.0%"), "total share missing:\n{rendered}");
        assert!(rendered.contains("900"), "{rendered}");
        assert!(rendered.contains("probes attempted"), "{rendered}");
        assert!(rendered.contains("pages hashed"), "{rendered}");
        assert!(rendered.contains("words compared"), "{rendered}");
        assert!(rendered.contains("320"), "{rendered}");
    }

    #[test]
    fn model_table_has_one_row_per_report() {
        use encore_sim::{FaultModelKind, SfiConfig};
        let reports: Vec<CampaignReport> = FaultModelKind::ALL
            .iter()
            .map(|&model| CampaignReport::new(SfiConfig { model, ..Default::default() }))
            .collect();
        let rendered = model_table(&reports).render();
        // Header + separator + one row per model.
        assert_eq!(rendered.lines().count(), 2 + FaultModelKind::ALL.len(), "{rendered}");
        for model in FaultModelKind::ALL {
            assert!(rendered.contains(model.name()), "missing {model} row:\n{rendered}");
        }
    }

    #[test]
    fn latency_table_covers_all_recorded_bins() {
        let table = latency_table(&tiny_report(), Some(100));
        let rendered = table.render();
        // Three distinct latencies at dmax=15 land in three bins.
        assert_eq!(rendered.lines().count(), 2 + 3, "{rendered}");
        assert!(rendered.contains("Eq.6 predicts"));
    }
}
