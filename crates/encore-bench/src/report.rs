//! Plain-text table rendering for the experiment binaries.
//!
//! The harnesses print the same rows/series the paper's figures plot; a
//! small fixed-width table keeps the output diff-able and easy to paste
//! into `EXPERIMENTS.md`.

/// A fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(0);
                // Right-align numeric-looking cells, left-align text.
                if c.chars().next().map(|ch| ch.is_ascii_digit() || ch == '-').unwrap_or(false) {
                    line.push_str(&format!("{c:>w$}"));
                } else {
                    line.push_str(&format!("{c:<w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1.0".into()]);
        t.row(vec!["beta-longer".into(), "23.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].contains("beta-longer"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(f2(1.005), "1.00");
    }
}
