//! # encore-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! Encore paper. Each experiment is a binary (`fig1`, `fig5`, `fig6`,
//! `fig7a`, `fig7b`, `fig8`, `table1`, `experiments`); this library holds
//! the shared driver: profile a workload on its training input, run the
//! Encore pipeline, execute the instrumented module on the evaluation
//! input, and measure rather than estimate whatever can be measured.

#![warn(missing_docs)]

pub mod report;

use encore_analysis::Profile;
use encore_core::{Encore, EncoreConfig, EncoreOutcome};
use encore_sim::{run_function, RunConfig, RunResult, Value};
use encore_workloads::Workload;

/// A workload with its training profile and baseline evaluation run.
#[derive(Debug)]
pub struct PreparedWorkload {
    /// The workload (module + inputs).
    pub workload: Workload,
    /// Profile collected on the training input.
    pub profile: Profile,
    /// Uninstrumented run on the evaluation input (the overhead
    /// baseline and golden reference).
    pub baseline: RunResult,
}

/// Profiles `workload` on its training input and runs the evaluation
/// baseline.
///
/// # Panics
///
/// Panics if either run traps — workloads must be fault-free.
pub fn prepare(workload: Workload) -> PreparedWorkload {
    let train = run_function(
        &workload.module,
        None,
        workload.entry,
        &[Value::Int(workload.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    assert!(
        train.completed,
        "{}: training run trapped: {:?}",
        workload.name, train.trap
    );
    let baseline = run_function(
        &workload.module,
        None,
        workload.entry,
        &[Value::Int(workload.eval_arg)],
        &RunConfig::default(),
    );
    assert!(
        baseline.completed,
        "{}: baseline run trapped: {:?}",
        workload.name, baseline.trap
    );
    let profile = train.profile.clone().expect("profile requested");
    PreparedWorkload { workload, profile, baseline }
}

/// Pipeline output plus *measured* runtime overhead.
#[derive(Debug)]
pub struct EncoreRun {
    /// The compiler pipeline's outcome (analysis, selection,
    /// instrumentation, models).
    pub outcome: EncoreOutcome,
    /// Instrumented-module run on the evaluation input.
    pub instrumented_run: RunResult,
    /// Measured runtime overhead: extra dynamic instructions of the
    /// instrumented evaluation run relative to the baseline.
    pub measured_overhead: f64,
}

/// Runs the Encore pipeline on a prepared workload and measures the
/// actual instrumented-run overhead on the evaluation input.
///
/// # Panics
///
/// Panics if the instrumented run traps or diverges observably from the
/// baseline — instrumentation must be semantics-preserving.
pub fn encore_run(prepared: &PreparedWorkload, config: &EncoreConfig) -> EncoreRun {
    let outcome = Encore::new(config.clone()).run(&prepared.workload.module, &prepared.profile);
    let instrumented_run = run_function(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        prepared.workload.entry,
        &[Value::Int(prepared.workload.eval_arg)],
        &RunConfig::default(),
    );
    assert!(
        instrumented_run.completed,
        "{}: instrumented run trapped: {:?}",
        prepared.workload.name, instrumented_run.trap
    );
    assert!(
        instrumented_run.observably_equal(&prepared.baseline),
        "{}: instrumentation changed program semantics",
        prepared.workload.name
    );
    let base = prepared.baseline.dyn_insts.max(1) as f64;
    let measured_overhead = (instrumented_run.dyn_insts as f64 - base) / base;
    EncoreRun { outcome, instrumented_run, measured_overhead }
}

/// Prepares every workload (in figure order).
pub fn prepare_all() -> Vec<PreparedWorkload> {
    encore_workloads::all().into_iter().map(prepare).collect()
}

/// Parses a `--workloads a,b,c` filter from argv; `None` = all.
pub fn workload_filter() -> Option<Vec<String>> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--workloads").map(|i| {
        args.get(i + 1)
            .map(|s| s.split(',').map(str::to_string).collect())
            .unwrap_or_default()
    })
}

/// Applies the `--workloads` filter to the full suite.
pub fn selected_workloads() -> Vec<Workload> {
    let all = encore_workloads::all();
    match workload_filter() {
        None => all,
        Some(names) => all
            .into_iter()
            .filter(|w| names.iter().any(|n| n == w.name))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_run_one_workload() {
        let w = encore_workloads::by_name("rawcaudio").expect("exists");
        let prepared = prepare(w);
        assert!(prepared.profile.total_dyn_insts > 0);
        let run = encore_run(&prepared, &EncoreConfig::default());
        assert!(run.measured_overhead >= 0.0);
        assert!(run.instrumented_run.completed);
    }
}
