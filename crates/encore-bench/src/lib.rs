//! # encore-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! Encore paper. Each experiment is a binary (`fig1`, `fig5`, `fig6`,
//! `fig7a`, `fig7b`, `fig8`, `table1`, `experiments`); this library holds
//! the shared driver: profile a workload on its training input, run the
//! Encore pipeline, execute the instrumented module on the evaluation
//! input, and measure rather than estimate whatever can be measured.

#![warn(missing_docs)]

pub mod microbench;
pub mod report;

use encore_analysis::Profile;
use encore_core::{Encore, EncoreConfig, EncoreOutcome};
use encore_sim::{run_function, RunConfig, RunResult, Value};
use encore_workloads::Workload;

/// A workload with its training profile and baseline evaluation run.
#[derive(Debug)]
pub struct PreparedWorkload {
    /// The workload (module + inputs).
    pub workload: Workload,
    /// Profile collected on the training input.
    pub profile: Profile,
    /// Uninstrumented run on the evaluation input (the overhead
    /// baseline and golden reference).
    pub baseline: RunResult,
}

/// Profiles `workload` on its training input and runs the evaluation
/// baseline.
///
/// # Panics
///
/// Panics if either run traps — workloads must be fault-free.
pub fn prepare(workload: Workload) -> PreparedWorkload {
    let train = run_function(
        &workload.module,
        None,
        workload.entry,
        &[Value::Int(workload.train_arg)],
        &RunConfig { collect_profile: true, ..Default::default() },
    );
    assert!(
        train.completed,
        "{}: training run trapped: {:?}",
        workload.name, train.trap
    );
    let baseline = run_function(
        &workload.module,
        None,
        workload.entry,
        &[Value::Int(workload.eval_arg)],
        &RunConfig::default(),
    );
    assert!(
        baseline.completed,
        "{}: baseline run trapped: {:?}",
        workload.name, baseline.trap
    );
    let profile = train.profile.clone().expect("profile requested");
    PreparedWorkload { workload, profile, baseline }
}

/// Pipeline output plus *measured* runtime overhead.
#[derive(Debug)]
pub struct EncoreRun {
    /// The compiler pipeline's outcome (analysis, selection,
    /// instrumentation, models).
    pub outcome: EncoreOutcome,
    /// Instrumented-module run on the evaluation input.
    pub instrumented_run: RunResult,
    /// Measured runtime overhead: extra dynamic instructions of the
    /// instrumented evaluation run relative to the baseline.
    pub measured_overhead: f64,
}

/// Runs the Encore pipeline on a prepared workload and measures the
/// actual instrumented-run overhead on the evaluation input.
///
/// # Panics
///
/// Panics if the instrumented run traps or diverges observably from the
/// baseline — instrumentation must be semantics-preserving.
pub fn encore_run(prepared: &PreparedWorkload, config: &EncoreConfig) -> EncoreRun {
    let outcome = Encore::new(config.clone()).run(&prepared.workload.module, &prepared.profile);
    let instrumented_run = run_function(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        prepared.workload.entry,
        &[Value::Int(prepared.workload.eval_arg)],
        &RunConfig::default(),
    );
    assert!(
        instrumented_run.completed,
        "{}: instrumented run trapped: {:?}",
        prepared.workload.name, instrumented_run.trap
    );
    assert!(
        instrumented_run.observably_equal(&prepared.baseline),
        "{}: instrumentation changed program semantics",
        prepared.workload.name
    );
    let base = prepared.baseline.dyn_insts.max(1) as f64;
    let measured_overhead = (instrumented_run.dyn_insts as f64 - base) / base;
    EncoreRun { outcome, instrumented_run, measured_overhead }
}

/// Prepares every workload (in figure order).
pub fn prepare_all() -> Vec<PreparedWorkload> {
    encore_workloads::all().into_iter().map(prepare).collect()
}

/// Parses a `--workloads a,b,c` filter from argv; `None` = all.
pub fn workload_filter() -> Option<Vec<String>> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--workloads").map(|i| {
        args.get(i + 1)
            .map(|s| s.split(',').filter(|p| !p.is_empty()).map(str::to_string).collect())
            .unwrap_or_default()
    })
}

/// A `--workloads` filter that matched nothing it named.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnknownWorkloads(pub Vec<String>);

impl std::fmt::Display for UnknownWorkloads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let accepted = format!(
            "known workloads: {}; also accepted: suite selectors ({}) and `name@Nx` \
             scaled variants (e.g. `rawdaudio@10x`)",
            encore_workloads::names().join(", "),
            encore_workloads::Suite::all().map(|s| s.label()).join(", "),
        );
        if self.0.is_empty() {
            return write!(f, "--workloads selected nothing; {accepted}");
        }
        write!(
            f,
            "unknown workload selector{} {}; {accepted}",
            if self.0.len() == 1 { "" } else { "s" },
            self.0.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(", "),
        )
    }
}

impl std::error::Error for UnknownWorkloads {}

/// Resolves a workload filter against the full suite. `None` selects
/// everything; otherwise each selector is a suite label
/// (`SPEC2K-INT`, any case), a workload name (paper spelling) or a
/// scaled spelling `name@Nx` (e.g. `rawdaudio@10x`). Duplicates
/// collapse and the result is in figure order (scale ascending within
/// a name) regardless of filter order. Any selector that matches
/// nothing is an error (a typo used to silently produce an empty suite
/// and experiment binaries that printed empty tables).
///
/// # Errors
///
/// Returns [`UnknownWorkloads`] listing every unmatched selector, or
/// with an empty list when the filter itself selects nothing.
pub fn select_workloads(filter: Option<&[String]>) -> Result<Vec<Workload>, UnknownWorkloads> {
    let all = encore_workloads::all();
    let Some(selectors) = filter else { return Ok(all) };
    let mut unknown = Vec::new();
    let mut picked: Vec<Workload> = Vec::new();
    let push_unique = |w: Workload, picked: &mut Vec<Workload>| {
        if !picked.iter().any(|p| p.name == w.name && p.scale == w.scale) {
            picked.push(w);
        }
    };
    for sel in selectors {
        if let Some(suite) = encore_workloads::Suite::parse(sel) {
            for w in all.iter().filter(|w| w.suite == suite) {
                push_unique(w.clone(), &mut picked);
            }
        } else if let Some(w) = encore_workloads::by_spec(sel) {
            push_unique(w, &mut picked);
        } else {
            unknown.push(sel.clone());
        }
    }
    if !unknown.is_empty() {
        return Err(UnknownWorkloads(unknown));
    }
    if picked.is_empty() {
        return Err(UnknownWorkloads(Vec::new()));
    }
    picked.sort_by_key(|w| {
        (all.iter().position(|a| a.name == w.name).unwrap_or(usize::MAX), w.scale)
    });
    Ok(picked)
}

/// Applies the `--workloads` argv filter to the full suite, exiting
/// with a diagnostic (rather than silently running nothing) when the
/// filter names unknown workloads.
pub fn selected_workloads() -> Vec<Workload> {
    let filter = workload_filter();
    match select_workloads(filter.as_deref()) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_workloads_resolves_and_rejects() {
        // No filter: the whole suite.
        let all = select_workloads(None).expect("full suite");
        assert_eq!(all.len(), encore_workloads::all().len());

        // A valid subset, in suite order regardless of filter order.
        let names = vec!["g721encode".to_string(), "rawcaudio".to_string()];
        let picked = select_workloads(Some(&names)).expect("known names");
        let picked_names: Vec<&str> = picked.iter().map(|w| w.name).collect();
        assert_eq!(picked_names.len(), 2);
        assert!(picked_names.contains(&"rawcaudio") && picked_names.contains(&"g721encode"));

        // Typos are reported, not silently dropped.
        let bad = vec!["rawcaudio".to_string(), "g721encoed".to_string()];
        let err = select_workloads(Some(&bad)).expect_err("typo must error");
        assert_eq!(err.0, vec!["g721encoed".to_string()]);
        assert!(err.to_string().contains("g721encoed"));
        assert!(err.to_string().contains("known workloads"));

        // An empty filter list selects nothing — also an error.
        let err = select_workloads(Some(&[])).expect_err("empty filter must error");
        assert!(err.0.is_empty());
        assert!(err.to_string().contains("selected nothing"));
    }

    #[test]
    fn select_workloads_accepts_suites_and_scaled_specs() {
        // A suite selector expands to that suite, in figure order.
        let sel = vec!["MEDIABENCH".to_string()];
        let media = select_workloads(Some(&sel)).expect("suite selector");
        let expected: Vec<&str> = encore_workloads::all()
            .iter()
            .filter(|w| w.suite == encore_workloads::Suite::Mediabench)
            .map(|w| w.name)
            .collect();
        assert_eq!(media.iter().map(|w| w.name).collect::<Vec<_>>(), expected);

        // `name@Nx` selects a scaled variant; a suite plus one of its
        // members at a different scale dedupes by (name, scale) and
        // sorts scale-ascending within the name.
        let sel = vec![
            "rawdaudio@10x".to_string(),
            "mediabench".to_string(),
            "rawdaudio@10x".to_string(),
        ];
        let picked = select_workloads(Some(&sel)).expect("suite + scaled spec");
        assert_eq!(picked.len(), expected.len() + 1);
        let specs: Vec<String> = picked.iter().map(|w| w.spec()).collect();
        let base = specs.iter().position(|s| s == "rawdaudio").expect("1x present");
        assert_eq!(specs[base + 1], "rawdaudio@10x");

        // Malformed scale suffixes are unknown selectors, and the error
        // advertises the accepted spellings.
        let bad = vec!["rawdaudio@0x".to_string(), "rawdaudio@tenx".to_string()];
        let err = select_workloads(Some(&bad)).expect_err("bad specs must error");
        assert_eq!(err.0, bad);
        let msg = err.to_string();
        assert!(msg.contains("name@Nx") && msg.contains("MEDIABENCH"));
    }

    #[test]
    fn prepare_and_run_one_workload() {
        let w = encore_workloads::by_name("rawcaudio").expect("exists");
        let prepared = prepare(w);
        assert!(prepared.profile.total_dyn_insts > 0);
        let run = encore_run(&prepared, &EncoreConfig::default());
        assert!(run.measured_overhead >= 0.0);
        assert!(run.instrumented_run.completed);
    }
}
