//! A dependency-free microbenchmark harness.
//!
//! Replaces Criterion for this workspace's `benches/` so `cargo bench`
//! works fully offline. The methodology is deliberately simple: each
//! benchmark is auto-calibrated to a target batch duration, run for a
//! fixed number of timed iterations, and summarized by min / median /
//! mean wall-clock time per iteration. No statistics beyond that — the
//! benches exist to expose order-of-magnitude regressions and the
//! parallel-campaign speedup, not microsecond-level noise.
//!
//! ```no_run
//! let mut bench = encore_bench::microbench::Microbench::new("demo");
//! bench.bench("nothing", || 1 + 1);
//! bench.finish();
//! ```

use crate::report::Table;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing summary of one benchmark.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark label.
    pub name: String,
    /// Timed iterations performed.
    pub iters: u32,
    /// Fastest iteration, in nanoseconds.
    pub min_ns: f64,
    /// Median iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean iteration, in nanoseconds.
    pub mean_ns: f64,
}

/// Renders nanoseconds with an adaptive unit.
fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of microbenchmarks, rendered as one table.
#[derive(Debug)]
pub struct Microbench {
    title: String,
    target: Duration,
    max_iters: u32,
    samples: Vec<Sample>,
}

impl Microbench {
    /// A group with the default per-benchmark time budget (~1 s).
    pub fn new(title: &str) -> Self {
        Self::with_budget(title, Duration::from_millis(1000), 200)
    }

    /// A group with an explicit time budget and iteration cap.
    pub fn with_budget(title: &str, target: Duration, max_iters: u32) -> Self {
        Self { title: title.to_string(), target, max_iters, samples: Vec::new() }
    }

    /// Times `f`, auto-calibrating the iteration count so the whole
    /// benchmark stays near the group's time budget. Returns the
    /// summary (also retained for [`Microbench::finish`]).
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Sample {
        // One untimed warmup, also used to calibrate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(3, self.max_iters as u128)
            as u32;

        let mut times_ns: Vec<f64> = (0..iters)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_nanos() as f64
            })
            .collect();
        times_ns.sort_by(|a, b| a.total_cmp(b));
        let sample = Sample {
            name: name.to_string(),
            iters,
            min_ns: times_ns[0],
            median_ns: times_ns[times_ns.len() / 2],
            mean_ns: times_ns.iter().sum::<f64>() / times_ns.len() as f64,
        };
        self.samples.push(sample);
        self.samples.last().expect("just pushed")
    }

    /// Prints the group's results as an aligned table. When the
    /// `ENCORE_BENCH_JSON` environment variable names a file, the
    /// group's samples are additionally appended to it as one JSON
    /// object per line (`scripts/bench.sh` uses this to produce the
    /// machine-readable `BENCH_analysis.json`). `ENCORE_BENCH_LABEL`,
    /// when set, is recorded in each emitted line so before/after rows
    /// in the same file stay distinguishable.
    pub fn finish(self) {
        println!("\n## {}\n", self.title);
        let mut table = Table::new(&["benchmark", "iters", "min", "median", "mean"]);
        for s in &self.samples {
            table.row(vec![
                s.name.clone(),
                s.iters.to_string(),
                human_ns(s.min_ns),
                human_ns(s.median_ns),
                human_ns(s.mean_ns),
            ]);
        }
        println!("{}", table.render());
        if let Ok(path) = std::env::var("ENCORE_BENCH_JSON") {
            if !path.is_empty() {
                if let Err(e) = self.append_json(&path) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
        }
    }

    /// Appends this group as a JSON line to `path`.
    fn append_json(&self, path: &str) -> std::io::Result<()> {
        use std::io::Write;
        let mut out = String::new();
        out.push_str(&format!("{{\"suite\": {:?}, ", self.title));
        if let Ok(label) = std::env::var("ENCORE_BENCH_LABEL") {
            if !label.is_empty() {
                out.push_str(&format!("\"label\": {label:?}, "));
            }
        }
        out.push_str("\"benchmarks\": [");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {:?}, \"iters\": {}, \"min_ns\": {:.1}, \
                 \"median_ns\": {:.1}, \"mean_ns\": {:.1}}}",
                s.name, s.iters, s.min_ns, s.median_ns, s.mean_ns
            ));
        }
        out.push_str("]}\n");
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(out.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_summary() {
        let mut mb = Microbench::with_budget("t", Duration::from_millis(5), 16);
        let s = mb.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(s.iters >= 3 && s.iters <= 16);
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.mean_ns * 2.0);
    }

    #[test]
    fn human_units() {
        assert_eq!(human_ns(500.0), "500 ns");
        assert_eq!(human_ns(2_500.0), "2.50 us");
        assert_eq!(human_ns(3_000_000.0), "3.00 ms");
        assert_eq!(human_ns(1.5e9), "1.50 s");
    }
}
