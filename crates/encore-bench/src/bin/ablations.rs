//! Ablation study: what each design choice of Encore buys, measured by
//! real fault injection on a representative workload subset.
//!
//! 1. **Register checkpoints** (§3.2): eliding the live-in saves turns
//!    many successful recoveries into silent corruptions.
//! 2. **Region merging (η)**: disabling merging (η → ∞) fragments
//!    regions, raising arming overhead and shrinking recovery windows.
//! 3. **Region size cap**: capping merged-region activations shows the
//!    granularity/coverage trade-off behind Table 1's 100–1000 regime.
//! 4. **Pmin pruning** (§3.4.1): disabling pruning leaves cold
//!    diagnostics poisoning otherwise protectable regions.
//!
//! Usage: `ablations [--workloads a,b,c] [--sfi N] [--fault-model M]`
//! — `M` selects the fault model campaigns sample from (`bit-flip`,
//! `multi-bit`, `address`, `control-flow`, `power-failure`; default
//! `bit-flip`), so each ablation's coverage cost can be measured under
//! any member of the taxonomy.

use encore_bench::report::{banner, pct, Table};
use encore_bench::{encore_run, prepare, selected_workloads};
use encore_core::EncoreConfig;
use encore_sim::{FaultModelKind, SfiCampaign, SfiConfig, Value};

const DEFAULT_SUBSET: [&str; 5] = ["164.gzip", "rawcaudio", "172.mgrid", "183.equake", "cjpeg"];

fn sfi_n() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--sfi")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(150)
}

fn fault_model() -> FaultModelKind {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--fault-model")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            FaultModelKind::parse(s).unwrap_or_else(|| {
                eprintln!(
                    "error: unknown fault model `{s}`; available: {}",
                    FaultModelKind::ALL
                        .iter()
                        .map(|m| m.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            })
        })
        .unwrap_or_default()
}

fn main() {
    banner("Ablation study (SFI-measured)");
    let injections = sfi_n();
    let model = fault_model();
    println!("fault model: {model}");

    let configs: [(&str, EncoreConfig); 5] = [
        ("baseline", EncoreConfig::default()),
        ("no reg ckpts (unsound)", EncoreConfig::default().with_elided_reg_ckpts()),
        ("no merging (eta=1e12)", EncoreConfig::default().with_eta(1e12)),
        ("region cap = 200", EncoreConfig::default().with_max_region_len(200.0)),
        ("no pruning (Pmin=∅)", EncoreConfig::default().with_pmin(None)),
    ];

    let workloads: Vec<_> = {
        let selected = selected_workloads();
        let explicit = std::env::args().any(|a| a == "--workloads");
        selected
            .into_iter()
            .filter(|w| explicit || DEFAULT_SUBSET.contains(&w.name))
            .collect()
    };

    let mut table = Table::new(&[
        "workload", "configuration", "protected", "overhead", "SFI safe",
    ]);
    let mut deltas: Vec<(String, f64)> = Vec::new();

    for w in workloads {
        let name = w.name;
        let prepared = prepare(w);
        // Run every ablated pipeline up front, then share one campaign
        // preparation (golden run + checkpoint log + suffix summaries)
        // across configurations whose instrumentation came out
        // identical — several ablations are no-ops on some workloads.
        let runs: Vec<_> =
            configs.iter().map(|(label, config)| (label, config, encore_run(&prepared, config))).collect();
        let mut cached: Option<(usize, SfiCampaign)> = None;
        let mut baseline_safe = None;
        for (i, (label, config, run)) in runs.iter().enumerate() {
            let sfi = SfiConfig { injections, dmax: config.dmax, model, ..Default::default() };
            let reusable = cached.as_ref().is_some_and(|&(j, _)| {
                runs[j].2.outcome.instrumented.module == run.outcome.instrumented.module
                    && runs[j].2.outcome.instrumented.map == run.outcome.instrumented.map
            });
            if !reusable {
                let campaign = SfiCampaign::prepare(
                    &run.outcome.instrumented.module,
                    Some(&run.outcome.instrumented.map),
                    prepared.workload.entry,
                    &[Value::Int(prepared.workload.eval_arg)],
                    &sfi,
                )
                .expect("golden run completes");
                cached = Some((i, campaign));
            }
            let safe = cached.as_ref().expect("campaign just cached").1.run(&sfi).safe_fraction();
            table.row(vec![
                name.to_string(),
                label.to_string(),
                pct(run.outcome.breakdown.protected_fraction()),
                pct(run.measured_overhead),
                pct(safe),
            ]);
            match baseline_safe {
                None => baseline_safe = Some(safe),
                Some(base) => deltas.push((format!("{name}/{label}"), safe - base)),
            }
        }
    }
    println!("{}", table.render());

    println!("SFI-safe delta vs. baseline (negative = the ablated feature was earning coverage):");
    for (label, d) in deltas {
        println!("  {label:<44} {:+.1} pts", d * 100.0);
    }
    println!(
        "\nReading: eliding register checkpoints keeps the overhead but turns\n\
         recoveries into corruptions; disabling merging/pruning shrinks the\n\
         protected fraction; the region cap trades arming overhead against\n\
         recovery-window length."
    );
}
