//! Figure 7a: runtime performance overhead under the conservative
//! static alias analysis vs. the optimistic (future dynamic-analysis)
//! lower bound. Overheads are *measured*: the instrumented module runs
//! on the evaluation input and its extra dynamic instructions are
//! compared against the uninstrumented baseline — the same
//! dynamic-instruction metric the paper uses (§4.3).
//!
//! Usage: `fig7a [--workloads a,b,c]`

use encore_analysis::AliasMode;
use encore_bench::report::{banner, pct, Table};
use encore_bench::{encore_run, prepare, selected_workloads};
use encore_core::EncoreConfig;
use encore_workloads::Suite;

fn main() {
    banner("Figure 7a: runtime overhead, static vs. optimistic alias analysis");

    let mut table = Table::new(&[
        "workload",
        "static alias",
        "optimistic alias",
        "profiled alias",
    ]);
    let mut suite_acc: std::collections::BTreeMap<Suite, (f64, f64, f64, usize)> =
        Default::default();
    let mut all_static = Vec::new();
    let mut all_opt = Vec::new();
    let mut all_prof = Vec::new();

    for w in selected_workloads() {
        let suite = w.suite;
        let name = w.name;
        let prepared = prepare(w);
        let stat =
            encore_run(&prepared, &EncoreConfig::default().with_alias(AliasMode::Static));
        let opt =
            encore_run(&prepared, &EncoreConfig::default().with_alias(AliasMode::Optimistic));
        let prof =
            encore_run(&prepared, &EncoreConfig::default().with_alias(AliasMode::Profiled));
        table.row(vec![
            name.to_string(),
            pct(stat.measured_overhead),
            pct(opt.measured_overhead),
            pct(prof.measured_overhead),
        ]);
        let e = suite_acc.entry(suite).or_insert((0.0, 0.0, 0.0, 0));
        e.0 += stat.measured_overhead;
        e.1 += opt.measured_overhead;
        e.2 += prof.measured_overhead;
        e.3 += 1;
        all_static.push(stat.measured_overhead);
        all_opt.push(opt.measured_overhead);
        all_prof.push(prof.measured_overhead);
    }
    println!("{}", table.render());

    let mut means = Table::new(&["suite", "static", "optimistic", "profiled"]);
    for suite in Suite::all() {
        if let Some((s, o, p, n)) = suite_acc.get(&suite) {
            let n = *n as f64;
            means.row(vec![
                suite.label().to_string(),
                pct(s / n),
                pct(o / n),
                pct(p / n),
            ]);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    means.row(vec![
        "ALL".to_string(),
        pct(mean(&all_static)),
        pct(mean(&all_opt)),
        pct(mean(&all_prof)),
    ]);
    println!("Suite means:");
    println!("{}", means.render());
    println!(
        "Expected shape: overheads stay under the ~20% budget (paper mean: 14%\n\
         static); the optimistic oracle is the lower bound; the\n\
         profile-guided oracle recovers the arena-style workloads\n\
         (177.mesa, 183.equake) whose observed footprints are disjoint.\n\
         A 0.0% bar can mean *forfeited coverage*, not free protection:\n\
         mesa under the static oracle is too expensive to instrument at\n\
         all — the paper's 'could not meet the target without significant\n\
         reductions in recoverability coverage' case. Cross-check Fig. 6."
    );
}
