//! Figure 1: fraction of dynamic instruction traces that are inherently
//! idempotent, as a function of trace (window) length, plus the
//! "Idempotence Target" curve Encore aims for via statistical
//! idempotence.
//!
//! Usage: `fig1 [--workloads a,b,c]`

use encore_bench::report::{banner, pct, Table};
use encore_bench::selected_workloads;
use encore_core::trace::TraceIdempotence;
use encore_sim::{run_function, RunConfig, Value};

const WINDOWS: [u64; 7] = [10, 20, 50, 100, 200, 500, 1000];

fn main() {
    banner("Figure 1: inherent idempotence of dynamic traces vs. trace length");

    let workloads = selected_workloads();
    let mut per_window: Vec<(u64, Vec<f64>, Vec<f64>)> =
        WINDOWS.iter().map(|w| (*w, Vec::new(), Vec::new())).collect();

    let mut detail = Table::new(
        &std::iter::once("workload")
            .chain(WINDOWS.iter().map(|w| {
                // Leak tiny strings for header lifetimes; fine in a CLI.
                let s: &'static str = Box::leak(format!("L={w}").into_boxed_str());
                s
            }))
            .collect::<Vec<_>>(),
    );

    for w in &workloads {
        let run = run_function(
            &w.module,
            None,
            w.entry,
            &[Value::Int(w.eval_arg)],
            &RunConfig { collect_trace: true, ..Default::default() },
        );
        assert!(run.completed, "{} trapped", w.name);
        let trace = run.trace.expect("trace");
        let mut cells = vec![w.name.to_string()];
        for (i, len) in WINDOWS.iter().enumerate() {
            let stats = TraceIdempotence::measure(&trace, *len);
            per_window[i].1.push(stats.fully_fraction());
            per_window[i].2.push(stats.target_fraction());
            cells.push(pct(stats.fully_fraction()));
        }
        detail.row(cells);
    }
    println!("Per-workload fully-idempotent window fraction:");
    println!("{}", detail.render());

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut summary = Table::new(&["trace length", "Fully Idempotent", "Idempotence Target"]);
    for (len, fully, target) in &per_window {
        summary.row(vec![len.to_string(), pct(mean(fully)), pct(mean(target))]);
    }
    println!("Mean across workloads (the two Figure 1 curves):");
    println!("{}", summary.render());
    println!(
        "Expected shape: the fully-idempotent fraction falls sharply past ~50\n\
         instructions while the target curve stays high — small windows are\n\
         naturally re-executable, large ones mostly need only a few checkpoints."
    );
}
