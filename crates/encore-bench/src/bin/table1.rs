//! Table 1: comparison of Encore with conventional checkpointing
//! schemes. The enterprise and architectural rows reproduce the paper's
//! cited characteristics; the Encore row is *measured* from this
//! implementation (mean region activation length, mean checkpoint bytes
//! per region, checkpoint-time instruction cost).
//!
//! Usage: `table1 [--workloads a,b,c]`

use encore_bench::report::{banner, Table};
use encore_bench::{encore_run, prepare, selected_workloads};
use encore_core::EncoreConfig;

fn main() {
    banner("Table 1: comparison with conventional checkpointing schemes");

    // Measure the Encore column across the suite.
    let mut activation_lens = Vec::new();
    let mut bytes_per_region = Vec::new();
    let mut ckpt_insts = Vec::new();
    for w in selected_workloads() {
        let prepared = prepare(w);
        let run = encore_run(&prepared, &EncoreConfig::default());
        for info in &run.outcome.instrumented.map.regions {
            if info.protected && info.avg_activation_len > 0.0 {
                activation_lens.push(info.avg_activation_len);
                // SetRecovery(1) + reg ckpts(1 each) + mem ckpts(2 each).
                ckpt_insts.push(1 + info.reg_ckpts + 2 * info.mem_ckpts);
            }
        }
        bytes_per_region.push(run.outcome.instrumented.storage.avg_total_bytes());
    }
    let mean =
        |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    let mean_len = mean(&activation_lens);
    let mean_bytes = mean(&bytes_per_region);
    let mean_ckpt =
        mean(&ckpt_insts.iter().map(|c| *c as f64).collect::<Vec<_>>());

    let mut t = Table::new(&[
        "Attribute",
        "Enterprise Recovery",
        "Architectural Recovery",
        "Encore (measured)",
    ]);
    t.row(vec![
        "Interval Length".into(),
        "~hours".into(),
        "100-500K instructions".into(),
        format!("{mean_len:.0} instructions/region activation"),
    ]);
    t.row(vec![
        "Storage Space".into(),
        "0.5 - 1 GB".into(),
        "0.5 - 1 MB".into(),
        format!("{mean_bytes:.0} B/region"),
    ]);
    t.row(vec![
        "Checkpoint Time".into(),
        "~minutes".into(),
        "~ms".into(),
        format!("{mean_ckpt:.1} instructions (~ns)"),
    ]);
    t.row(vec![
        "Scope".into(),
        "Full System".into(),
        "Processor".into(),
        "Processor".into(),
    ]);
    t.row(vec![
        "Guaranteed Recovery".into(),
        "Yes".into(),
        "Yes".into(),
        "No (probabilistic)".into(),
    ]);
    t.row(vec![
        "Extra Hardware".into(),
        "Sometimes".into(),
        "Yes".into(),
        "No".into(),
    ]);
    println!("{}", t.render());
    println!(
        "Paper's Encore column: 100-1000 instructions, ~10-100 B, ~ns, \n\
         processor scope, no guarantee, no extra hardware."
    );
}
