//! Figure 5: inherent region idempotence as a function of `Pmin`.
//!
//! For each workload, four columns (`Pmin ∈ {∅, 0.0, 0.1, 0.25}`) report
//! the fraction of candidate regions that are inherently idempotent,
//! non-idempotent, and unknown (un-analyzable calls).
//!
//! Usage: `fig5 [--workloads a,b,c]`

use encore_bench::report::{banner, pct, Table};
use encore_bench::{encore_run, prepare, selected_workloads};
use encore_core::EncoreConfig;
use encore_workloads::Suite;

const PMINS: [Option<f64>; 4] = [None, Some(0.0), Some(0.1), Some(0.25)];

fn pmin_label(p: Option<f64>) -> String {
    match p {
        None => "∅".to_string(),
        Some(v) => format!("{v}"),
    }
}

fn main() {
    banner("Figure 5: inherent region idempotence vs. Pmin");

    let mut table = Table::new(&[
        "workload", "Pmin", "idempotent", "non-idem", "unknown", "regions",
    ]);
    // (suite, pmin index) -> accumulated fractions.
    let mut suite_acc: std::collections::BTreeMap<(Suite, usize), (f64, f64, f64, usize)> =
        Default::default();

    for w in selected_workloads() {
        let suite = w.suite;
        let name = w.name;
        let prepared = prepare(w);
        for (pi, pmin) in PMINS.iter().enumerate() {
            let config = EncoreConfig::default().with_pmin(*pmin);
            let run = encore_run(&prepared, &config);
            let v = run.outcome.verdicts;
            let (fi, fn_, fu) = v.fractions();
            table.row(vec![
                name.to_string(),
                pmin_label(*pmin),
                pct(fi),
                pct(fn_),
                pct(fu),
                v.total().to_string(),
            ]);
            let e = suite_acc.entry((suite, pi)).or_insert((0.0, 0.0, 0.0, 0));
            e.0 += fi;
            e.1 += fn_;
            e.2 += fu;
            e.3 += 1;
        }
    }
    println!("{}", table.render());

    let mut means = Table::new(&["suite", "Pmin", "idempotent", "non-idem", "unknown"]);
    for suite in Suite::all() {
        for (pi, pmin) in PMINS.iter().enumerate() {
            if let Some((fi, fn_, fu, n)) = suite_acc.get(&(suite, pi)) {
                let n = *n as f64;
                means.row(vec![
                    suite.label().to_string(),
                    pmin_label(*pmin),
                    pct(fi / n),
                    pct(fn_ / n),
                    pct(fu / n),
                ]);
            }
        }
    }
    println!("Suite means (the paper's Mean columns):");
    println!("{}", means.render());
    println!(
        "Expected shape: idempotent fraction grows with Pmin; most of the\n\
         gain arrives already at Pmin = 0.0 (pruning never-executed code)."
    );
}
