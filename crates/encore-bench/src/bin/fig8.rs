//! Figure 8: full-system fault coverage for detection latencies
//! `Dmax ∈ {1000, 100, 10}` instructions, composing the paper's measured
//! ARM926 hardware masking rate (91 %) with Encore's recoverability
//! model (α of Eq. 7 per region).
//!
//! With `--sfi N` the analytic model is cross-validated by N real
//! Monte-Carlo fault injections per workload in the interpreter, one
//! campaign per fault model in the taxonomy (bit flip, multi-bit,
//! address, control-flow wrong-edge, power failure) — per-model
//! coverage rows show how Encore's recovery holds up beyond the classic
//! single-bit flip.
//!
//! Usage: `fig8 [--workloads a,b,c] [--sfi N] [--seed S] [--workers W]
//! [--snapshot-stride K]` — `K` controls how often the golden run is
//! checkpointed for snapshot-and-resume injection (0 = from scratch;
//! outcomes are bit-identical at every stride).

use encore_bench::report::{banner, pct, Table};
use encore_bench::{encore_run, prepare, selected_workloads};
use encore_core::EncoreConfig;
use encore_sim::{FaultModelKind, MaskingModel, SfiCampaign, SfiConfig, Value};
use encore_workloads::Suite;

const DMAXES: [u64; 3] = [1000, 100, 10];

fn arg_value(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

fn main() {
    banner("Figure 8: full-system fault coverage vs. detection latency");
    let sfi_n = arg_value("--sfi").unwrap_or(0) as usize;
    let seed = arg_value("--seed").unwrap_or(0xE7_C04E);
    let workers = arg_value("--workers").unwrap_or(0) as usize;
    let snapshot_stride =
        arg_value("--snapshot-stride").unwrap_or(SfiConfig::default().snapshot_stride);

    let mut table = Table::new(&[
        "workload",
        "Dmax",
        "masked",
        "recov idem",
        "recov ckpt",
        "not recov",
        "total",
    ]);
    let mut suite_acc: std::collections::BTreeMap<(Suite, u64), (f64, usize)> =
        Default::default();
    let mut sfi_table = Table::new(&[
        "workload", "Dmax", "model", "benign", "recovered", "SDC", "unrecov", "safe",
    ]);

    for w in selected_workloads() {
        let suite = w.suite;
        let name = w.name;
        let entry = w.entry;
        let eval_arg = w.eval_arg;
        let prepared = prepare(w);
        // Pin all sweep points first so one golden-run preparation (the
        // expensive part of a campaign: full execution + checkpoint log +
        // suffix summaries) can be shared by every Dmax whose
        // instrumented module came out identical. `prepare` only reads
        // the stride and fuel factor, which the sweep holds constant.
        let runs: Vec<_> = DMAXES
            .iter()
            .map(|&dmax| (dmax, encore_run(&prepared, &EncoreConfig::default().with_dmax(dmax))))
            .collect();
        let mut cached: Option<(usize, SfiCampaign)> = None;
        for (i, (dmax, run)) in runs.iter().enumerate() {
            let fs = run.outcome.full_system;
            table.row(vec![
                name.to_string(),
                dmax.to_string(),
                pct(fs.masked),
                pct(fs.recovered_idempotent),
                pct(fs.recovered_checkpointed),
                pct(fs.not_recoverable),
                pct(fs.total()),
            ]);
            let e = suite_acc.entry((suite, *dmax)).or_insert((0.0, 0));
            e.0 += fs.total();
            e.1 += 1;

            if sfi_n > 0 {
                let sfi_config = SfiConfig {
                    injections: sfi_n,
                    dmax: *dmax,
                    seed,
                    workers,
                    snapshot_stride,
                    ..Default::default()
                };
                let reusable = cached.as_ref().is_some_and(|&(j, _)| {
                    runs[j].1.outcome.instrumented.module == run.outcome.instrumented.module
                        && runs[j].1.outcome.instrumented.map == run.outcome.instrumented.map
                });
                if !reusable {
                    let campaign = SfiCampaign::prepare(
                        &run.outcome.instrumented.module,
                        Some(&run.outcome.instrumented.map),
                        entry,
                        &[Value::Int(eval_arg)],
                        &sfi_config,
                    )
                    .expect("golden run completes");
                    cached = Some((i, campaign));
                }
                let campaign = &cached.as_ref().expect("campaign just cached").1;
                for report in campaign.run_models(&sfi_config, &FaultModelKind::ALL) {
                    let stats = report.stats;
                    let composed = MaskingModel::arm926().compose(&stats);
                    sfi_table.row(vec![
                        name.to_string(),
                        dmax.to_string(),
                        report.model().to_string(),
                        stats.benign.to_string(),
                        stats.recovered.to_string(),
                        stats.silent_corruption.to_string(),
                        (stats.detected_unrecoverable + stats.crashed + stats.hung).to_string(),
                        pct(composed.total()),
                    ]);
                }
            }
        }
    }
    println!("Analytic model (α of Eq. 7 composed with 91% masking):");
    println!("{}", table.render());

    let mut means = Table::new(&["suite", "Dmax", "total coverage"]);
    for suite in Suite::all() {
        for dmax in DMAXES {
            if let Some((t, n)) = suite_acc.get(&(suite, dmax)) {
                means.row(vec![
                    suite.label().to_string(),
                    dmax.to_string(),
                    pct(t / *n as f64),
                ]);
            }
        }
    }
    println!("Suite means:");
    println!("{}", means.render());

    if sfi_n > 0 {
        println!(
            "SFI cross-validation ({sfi_n} injections/workload/model, masking composed):"
        );
        println!("{}", sfi_table.render());
    }
    println!(
        "Expected shape: coverage rises as Dmax shrinks (1000 → 100 → 10);\n\
         at Dmax = 100 the mean sits near the paper's 97% headline, with the\n\
         91% masking floor visible in every bar."
    );
}
