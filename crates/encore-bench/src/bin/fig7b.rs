//! Figure 7b: checkpoint storage overhead — average bytes per
//! instrumented region, split into memory checkpoints (16 B: value +
//! address) and register checkpoints (8 B: value).
//!
//! Usage: `fig7b [--workloads a,b,c]`

use encore_bench::report::{banner, f2, Table};
use encore_bench::{encore_run, prepare, selected_workloads};
use encore_core::EncoreConfig;
use encore_workloads::Suite;

fn main() {
    banner("Figure 7b: checkpoint storage (avg bytes / region)");

    let mut table = Table::new(&[
        "workload",
        "memory B",
        "register B",
        "total B",
        "regions",
        "measured high-water B",
    ]);
    let mut suite_acc: std::collections::BTreeMap<Suite, (f64, f64, usize)> = Default::default();
    let mut all_mem = Vec::new();
    let mut all_reg = Vec::new();

    for w in selected_workloads() {
        let suite = w.suite;
        let name = w.name;
        let prepared = prepare(w);
        let run = encore_run(&prepared, &EncoreConfig::default());
        let s = &run.outcome.instrumented.storage;
        table.row(vec![
            name.to_string(),
            f2(s.avg_mem_bytes()),
            f2(s.avg_reg_bytes()),
            f2(s.avg_total_bytes()),
            s.per_region.len().to_string(),
            run.instrumented_run.ckpt_high_water_bytes.to_string(),
        ]);
        let e = suite_acc.entry(suite).or_insert((0.0, 0.0, 0));
        e.0 += s.avg_mem_bytes();
        e.1 += s.avg_reg_bytes();
        e.2 += 1;
        all_mem.push(s.avg_mem_bytes());
        all_reg.push(s.avg_reg_bytes());
    }
    println!("{}", table.render());

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut means = Table::new(&["suite", "memory B", "register B", "total B"]);
    for suite in Suite::all() {
        if let Some((m, r, n)) = suite_acc.get(&suite) {
            let n = *n as f64;
            means.row(vec![
                suite.label().to_string(),
                f2(m / n),
                f2(r / n),
                f2(m / n + r / n),
            ]);
        }
    }
    means.row(vec![
        "ALL".to_string(),
        f2(mean(&all_mem)),
        f2(mean(&all_reg)),
        f2(mean(&all_mem) + mean(&all_reg)),
    ]);
    println!("Suite means:");
    println!("{}", means.render());
    println!(
        "Expected shape: tens of bytes per region (paper mean: 24 B) — orders\n\
         of magnitude below full-system checkpoint footprints (Table 1).\n\
         The high-water column is *measured* at runtime: the largest log any\n\
         single region activation accumulated on the evaluation input."
    );
}
