//! Runs every paper experiment in sequence (Table 1, Figures 1, 5, 6,
//! 7a, 7b, 8) by invoking the sibling harness binaries' logic through a
//! single process. Used to regenerate `EXPERIMENTS.md` data.
//!
//! Usage: `experiments [--workloads a,b,c] [--sfi N]`

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let pass_through: Vec<String> = std::env::args().skip(1).collect();

    for bin in ["table1", "fig1", "fig5", "fig6", "fig7a", "fig7b", "fig8"] {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(&pass_through)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
