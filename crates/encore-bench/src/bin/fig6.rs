//! Figure 6: breakdown of dynamic execution time across inherently
//! idempotent regions, regions instrumented with Encore checkpointing,
//! and unprotected regions (lost coverage).
//!
//! Usage: `fig6 [--workloads a,b,c]`

use encore_bench::report::{banner, pct, Table};
use encore_bench::{encore_run, prepare, selected_workloads};
use encore_core::EncoreConfig;
use encore_workloads::Suite;

fn main() {
    banner("Figure 6: dynamic execution breakdown (Pmin = 0.0, ~20% budget)");

    let mut table = Table::new(&[
        "workload",
        "idempotent",
        "w/ Encore ckpt",
        "w/o Encore ckpt",
    ]);
    let mut suite_acc: std::collections::BTreeMap<Suite, (f64, f64, f64, usize)> =
        Default::default();

    for w in selected_workloads() {
        let suite = w.suite;
        let name = w.name;
        let prepared = prepare(w);
        let run = encore_run(&prepared, &EncoreConfig::default());
        let b = run.outcome.breakdown;
        table.row(vec![
            name.to_string(),
            pct(b.idempotent),
            pct(b.checkpointed),
            pct(b.unprotected),
        ]);
        let e = suite_acc.entry(suite).or_insert((0.0, 0.0, 0.0, 0));
        e.0 += b.idempotent;
        e.1 += b.checkpointed;
        e.2 += b.unprotected;
        e.3 += 1;
    }
    println!("{}", table.render());

    let mut means = Table::new(&["suite", "idempotent", "w/ ckpt", "w/o ckpt"]);
    for suite in Suite::all() {
        if let Some((a, b, c, n)) = suite_acc.get(&suite) {
            let n = *n as f64;
            means.row(vec![
                suite.label().to_string(),
                pct(a / n),
                pct(b / n),
                pct(c / n),
            ]);
        }
    }
    println!("Suite means:");
    println!("{}", means.render());
    println!(
        "Expected shape: SPEC2K-FP and Mediabench spend more of their runtime\n\
         in Encore-recoverable (idempotent + checkpointed) code than SPEC2K-INT."
    );
}
