//! Simulator suite: golden-run execution rate and SFI campaign
//! throughput, the numbers behind `BENCH_sim.json`.
//!
//! Three measurements per workload:
//!
//! * `golden_run` — one fault-free instrumented execution (the
//!   pre-decoded interpreter's raw speed);
//! * `campaign_40` — a 40-injection campaign on the default
//!   snapshot-and-resume path with divergence splicing (what
//!   `encore sfi` runs);
//! * `campaign_40_nosplice` — the same campaign with splicing disabled,
//!   isolating what early classification of suffix-bound runs buys on
//!   top of checkpoint resume;
//! * `campaign_40_scratch` — the same campaign with snapshotting
//!   disabled (`snapshot_stride: 0`), isolating how much of the
//!   campaign speedup comes from checkpoint reuse vs. the interpreter
//!   itself.
//!
//! Campaign rows also print injections/sec derived from the fastest
//! iteration (min-of-N, the least noise-contaminated figure on a
//! shared machine) and the splice engagement rate of the default
//! configuration. Run with `cargo bench --bench sim --offline`.

use encore_bench::microbench::Microbench;
use encore_bench::prepare;
use encore_core::{Encore, EncoreConfig};
use encore_sim::{run_function, RunConfig, SfiCampaign, SfiConfig, Value};

const INJECTIONS: usize = 40;

fn main() {
    let mut bench = Microbench::new("sim");
    let mut throughput: Vec<(String, f64)> = Vec::new();
    let mut splice_rates: Vec<(&str, usize, usize, usize, usize, u64)> = Vec::new();
    for name in ["rawdaudio", "g721encode"] {
        let prepared = prepare(encore_workloads::by_name(name).expect("workload"));
        let outcome = Encore::new(EncoreConfig::default())
            .run(&prepared.workload.module, &prepared.profile);
        let module = &outcome.instrumented.module;
        let map = Some(&outcome.instrumented.map);
        let entry = prepared.workload.entry;
        let args = [Value::Int(prepared.workload.eval_arg)];

        bench.bench(&format!("golden_run/{name}"), || {
            run_function(module, map, entry, &args, &RunConfig::default())
        });

        let snap = SfiConfig { injections: INJECTIONS, dmax: 100, workers: 1, ..Default::default() };
        let campaign = SfiCampaign::prepare(module, map, entry, &args, &snap)
            .expect("golden run completes");
        let s = bench.bench(&format!("campaign_{INJECTIONS}/{name}"), || campaign.run(&snap));
        throughput.push((
            format!("campaign_{INJECTIONS}/{name}"),
            INJECTIONS as f64 / (s.min_ns / 1e9),
        ));
        let sp = campaign.run_report(&snap).splice;
        splice_rates.push((
            name,
            sp.total(),
            sp.converged,
            sp.dead_diff,
            sp.sdc,
            sp.dyn_insts_saved,
        ));

        let nosplice = SfiConfig { splice: false, ..snap };
        let s = bench
            .bench(&format!("campaign_{INJECTIONS}_nosplice/{name}"), || campaign.run(&nosplice));
        throughput.push((
            format!("campaign_{INJECTIONS}_nosplice/{name}"),
            INJECTIONS as f64 / (s.min_ns / 1e9),
        ));

        let scratch = SfiConfig { snapshot_stride: 0, ..snap };
        let campaign = SfiCampaign::prepare(module, map, entry, &args, &scratch)
            .expect("golden run completes");
        let s = bench.bench(&format!("campaign_{INJECTIONS}_scratch/{name}"), || {
            campaign.run(&scratch)
        });
        throughput.push((
            format!("campaign_{INJECTIONS}_scratch/{name}"),
            INJECTIONS as f64 / (s.min_ns / 1e9),
        ));
    }
    bench.finish();

    println!("campaign throughput (injections/sec, from min-of-N):");
    for (label, per_sec) in throughput {
        println!("  {label:<36} {per_sec:>10.0}/s");
    }

    println!("splice engagement of campaign_{INJECTIONS} (default config):");
    for (name, total, converged, dead_diff, sdc, saved) in splice_rates {
        println!(
            "  {name:<14} {total}/{INJECTIONS} spliced (converged {converged}, \
             dead-diff {dead_diff}, sdc {sdc}); {saved} suffix insts skipped"
        );
    }
}
