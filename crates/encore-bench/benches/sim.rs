//! Simulator suite: golden-run execution rate and SFI campaign
//! throughput, the numbers behind `BENCH_sim.json`.
//!
//! Measurements per workload (rawdaudio and g721encode, at 1× and as
//! an `_xl` tier at 10× data scale via `Workload::scaled`):
//!
//! * `golden_run` — one fault-free instrumented execution (the
//!   pre-decoded interpreter's raw speed);
//! * `campaign_40` — a 40-injection campaign on the default
//!   snapshot-and-resume path with divergence splicing (what
//!   `encore sfi` runs);
//! * `campaign_40_nosplice` — the same campaign with splicing disabled,
//!   isolating what early classification of suffix-bound runs buys on
//!   top of checkpoint resume;
//! * `campaign_40_fullscan` — the same campaign with the O(dirty)
//!   incremental state compare disabled (`incremental_diff: false`),
//!   isolating what dirty-tracked page-hash probes buy over full-state
//!   diffs at the identical probe schedule;
//! * `campaign_40_scratch` — the same campaign with snapshotting
//!   disabled (`snapshot_stride: 0`), isolating how much of the
//!   campaign speedup comes from checkpoint reuse vs. the interpreter
//!   itself (1× tier only: from-scratch replay at 10× measures the
//!   same thing, ten times slower);
//! * `campaign_40_<model>` — the same campaign under each non-default
//!   fault model (`multi_bit`, `address`, `control_flow`,
//!   `power_failure`; 1× tier only), exposing the per-model cost
//!   profile: deferred-arming models pay for full suffix execution when
//!   their fault never fires, and power failures detect instantly so
//!   their runs are rollback-bound;
//! * `golden_run_xl` / `campaign_40_xl` / `campaign_40_xl_nosplice` —
//!   the 10× tier, where snapshot capture, the divergence diff and the
//!   splice's dead-suffix scan all walk ten times the state, so costs
//!   that amortize at 1× show up.
//!
//! Campaign rows also print injections/sec derived from the fastest
//! iteration (min-of-N, the least noise-contaminated figure on a
//! shared machine) and, for the default configuration, the splice
//! engagement rate plus its probe-cost footprint (probes attempted,
//! pages hashed, words compared) next to the same counters on the
//! full-scan path. Run with `cargo bench --bench sim --offline`.

use encore_bench::microbench::Microbench;
use encore_bench::prepare;
use encore_core::{Encore, EncoreConfig};
use encore_sim::{
    run_function, FaultModelKind, ProbeCost, RunConfig, SfiCampaign, SfiConfig, SpliceStats, Value,
};

const INJECTIONS: usize = 40;

/// Benchmarks one workload spec under the tier named by `suffix`
/// (`""` for the 1× tier, `"_xl"` for 10×).
fn bench_tier(
    bench: &mut Microbench,
    throughput: &mut Vec<(String, f64)>,
    splice_rates: &mut Vec<(String, SpliceStats, ProbeCost)>,
    spec: &str,
    suffix: &str,
    include_scratch: bool,
) {
    let workload = encore_workloads::by_spec(spec).expect("workload spec");
    let name = workload.name;
    let prepared = prepare(workload);
    let outcome =
        Encore::new(EncoreConfig::default()).run(&prepared.workload.module, &prepared.profile);
    let module = &outcome.instrumented.module;
    let map = Some(&outcome.instrumented.map);
    let entry = prepared.workload.entry;
    let args = [Value::Int(prepared.workload.eval_arg)];

    bench.bench(&format!("golden_run{suffix}/{name}"), || {
        run_function(module, map, entry, &args, &RunConfig::default())
    });

    let snap = SfiConfig { injections: INJECTIONS, dmax: 100, workers: 1, ..Default::default() };
    let campaign =
        SfiCampaign::prepare(module, map, entry, &args, &snap).expect("golden run completes");
    let label = format!("campaign_{INJECTIONS}{suffix}/{name}");
    let s = bench.bench(&label, || campaign.run(&snap));
    throughput.push((label, INJECTIONS as f64 / (s.min_ns / 1e9)));
    let sp = campaign.run_report(&snap).splice;

    let fullscan = SfiConfig { incremental_diff: false, ..snap };
    let label = format!("campaign_{INJECTIONS}{suffix}_fullscan/{name}");
    let s = bench.bench(&label, || campaign.run(&fullscan));
    throughput.push((label, INJECTIONS as f64 / (s.min_ns / 1e9)));
    let full_cost = campaign.run_report(&fullscan).splice.cost;
    splice_rates.push((prepared.workload.spec(), sp, full_cost));

    let nosplice = SfiConfig { splice: false, ..snap };
    let label = format!("campaign_{INJECTIONS}{suffix}_nosplice/{name}");
    let s = bench.bench(&label, || campaign.run(&nosplice));
    throughput.push((label, INJECTIONS as f64 / (s.min_ns / 1e9)));

    if include_scratch {
        // Per-model rows (1× tier only; the default model already has
        // its row above). The prepared campaign is model-agnostic —
        // only plan sampling changes — so it is shared across models.
        for model in FaultModelKind::ALL {
            if model == FaultModelKind::default() {
                continue;
            }
            let modeled = SfiConfig { model, ..snap };
            let label = format!("campaign_{INJECTIONS}{suffix}_{}/{name}", model.label());
            let s = bench.bench(&label, || campaign.run(&modeled));
            throughput.push((label, INJECTIONS as f64 / (s.min_ns / 1e9)));
        }

        let scratch = SfiConfig { snapshot_stride: 0, ..snap };
        let campaign = SfiCampaign::prepare(module, map, entry, &args, &scratch)
            .expect("golden run completes");
        let label = format!("campaign_{INJECTIONS}{suffix}_scratch/{name}");
        let s = bench.bench(&label, || campaign.run(&scratch));
        throughput.push((label, INJECTIONS as f64 / (s.min_ns / 1e9)));
    }
}

fn main() {
    let mut bench = Microbench::new("sim");
    let mut throughput: Vec<(String, f64)> = Vec::new();
    let mut splice_rates: Vec<(String, SpliceStats, ProbeCost)> = Vec::new();
    for name in ["rawdaudio", "g721encode"] {
        bench_tier(&mut bench, &mut throughput, &mut splice_rates, name, "", true);
    }
    for spec in ["rawdaudio@10x", "g721encode@10x"] {
        bench_tier(&mut bench, &mut throughput, &mut splice_rates, spec, "_xl", false);
    }
    bench.finish();

    println!("campaign throughput (injections/sec, from min-of-N):");
    for (label, per_sec) in throughput {
        println!("  {label:<36} {per_sec:>10.0}/s");
    }

    println!("splice engagement of campaign_{INJECTIONS} (default config):");
    for (spec, sp, full) in splice_rates {
        println!(
            "  {spec:<18} {}/{INJECTIONS} spliced (converged {}, \
             dead-diff {}, sdc {}); {} suffix insts skipped",
            sp.total(),
            sp.converged,
            sp.dead_diff,
            sp.sdc,
            sp.dyn_insts_saved
        );
        println!(
            "  {:<18} incremental: {} probes, {} pages hashed, {} words compared; \
             fullscan: {} words compared",
            "", sp.cost.probes, sp.cost.pages_hashed, sp.cost.words_compared,
            full.words_compared
        );
    }
}
