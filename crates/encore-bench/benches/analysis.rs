//! Microbenchmarks for the compile-time side of Encore: the idempotence
//! analysis, region formation, and the full pipeline, per benchmark
//! suite — the cost a user pays at build time for Encore protection.
//!
//! Run with `cargo bench --bench analysis --offline`.

use encore_analysis::StaticAlias;
use encore_bench::microbench::Microbench;
use encore_bench::prepare;
use encore_core::idempotence::{IdempotenceAnalyzer, RegionSpec};
use encore_core::{Encore, EncoreConfig};

fn bench_idempotence_analysis(bench: &mut Microbench) {
    for name in ["164.gzip", "172.mgrid", "cjpeg"] {
        let w = encore_workloads::by_name(name).expect("workload");
        let spec = RegionSpec {
            func: w.entry,
            header: w.module.func(w.entry).entry(),
            blocks: w.module.func(w.entry).block_ids().collect(),
        };
        let analyzer = IdempotenceAnalyzer::new(&w.module, &StaticAlias);
        bench.bench(&format!("idempotence_analysis/{name}"), || {
            analyzer.analyze_region(&spec, &|_| false)
        });
    }
}

fn bench_full_pipeline(bench: &mut Microbench) {
    for name in ["164.gzip", "179.art", "mpeg2enc"] {
        let prepared = prepare(encore_workloads::by_name(name).expect("workload"));
        bench.bench(&format!("encore_pipeline/{name}"), || {
            Encore::new(EncoreConfig::default()).run(&prepared.workload.module, &prepared.profile)
        });
    }
}

fn bench_pipeline_alias_modes(bench: &mut Microbench) {
    let prepared = prepare(encore_workloads::by_name("256.bzip2").expect("workload"));
    for (label, mode) in [
        ("static", encore_analysis::AliasMode::Static),
        ("optimistic", encore_analysis::AliasMode::Optimistic),
    ] {
        let config = EncoreConfig::default().with_alias(mode);
        bench.bench(&format!("pipeline_alias_mode/{label}"), || {
            Encore::new(config.clone()).run(&prepared.workload.module, &prepared.profile)
        });
    }
}

fn main() {
    let mut bench = Microbench::new("analysis");
    bench_idempotence_analysis(&mut bench);
    bench_full_pipeline(&mut bench);
    bench_pipeline_alias_modes(&mut bench);
    bench.finish();
}
