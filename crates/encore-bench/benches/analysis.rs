//! Criterion microbenchmarks for the compile-time side of Encore: the
//! idempotence analysis, region formation, and the full pipeline, per
//! benchmark suite — the cost a user pays at build time for Encore
//! protection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encore_analysis::StaticAlias;
use encore_bench::prepare;
use encore_core::idempotence::{IdempotenceAnalyzer, RegionSpec};
use encore_core::{Encore, EncoreConfig};

fn bench_idempotence_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("idempotence_analysis");
    for name in ["164.gzip", "172.mgrid", "cjpeg"] {
        let w = encore_workloads::by_name(name).expect("workload");
        let spec = RegionSpec {
            func: w.entry,
            header: w.module.func(w.entry).entry(),
            blocks: w.module.func(w.entry).block_ids().collect(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            let analyzer = IdempotenceAnalyzer::new(&w.module, &StaticAlias);
            b.iter(|| analyzer.analyze_region(&spec, &|_| false));
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("encore_pipeline");
    for name in ["164.gzip", "179.art", "mpeg2enc"] {
        let prepared = prepare(encore_workloads::by_name(name).expect("workload"));
        group.bench_with_input(BenchmarkId::from_parameter(name), &prepared, |b, p| {
            b.iter(|| {
                Encore::new(EncoreConfig::default()).run(&p.workload.module, &p.profile)
            });
        });
    }
    group.finish();
}

fn bench_pipeline_alias_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_alias_mode");
    let prepared = prepare(encore_workloads::by_name("256.bzip2").expect("workload"));
    for (label, mode) in [
        ("static", encore_analysis::AliasMode::Static),
        ("optimistic", encore_analysis::AliasMode::Optimistic),
    ] {
        group.bench_function(label, |b| {
            let config = EncoreConfig::default().with_alias(mode);
            b.iter(|| Encore::new(config.clone()).run(&prepared.workload.module, &prepared.profile));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_idempotence_analysis,
    bench_full_pipeline,
    bench_pipeline_alias_modes
);
criterion_main!(benches);
