//! Microbenchmarks for the runtime side: interpreter throughput, and
//! baseline vs. Encore-instrumented execution — the wall-clock analogue
//! of Figure 7a's dynamic-instruction overhead.
//!
//! Run with `cargo bench --bench execution --offline`.

use encore_bench::microbench::Microbench;
use encore_bench::prepare;
use encore_core::{Encore, EncoreConfig};
use encore_sim::{run_function, RunConfig, Value};

fn bench_interpreter_throughput(bench: &mut Microbench) {
    for name in ["172.mgrid", "rawcaudio"] {
        let w = encore_workloads::by_name(name).expect("workload");
        let dyn_insts = run_function(
            &w.module,
            None,
            w.entry,
            &[Value::Int(w.eval_arg)],
            &RunConfig::default(),
        )
        .dyn_insts;
        let sample = bench.bench(&format!("interpreter_throughput/{name}"), || {
            run_function(&w.module, None, w.entry, &[Value::Int(w.eval_arg)], &RunConfig::default())
        });
        println!(
            "{name}: {:.1} M dynamic insts/s",
            dyn_insts as f64 / sample.median_ns * 1e3
        );
    }
}

fn bench_instrumented_vs_baseline(bench: &mut Microbench) {
    for name in ["164.gzip", "g721encode"] {
        let prepared = prepare(encore_workloads::by_name(name).expect("workload"));
        let outcome =
            Encore::new(EncoreConfig::default()).run(&prepared.workload.module, &prepared.profile);
        bench.bench(&format!("instrumentation_overhead/{name}/baseline"), || {
            run_function(
                &prepared.workload.module,
                None,
                prepared.workload.entry,
                &[Value::Int(prepared.workload.eval_arg)],
                &RunConfig::default(),
            )
        });
        bench.bench(&format!("instrumentation_overhead/{name}/instrumented"), || {
            run_function(
                &outcome.instrumented.module,
                Some(&outcome.instrumented.map),
                prepared.workload.entry,
                &[Value::Int(prepared.workload.eval_arg)],
                &RunConfig::default(),
            )
        });
    }
}

fn bench_profiling_cost(bench: &mut Microbench) {
    let w = encore_workloads::by_name("197.parser").expect("workload");
    for (label, config) in [
        ("plain", RunConfig::default()),
        ("with_profile", RunConfig { collect_profile: true, ..Default::default() }),
        ("with_trace", RunConfig { collect_trace: true, ..Default::default() }),
    ] {
        bench.bench(&format!("profiling_cost/{label}"), || {
            run_function(&w.module, None, w.entry, &[Value::Int(w.train_arg)], &config)
        });
    }
}

fn main() {
    let mut bench = Microbench::new("execution");
    bench_interpreter_throughput(&mut bench);
    bench_instrumented_vs_baseline(&mut bench);
    bench_profiling_cost(&mut bench);
    bench.finish();
}
