//! Criterion microbenchmarks for the runtime side: interpreter
//! throughput, and baseline vs. Encore-instrumented execution — the
//! wall-clock analogue of Figure 7a's dynamic-instruction overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use encore_bench::prepare;
use encore_core::{Encore, EncoreConfig};
use encore_sim::{run_function, RunConfig, Value};

fn bench_interpreter_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter_throughput");
    for name in ["172.mgrid", "rawcaudio"] {
        let w = encore_workloads::by_name(name).expect("workload");
        let dyn_insts = run_function(
            &w.module,
            None,
            w.entry,
            &[Value::Int(w.eval_arg)],
            &RunConfig::default(),
        )
        .dyn_insts;
        group.throughput(Throughput::Elements(dyn_insts));
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            b.iter(|| {
                run_function(
                    &w.module,
                    None,
                    w.entry,
                    &[Value::Int(w.eval_arg)],
                    &RunConfig::default(),
                )
            });
        });
    }
    group.finish();
}

fn bench_instrumented_vs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("instrumentation_overhead");
    for name in ["164.gzip", "g721encode"] {
        let prepared = prepare(encore_workloads::by_name(name).expect("workload"));
        let outcome =
            Encore::new(EncoreConfig::default()).run(&prepared.workload.module, &prepared.profile);
        group.bench_function(format!("{name}/baseline"), |b| {
            b.iter(|| {
                run_function(
                    &prepared.workload.module,
                    None,
                    prepared.workload.entry,
                    &[Value::Int(prepared.workload.eval_arg)],
                    &RunConfig::default(),
                )
            });
        });
        group.bench_function(format!("{name}/instrumented"), |b| {
            b.iter(|| {
                run_function(
                    &outcome.instrumented.module,
                    Some(&outcome.instrumented.map),
                    prepared.workload.entry,
                    &[Value::Int(prepared.workload.eval_arg)],
                    &RunConfig::default(),
                )
            });
        });
    }
    group.finish();
}

fn bench_profiling_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling_cost");
    let w = encore_workloads::by_name("197.parser").expect("workload");
    group.bench_function("plain", |b| {
        b.iter(|| {
            run_function(
                &w.module,
                None,
                w.entry,
                &[Value::Int(w.train_arg)],
                &RunConfig::default(),
            )
        });
    });
    group.bench_function("with_profile", |b| {
        b.iter(|| {
            run_function(
                &w.module,
                None,
                w.entry,
                &[Value::Int(w.train_arg)],
                &RunConfig { collect_profile: true, ..Default::default() },
            )
        });
    });
    group.bench_function("with_trace", |b| {
        b.iter(|| {
            run_function(
                &w.module,
                None,
                w.entry,
                &[Value::Int(w.train_arg)],
                &RunConfig { collect_trace: true, ..Default::default() },
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_interpreter_throughput,
    bench_instrumented_vs_baseline,
    bench_profiling_cost
);
criterion_main!(benches);
