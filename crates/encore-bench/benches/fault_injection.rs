//! Criterion microbenchmarks for the fault-injection machinery: the cost
//! of a single injected run (with and without rollback) and of a small
//! SFI batch — what bounds the Monte-Carlo campaign sizes in Figure 8's
//! cross-validation.

use criterion::{criterion_group, criterion_main, Criterion};
use encore_bench::prepare;
use encore_core::{Encore, EncoreConfig};
use encore_sim::{run_function, FaultPlan, RunConfig, SfiCampaign, SfiConfig, Value};

fn bench_single_injection(c: &mut Criterion) {
    let prepared = prepare(encore_workloads::by_name("rawdaudio").expect("workload"));
    let outcome =
        Encore::new(EncoreConfig::default()).run(&prepared.workload.module, &prepared.profile);
    let mut group = c.benchmark_group("single_injection");
    group.bench_function("early_fault_with_rollback", |b| {
        b.iter(|| {
            run_function(
                &outcome.instrumented.module,
                Some(&outcome.instrumented.map),
                prepared.workload.entry,
                &[Value::Int(prepared.workload.eval_arg)],
                &RunConfig {
                    fault: Some(FaultPlan { inject_at: 100, bit: 5, detect_latency: 3 }),
                    ..Default::default()
                },
            )
        });
    });
    group.bench_function("late_fault", |b| {
        b.iter(|| {
            run_function(
                &outcome.instrumented.module,
                Some(&outcome.instrumented.map),
                prepared.workload.entry,
                &[Value::Int(prepared.workload.eval_arg)],
                &RunConfig {
                    fault: Some(FaultPlan { inject_at: 5000, bit: 31, detect_latency: 50 }),
                    ..Default::default()
                },
            )
        });
    });
    group.finish();
}

fn bench_sfi_batch(c: &mut Criterion) {
    let prepared = prepare(encore_workloads::by_name("rawdaudio").expect("workload"));
    let outcome =
        Encore::new(EncoreConfig::default()).run(&prepared.workload.module, &prepared.profile);
    let sfi = SfiConfig { injections: 20, dmax: 100, ..Default::default() };
    let campaign = SfiCampaign::new(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        prepared.workload.entry,
        &[Value::Int(prepared.workload.eval_arg)],
        &sfi,
    );
    c.bench_function("sfi_batch_20", |b| {
        b.iter(|| campaign.run(&sfi));
    });
}

criterion_group!(benches, bench_single_injection, bench_sfi_batch);
criterion_main!(benches);
