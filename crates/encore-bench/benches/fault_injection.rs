//! Microbenchmarks for the fault-injection machinery: the cost of a
//! single injected run (with and without rollback), of a small SFI
//! batch, and the parallel campaign engine's scaling — what bounds the
//! Monte-Carlo campaign sizes in Figure 8's cross-validation.
//!
//! Run with `cargo bench --bench fault_injection --offline`. The
//! scaling section asserts that sharded campaigns are bit-identical to
//! the sequential run while reporting the wall-clock speedup.

use encore_bench::microbench::Microbench;
use encore_bench::prepare;
use encore_core::{Encore, EncoreConfig};
use encore_sim::{run_function, FaultPlan, RunConfig, SfiCampaign, SfiConfig, Value};
use std::time::Instant;

fn bench_single_injection(bench: &mut Microbench) {
    let prepared = prepare(encore_workloads::by_name("rawdaudio").expect("workload"));
    let outcome =
        Encore::new(EncoreConfig::default()).run(&prepared.workload.module, &prepared.profile);
    bench.bench("single_injection/early_fault_with_rollback", || {
        run_function(
            &outcome.instrumented.module,
            Some(&outcome.instrumented.map),
            prepared.workload.entry,
            &[Value::Int(prepared.workload.eval_arg)],
            &RunConfig {
                fault: Some(FaultPlan::bit_flip(100, 5, 3)),
                ..Default::default()
            },
        )
    });
    bench.bench("single_injection/late_fault", || {
        run_function(
            &outcome.instrumented.module,
            Some(&outcome.instrumented.map),
            prepared.workload.entry,
            &[Value::Int(prepared.workload.eval_arg)],
            &RunConfig {
                fault: Some(FaultPlan::bit_flip(5000, 31, 50)),
                ..Default::default()
            },
        )
    });
}

fn bench_sfi_batch(bench: &mut Microbench) {
    let prepared = prepare(encore_workloads::by_name("rawdaudio").expect("workload"));
    let outcome =
        Encore::new(EncoreConfig::default()).run(&prepared.workload.module, &prepared.profile);
    let sfi = SfiConfig { injections: 20, dmax: 100, workers: 1, ..Default::default() };
    let campaign = SfiCampaign::prepare(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        prepared.workload.entry,
        &[Value::Int(prepared.workload.eval_arg)],
        &sfi,
    )
    .expect("golden run completes");
    bench.bench("sfi_batch_20", || campaign.run(&sfi));
}

/// A 1000-injection campaign on `g721encode`, sequential vs. sharded:
/// prints measured speedups and asserts the runs are bit-identical.
fn campaign_scaling() {
    let prepared = prepare(encore_workloads::by_name("g721encode").expect("workload"));
    let outcome =
        Encore::new(EncoreConfig::default()).run(&prepared.workload.module, &prepared.profile);
    let base = SfiConfig { injections: 1000, dmax: 100, workers: 1, ..Default::default() };
    let campaign = SfiCampaign::prepare(
        &outcome.instrumented.module,
        Some(&outcome.instrumented.map),
        prepared.workload.entry,
        &[Value::Int(prepared.workload.eval_arg)],
        &base,
    )
    .expect("golden run completes");

    println!("## campaign_scaling (g721encode, 1000 injections)\n");
    let t = Instant::now();
    let sequential = campaign.run(&base);
    let seq_time = t.elapsed();
    println!("workers =  1: {seq_time:?}");

    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    for workers in [2, 4, 8] {
        let t = Instant::now();
        let parallel = campaign.run(&SfiConfig { workers, ..base });
        let par_time = t.elapsed();
        assert_eq!(sequential, parallel, "parallel campaign diverged at {workers} workers");
        println!(
            "workers = {workers:>2}: {par_time:?}  (speedup {:.2}x, {cores} cores available)",
            seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9)
        );
    }
    println!();
}

fn main() {
    let mut bench = Microbench::new("fault_injection");
    bench_single_injection(&mut bench);
    bench_sfi_batch(&mut bench);
    bench.finish();
    campaign_scaling();
}
