//! Size parameterization of the workload corpus.
//!
//! The hand-written kernels bake their buffer sizes into global
//! declarations (e.g. the ADPCM codecs' `N = 256`-cell sample buffers)
//! and take an entry argument `n ≤ N` that bounds how much of each
//! buffer one run touches. [`scale_module`] grows a kernel `factor×`
//! *without rebuilding it*: every global's cell count is multiplied and
//! its initial data tiled to match, so multiplying the entry arguments
//! by the same factor (see `Workload::scaled`) yields runs with
//! `factor×` the iteration count *and* `factor×` the live memory
//! footprint — the regime where campaign suffix execution, not
//! pipeline prepare, dominates.
//!
//! Why this is trap-free across the whole suite (checked kernel by
//! kernel, and enforced empirically by the execution test below):
//!
//! * **Arg-indexed buffers are linear in the argument.** Every access
//!   whose index grows with the entry argument `n` was sized as
//!   `c·N + k` cells with `k ≥ 0` for `n ≤ N` (e.g. mpeg2dec's
//!   reference frame at `N + 16`); after scaling, the requirement
//!   `c·(s·n) + k` is still within `s·(c·N + k)` cells.
//! * **Data-derived indices are bounded by values, not sizes.** Hash
//!   buckets (`& 63`), grid wraps (`% GRID`) and node ids drawn from
//!   `lcg_data(.., NODES)` are bounded by baked immediates or by the
//!   *value range* of the initial data — and tiling replicates values
//!   verbatim, so the old bounds still hold inside the larger objects.
//! * **Divisors keep their value range.** Quantization tables etc. are
//!   tiled, never zero-extended into the region a scaled run reads, so
//!   no new zero divisor appears on an executed path.
//!
//! Trailing cells beyond `init.len() · factor` stay zero, exactly like
//! the unscaled declaration zero-extends beyond `init.len()` — which
//! preserves sentinel conventions such as 197.parser's NUL terminator.

use encore_ir::Module;

/// Returns a copy of `m` with every global `factor×` larger and its
/// initial data tiled `factor×`. Functions are untouched: iteration
/// counts scale through the entry argument, not the code.
///
/// # Panics
///
/// Panics if `factor` is zero or a scaled cell count overflows `u32`.
pub fn scale_module(m: &Module, factor: u32) -> Module {
    assert!(factor > 0, "scale factor must be positive");
    let mut out = m.clone();
    for g in &mut out.globals {
        g.cells = g
            .cells
            .checked_mul(factor)
            .unwrap_or_else(|| panic!("global `{}`: scaled size overflows", g.name));
        if !g.init.is_empty() && factor > 1 {
            let tile = std::mem::take(&mut g.init);
            g.init = Vec::with_capacity(tile.len() * factor as usize);
            for _ in 0..factor {
                g.init.extend_from_slice(&tile);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::verify_module;
    use encore_sim::{run_function, RunConfig, Value};

    #[test]
    fn scaling_tiles_init_and_multiplies_cells() {
        let w = crate::by_name("rawdaudio").expect("workload");
        let scaled = scale_module(&w.module, 10);
        verify_module(&scaled).expect("scaled module verifies");
        assert_eq!(scaled.funcs, w.module.funcs, "functions must be untouched");
        for (a, b) in w.module.globals.iter().zip(scaled.globals.iter()) {
            assert_eq!(b.cells, a.cells * 10);
            assert_eq!(b.init.len(), a.init.len() * 10);
            if !a.init.is_empty() {
                assert_eq!(&b.init[..a.init.len()], &a.init[..]);
                assert_eq!(&b.init[a.init.len()..2 * a.init.len()], &a.init[..]);
            }
        }
    }

    #[test]
    fn scale_one_is_identity() {
        let w = crate::by_name("164.gzip").expect("workload");
        assert_eq!(scale_module(&w.module, 1), w.module);
    }

    /// The linearity argument above, checked empirically: every kernel's
    /// 10× variant runs both its arguments to completion, touches more
    /// memory, and executes more dynamic instructions than at 1×.
    #[test]
    fn every_workload_executes_cleanly_at_10x() {
        for w in crate::all() {
            let scaled = w.scaled(10);
            verify_module(&scaled.module)
                .unwrap_or_else(|e| panic!("{}: {e:?}", scaled.spec()));
            for (arg, base_arg) in
                [(scaled.train_arg, w.train_arg), (scaled.eval_arg, w.eval_arg)]
            {
                let run = run_function(
                    &scaled.module,
                    None,
                    scaled.entry,
                    &[Value::Int(arg)],
                    &RunConfig::default(),
                );
                assert!(
                    run.completed,
                    "{}: run({arg}) trapped: {:?}",
                    scaled.spec(),
                    run.trap
                );
                let base = run_function(
                    &w.module,
                    None,
                    w.entry,
                    &[Value::Int(base_arg)],
                    &RunConfig::default(),
                );
                assert!(
                    run.dyn_insts > base.dyn_insts,
                    "{}: {} dyn insts at 10x vs {} at 1x — argument does not scale work",
                    scaled.spec(),
                    run.dyn_insts,
                    base.dyn_insts
                );
            }
        }
    }
}
