//! Shared helpers for workload construction.

use encore_ir::{BinOp, ExtEffect, FunctionBuilder, Operand, Reg};

/// Emits a never-taken diagnostic path: `if v > threshold { opaque
/// diagnostic call }`.
///
/// Real benchmarks are full of error handling that profiling inputs never
/// reach; these blocks are what makes regions *Unknown* (un-analyzable
/// call) under `Pmin = ∅` and what the paper's `Pmin = 0.0` pruning
/// removes "without incurring any measurable risk" (§5.1). The threshold
/// must be unreachable for the workload's data ranges.
pub fn emit_cold_diag(f: &mut FunctionBuilder<'_>, v: Reg, threshold: i64) {
    let bad = f.bin(BinOp::Lt, Operand::ImmI(threshold), v.into());
    f.if_then(bad.into(), |f| {
        f.call_ext_void("print_i64", &[v.into()], ExtEffect::Opaque);
    });
}

/// Deterministic pseudo-random data for global initializers (xorshift64*;
/// no dependency on the simulator's PRNG so initial memory images are
/// stable across crates).
pub fn lcg_data(seed: u64, len: usize, modulo: i64) -> Vec<i64> {
    let mut x = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493) | 1;
    let m = modulo.max(1);
    (0..len)
        .map(|_| {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            (x.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as i64 % m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let a = lcg_data(7, 100, 256);
        let b = lcg_data(7, 100, 256);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (0..256).contains(v)));
        let c = lcg_data(8, 100, 256);
        assert_ne!(a, c);
    }

    #[test]
    fn modulo_floor_is_one() {
        let d = lcg_data(1, 10, 0);
        assert!(d.iter().all(|v| *v == 0));
    }
}
